"""Setup shim for offline environments.

The canonical metadata lives in ``pyproject.toml``.  This shim exists
only because PEP 660 editable installs require the ``wheel`` package,
which may be unavailable in air-gapped environments; there
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
once wheel is present) installs the package in editable mode.
"""

from setuptools import setup

setup()
