"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency.

    Examples: scheduling an event in the past, running a stopped
    simulator, or a process yielding an unsupported value.
    """


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SchedulingError(ReproError):
    """A scheduling policy produced or received an invalid plan.

    Raised for internal contract violations such as assigning a job to a
    core twice or planning a segment that ends after its job's deadline.
    """


class InfeasibleError(SchedulingError):
    """An optimization sub-problem has no feasible solution.

    Raised e.g. when Quality-OPT is asked to fit work into a core whose
    deadline capacity is zero, or when a water-filling budget is negative.
    """
