"""The sim-lint engine: file walking, suppression handling, reporting.

The engine is rule-agnostic: it parses each file once, computes the
``# simlint: ignore[...]`` suppression table from the token stream, and
hands a :class:`ModuleContext` to every applicable rule from
:mod:`repro.check.rules`.  Rules yield :class:`Finding` objects; the
engine drops the suppressed ones and returns the rest sorted by
location.

Suppressions
------------
* ``# simlint: ignore`` on a line suppresses every rule on that line;
* ``# simlint: ignore[SIM003]`` (comma-separated codes allowed)
  suppresses only the named rules;
* ``# simlint: skip-file`` anywhere in the file skips the whole file.

Suppression comments are read from the token stream, so the markers are
only recognized in real comments, never inside string literals.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["Finding", "LintError", "ModuleContext", "lint_paths", "lint_source"]

#: Matches one suppression comment; group 1 holds the optional code list.
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")

#: Sentinel meaning "every rule is suppressed on this line".
_ALL_CODES: FrozenSet[str] = frozenset({"*"})


class LintError(Exception):
    """A file could not be linted (unreadable or unparseable)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """``path:line:col: CODE message`` (the text report line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-native representation (the ``--format json`` record)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    module: str  #: dotted module name, e.g. ``repro.server.core``
    path: str  #: display path for findings
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module sits under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


def _suppressions(source: str) -> Optional[Dict[int, FrozenSet[str]]]:
    """Map line number → suppressed codes; ``None`` means skip the file."""
    table: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if _SKIP_FILE_RE.search(tok.string):
                return None
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None:
                table[tok.start[0]] = _ALL_CODES
            else:
                parsed = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )
                table[tok.start[0]] = table.get(tok.start[0], frozenset()) | parsed
    except tokenize.TokenError:  # pragma: no cover - ast.parse fails first
        pass
    return table


def _suppressed(finding: Finding, table: Dict[int, FrozenSet[str]]) -> bool:
    codes = table.get(finding.line)
    if codes is None:
        return False
    return codes is _ALL_CODES or "*" in codes or finding.code in codes


def module_name_for(path: Path) -> str:
    """Infer the dotted module name of a file from its path.

    Walks up from the file to the outermost directory that still has an
    ``__init__.py`` (the package root), so ``src/repro/sim/engine.py``
    maps to ``repro.sim.engine`` regardless of the working directory.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List["Rule"]:  # noqa: F821 - forward ref to repro.check.rules.Rule
    from repro.check.rules import RULES

    selected = {s.strip().upper() for s in select} if select else None
    ignored = {s.strip().upper() for s in ignore} if ignore else set()
    chosen = []
    for rule in RULES:
        if selected is not None and rule.code not in selected:
            continue
        if rule.code in ignored:
            continue
        chosen.append(rule)
    return chosen


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as source text (the test-fixture entry point)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: {exc}") from exc
    table = _suppressions(source)
    if table is None:  # simlint: skip-file
        return []
    ctx = ModuleContext(
        module=module,
        path=path,
        tree=tree,
        source=source,
        lines=source.splitlines(),
    )
    findings: List[Finding] = []
    for rule in _select_rules(select, ignore):
        if not rule.applies(ctx):
            continue
        findings.extend(rule.check(ctx))
    return sorted(f for f in findings if not _suppressed(f, table))


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            raise LintError(f"not a python file or directory: {raw}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    module: Optional[str] = None,
) -> List[Finding]:
    """Lint every python file under ``paths``; findings sorted by location.

    ``module`` forces the dotted module name for every linted file
    (fixture files outside the package would otherwise fall outside the
    package-scoped rules); by default it is inferred from the path.
    """
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        findings.extend(
            lint_source(
                source,
                module=module if module is not None else module_name_for(file_path),
                path=str(file_path),
                select=select,
                ignore=ignore,
            )
        )
    return sorted(findings)
