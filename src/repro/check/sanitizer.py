"""Runtime invariant sanitizer riding the :mod:`repro.obs` trace stream.

:class:`SanitizingTracer` is a drop-in :class:`repro.obs.tracer.Tracer`
that verifies, *as telemetry is emitted*, the physical invariants the
paper's accounting rests on — and raises :class:`SanitizerViolation`
with the offending record attached the moment one breaks:

* **power budget** (§III-D): at every quantum boundary the summed
  per-core dynamic power is at most ``H·(1+ε)``;
* **energy conservation** (§II-B): the incremental cumulative energy
  reported by the timeline sampler equals an independent from-scratch
  integral of the piecewise-constant speed timelines;
* **volume accounting** (§III-B): per-job processed volume only grows,
  never exceeds the demand ``p_j``, and every exec slice reports a
  non-negative amount of work;
* **clock monotonicity**: span/event/sample timestamps never go
  backwards (simulated time is monotone);
* **quality floor** (§III-C): in AES mode under a compensated
  controller the monitored quality is at least ``Q_GE`` — dipping below
  must trigger the BQ compensation switch, so an AES decision below the
  floor means the controller is broken.

Enable via ``--sanitize`` on ``repro run`` / ``scenario`` / ``trace``
or by exporting ``REPRO_SANITIZE=1``.  The checks are read-only: a run
that passes produces a bit-identical :class:`RunResult` to an untraced
one (same guarantee as the plain tracer).

The energy cross-check re-integrates each core's timeline from scratch
at every sample, so a sanitized run costs O(samples × breakpoints) —
fine for the seeded 10-second debugging scenarios it exists for, and
tunable via ``energy_check_every``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.tracer import Tracer
from repro.units import Seconds, Volume

__all__ = ["SanitizerViolation", "SanitizingTracer", "sanitize_requested"]

#: Relative slack on budget/energy/volume comparisons (float noise).
_REL_EPS = 1e-6
#: Absolute slack for quantities that may legitimately be ~0.
_ABS_EPS = 1e-9


class SanitizerViolation(AssertionError):
    """A simulation invariant failed; carries the offending context.

    Attributes
    ----------
    invariant:
        Short name of the violated invariant (``"power_budget"``, ...).
    context:
        The offending record(s): event/sample dicts, times, values.
    """

    def __init__(self, invariant: str, message: str, context: Dict[str, Any]) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.context = context


def sanitize_requested(flag: bool = False) -> bool:
    """Whether sanitizing was requested via flag or ``REPRO_SANITIZE``."""
    if flag:
        return True
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in {
        "1", "true", "yes", "on",
    }


class SanitizingTracer(Tracer):
    """A :class:`Tracer` that asserts simulation invariants as it records.

    Parameters
    ----------
    budget:
        Dynamic power budget ``H`` in watts; ``None`` disables the
        budget check (unknown machine).
    q_floor:
        Quality floor asserted on AES-mode decisions; ``None`` disables
        the check (use it only for compensated, cutting schedulers —
        see :meth:`for_run`).
    energy_check_every:
        Cross-check cumulative energy on every k-th core sample batch
        (1 = every quantum boundary).
    """

    def __init__(
        self,
        *,
        budget: Optional[float] = None,
        q_floor: Optional[float] = None,
        energy_check_every: int = 1,
    ) -> None:
        super().__init__()
        if energy_check_every < 1:
            raise ValueError("energy_check_every must be >= 1")
        self.budget = None if budget is None else float(budget)
        self.q_floor = None if q_floor is None else float(q_floor)
        self.energy_check_every = int(energy_check_every)
        self.checks_run = 0
        self._last_time = float("-inf")
        self._demand: Dict[int, float] = {}
        self._volume: Dict[int, float] = {}
        self._sample_batches = 0

    @classmethod
    def for_run(cls, config: Any, scheduler: Any = None) -> "SanitizingTracer":
        """Build a sanitizer wired to one run's configuration.

        The quality-floor check is only armed when ``scheduler`` is a
        compensated, cutting policy whose target is at least the
        configured ``Q_GE`` (plain GE): other policies legitimately sit
        in AES below the floor (no-compensation ablation) or never cut.
        """
        q_floor: Optional[float] = None
        if (
            scheduler is not None
            and getattr(scheduler, "compensated", False)
            and getattr(scheduler, "cutting", False)
            and getattr(scheduler, "q_offset", 0.0) >= 0.0
        ):
            q_floor = float(config.q_ge)
        return cls(budget=float(config.budget), q_floor=q_floor)

    # ------------------------------------------------------------------
    # Checker plumbing
    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str, **context: Any) -> None:
        raise SanitizerViolation(invariant, message, context)

    def _advance_clock(self, time: Seconds, what: str, **context: Any) -> None:
        self.checks_run += 1
        if time < self._last_time - _ABS_EPS:
            self._fail(
                "clock_monotonic",
                f"{what} at t={time!r} precedes the previous record "
                f"at t={self._last_time!r}",
                time=time,
                last_time=self._last_time,
                **context,
            )
        self._last_time = max(self._last_time, time)

    # ------------------------------------------------------------------
    # Tracer overrides
    # ------------------------------------------------------------------
    def begin_span(
        self,
        name: str,
        time: Seconds,
        *,
        parent: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> SpanRecord:
        self._advance_clock(time, f"span `{name}` start", span_name=name)
        span = super().begin_span(name, time, parent=parent, **attrs)
        if name == "job":
            self._demand[int(attrs["jid"])] = float(attrs["demand"])
        return span

    def event(
        self,
        kind: str,
        time: Seconds,
        *,
        span: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> EventRecord:
        self._advance_clock(time, f"event `{kind}`", kind=kind)
        record = super().event(kind, time, span=span, **attrs)
        if kind == "decision":
            self._check_decision(record)
        elif kind == "chaos":
            # Budget dips/restores (repro.chaos) change H mid-run; the
            # power-budget bound must follow the *current* H, so a plan
            # that overdraws during a dip fails even though it would fit
            # the configured budget.
            budget_w = attrs.get("budget_w")
            if budget_w is not None and self.budget is not None:
                self.budget = float(budget_w)
        return record

    def exec_end(self, span: SpanRecord, time: Seconds, done: Volume) -> None:
        self._advance_clock(time, "exec slice end", span_id=span.span_id)
        super().exec_end(span, time, done)
        self._check_exec_volume(span, time, done)

    def job_settled(self, job: Any, time: Seconds) -> None:
        super().job_settled(job, time)
        self._check_settled_volume(job, time)

    def sample_cores(self, machine: Any, time: Seconds) -> None:
        self._advance_clock(time, "core sample")
        before = len(self.samples)
        super().sample_cores(machine, time)
        batch = self.samples[before:]
        if not batch:
            return
        self._sample_batches += 1
        self._check_power_budget(batch, time)
        if self._sample_batches % self.energy_check_every == 0:
            self._check_energy(machine, batch, time)

    # ------------------------------------------------------------------
    # The invariants
    # ------------------------------------------------------------------
    def _check_power_budget(self, batch: Any, time: Seconds) -> None:
        self.checks_run += 1
        if self.budget is None:
            return
        total = sum(s.power for s in batch)
        limit = self.budget * (1.0 + _REL_EPS) + _ABS_EPS
        if total > limit:
            self._fail(
                "power_budget",
                f"Σ per-core power {total:.6f} W exceeds budget "
                f"H={self.budget:.6f} W at t={time:.6f}",
                time=time,
                total_power=total,
                budget=self.budget,
                per_core={s.core: s.power for s in batch},
            )

    def _check_energy(self, machine: Any, batch: Any, time: Seconds) -> None:
        self.checks_run += 1
        sampled = sum(s.energy for s in batch)
        exact = machine.energy(time)
        tol = _REL_EPS * max(abs(exact), 1.0) + _ABS_EPS
        if abs(sampled - exact) > tol:
            self._fail(
                "energy_conservation",
                f"cumulative sampled energy {sampled:.9f} J diverges from "
                f"the timeline integral {exact:.9f} J at t={time:.6f}",
                time=time,
                sampled_energy=sampled,
                exact_energy=exact,
            )

    def _check_exec_volume(self, span: SpanRecord, time: Seconds, done: Volume) -> None:
        self.checks_run += 1
        if done < -_ABS_EPS:
            self._fail(
                "volume_monotone",
                f"exec slice reported negative work {done!r} at t={time:.6f}",
                time=time,
                done=done,
                span=span.to_record(),
            )
        jid = span.attrs.get("jid")
        if jid is None:
            return
        jid = int(jid)
        total = self._volume.get(jid, 0.0) + max(done, 0.0)
        self._volume[jid] = total
        demand = self._demand.get(jid)
        if demand is not None:
            limit = demand * (1.0 + _REL_EPS) + _ABS_EPS
            if total > limit:
                self._fail(
                    "volume_bounded",
                    f"job {jid} processed {total!r} units, above its demand "
                    f"p_j={demand!r} (t={time:.6f})",
                    time=time,
                    jid=jid,
                    processed=total,
                    demand=demand,
                    span=span.to_record(),
                )

    def _check_settled_volume(self, job: Any, time: Seconds) -> None:
        self.checks_run += 1
        processed = float(job.processed)
        demand = float(job.demand)
        if processed < -_ABS_EPS or processed > demand * (1.0 + _REL_EPS) + _ABS_EPS:
            self._fail(
                "volume_bounded",
                f"job {job.jid} settled with processed={processed!r} outside "
                f"[0, p_j={demand!r}] (t={time:.6f})",
                time=time,
                jid=job.jid,
                processed=processed,
                demand=demand,
            )

    def _check_decision(self, record: EventRecord) -> None:
        self.checks_run += 1
        quality = record.attrs.get("monitor_quality")
        if quality is None:
            return
        quality = float(quality)
        if quality < -_ABS_EPS or quality > 1.0 + _REL_EPS:
            self._fail(
                "quality_bounds",
                f"monitored quality {quality!r} outside [0, 1] "
                f"at t={record.time:.6f}",
                event=record.to_record(),
                quality=quality,
            )
        if (
            self.q_floor is not None
            and record.attrs.get("mode") == "aes"
            and quality < self.q_floor - _ABS_EPS
        ):
            self._fail(
                "quality_floor",
                f"AES-mode decision with quality {quality!r} below "
                f"Q_GE={self.q_floor!r} at t={record.time:.6f} — the "
                "compensation switch (§III-C) should have fired",
                event=record.to_record(),
                quality=quality,
                q_floor=self.q_floor,
            )
