"""``python -m repro.check`` — the static-analysis command-line interface.

Examples
--------
Lint the library (exit 1 when findings remain)::

    python -m repro.check lint src/repro

Run the dimensional-analysis pass, or its coverage report::

    python -m repro.check units src/repro
    python -m repro.check units src/repro --coverage

Run the full default gate (sim-lint + units — what CI enforces)::

    python -m repro.check gate src/repro

Restrict or widen the rule set, or emit machine-readable output::

    python -m repro.check lint src/repro --select SIM001,SIM004
    python -m repro.check lint src/repro --ignore SIM006 --format json
    python -m repro.check units src/repro --select UNITS003

Print the rule catalogue with rationales::

    python -m repro.check rules
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional, Sequence

from repro.check.linter import Finding, LintError, lint_paths
from repro.check.rules import RULES, rule_catalog
from repro.check.units import (
    UNITS_RULES,
    check_paths,
    coverage_json,
    coverage_table,
)

__all__ = ["main"]


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [c.strip().upper() for c in value.split(",") if c.strip()]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--ignore", metavar="CODES", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json is one object with a "
                             "findings list)")
    parser.add_argument("--module", metavar="NAME", default=None,
                        help="force the dotted module name for every file "
                             "(for fixture files outside the package)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Simulator-aware static analysis (sim-lint + sim-units)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint files/directories with the SIM rules")
    _add_common(lint)
    lint.add_argument("--statistics", action="store_true",
                      help="append a per-rule violation count")

    units = sub.add_parser(
        "units",
        help="dimensional-analysis pass (UNITS rules) over annotated code",
    )
    _add_common(units)
    units.add_argument("--coverage", action="store_true",
                       help="emit the per-module annotation coverage report "
                            "instead of findings (never fails)")

    gate = sub.add_parser(
        "gate",
        help="the default CI gate: sim-lint plus the units pass",
    )
    gate.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories (default: src/repro)")

    sub.add_parser("rules", help="print the rule catalogue with rationales")
    return parser


def _known_codes() -> List[str]:
    return [rule.code for rule in RULES] + list(UNITS_RULES)


def _report_text(findings: List[Finding], statistics: bool, label: str) -> None:
    for finding in findings:
        print(finding.format())
    if statistics and findings:
        counts = Counter(f.code for f in findings)
        print()
        for code, count in sorted(counts.items()):
            print(f"{count:5d}  {code}")
    if findings:
        print(f"\nfound {len(findings)} {label} finding(s)")
    else:
        print(f"{label}: clean")


def _report_json(findings: List[Finding]) -> None:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
        "by_rule": dict(sorted(Counter(f.code for f in findings).items())),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def _validate_codes(select: Optional[List[str]], ignore: Optional[List[str]]) -> bool:
    known = set(_known_codes())
    unknown = [c for c in (select or []) + (ignore or []) if c not in known]
    if unknown:
        print(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return False
    return True


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns 0 when clean, 1 on findings, 2 on usage errors."""
    args = _build_parser().parse_args(argv)

    if args.command == "rules":
        print(rule_catalog())
        print()
        for code, summary in UNITS_RULES.items():
            print(f"{code}  {summary}")
        print(
            "        Dimensional analysis over the repro.units vocabulary; "
            "see docs/static-analysis.md."
        )
        return 0

    if args.command == "gate":
        try:
            lint_findings = lint_paths(args.paths)
            units_report = check_paths(args.paths)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _report_text(lint_findings, statistics=True, label="sim-lint")
        _report_text(units_report.findings, statistics=True, label="sim-units")
        return 1 if (lint_findings or units_report.findings) else 0

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    if not _validate_codes(select, ignore):
        return 2

    if args.command == "units":
        try:
            report = check_paths(
                args.paths, select=select, ignore=ignore, module=args.module
            )
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.coverage:
            if args.format == "json":
                print(coverage_json(report.coverage))
            else:
                print(coverage_table(report.coverage))
            return 0
        if args.format == "json":
            _report_json(report.findings)
        else:
            _report_text(report.findings, statistics=False, label="sim-units")
        return 1 if report.findings else 0

    try:
        findings = lint_paths(
            args.paths, select=select, ignore=ignore, module=args.module
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        _report_json(findings)
    else:
        _report_text(findings, statistics=args.statistics, label="sim-lint")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
