"""``python -m repro.check`` — the sim-lint command-line interface.

Examples
--------
Lint the library (exit 1 when findings remain)::

    python -m repro.check lint src/repro

Restrict or widen the rule set, or emit machine-readable output::

    python -m repro.check lint src/repro --select SIM001,SIM004
    python -m repro.check lint src/repro --ignore SIM006 --format json

Print the rule catalogue with rationales::

    python -m repro.check rules
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional, Sequence

from repro.check.linter import Finding, LintError, lint_paths
from repro.check.rules import RULES, rule_catalog

__all__ = ["main"]


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [c.strip().upper() for c in value.split(",") if c.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Simulator-aware static analysis (sim-lint) for repro",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint files/directories with the SIM rules")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories (default: src/repro)")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--ignore", metavar="CODES", default=None,
                      help="comma-separated rule codes to skip")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (json is one object with a findings list)")
    lint.add_argument("--module", metavar="NAME", default=None,
                      help="force the dotted module name for every file "
                           "(for fixture files outside the package)")
    lint.add_argument("--statistics", action="store_true",
                      help="append a per-rule violation count")

    sub.add_parser("rules", help="print the rule catalogue with rationales")
    return parser


def _known_codes() -> List[str]:
    return [rule.code for rule in RULES]


def _report_text(findings: List[Finding], statistics: bool) -> None:
    for finding in findings:
        print(finding.format())
    if statistics and findings:
        counts = Counter(f.code for f in findings)
        print()
        for code, count in sorted(counts.items()):
            print(f"{count:5d}  {code}")
    if findings:
        print(f"\nfound {len(findings)} sim-lint finding(s)")
    else:
        print("sim-lint: clean")


def _report_json(findings: List[Finding]) -> None:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
        "by_rule": dict(sorted(Counter(f.code for f in findings).items())),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns 0 when clean, 1 on findings, 2 on usage errors."""
    args = _build_parser().parse_args(argv)

    if args.command == "rules":
        print(rule_catalog())
        return 0

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    known = set(_known_codes())
    unknown = [c for c in (select or []) + (ignore or []) if c not in known]
    if unknown:
        print(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2

    try:
        findings = lint_paths(
            args.paths, select=select, ignore=ignore, module=args.module
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        _report_json(findings)
    else:
        _report_text(findings, statistics=args.statistics)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
