"""Correctness tooling: sim-lint static analysis and runtime sanitizer.

The GE reproduction's headline numbers rest on physical invariants the
paper states but Python cannot express in types: per-round dynamic
power never exceeds the budget ``H`` (§III-D), energy is the exact
integral of the piecewise-constant speed timelines (§II-B), and the
aggregate quality ``Q = Σf(c_j)/Σf(p_j)`` stays in ``[0, 1]`` and never
dips below ``Q_GE`` outside a compensation episode (§III-C).  This
package enforces them twice:

* **sim-lint** (:mod:`repro.check.linter` / :mod:`repro.check.rules`) —
  an AST linter with simulator-domain rules (SIM001–SIM008): no
  wall-clock or unseeded randomness inside the deterministic layers, no
  bare float equality in scheduler code, layering hygiene, frozen
  config, fully annotated public API.  Run ``python -m repro.check lint
  src/repro``.

* **the sanitizer** (:mod:`repro.check.sanitizer`) — an opt-in
  :class:`SanitizingTracer` that rides the :mod:`repro.obs` telemetry
  stream and fails fast the moment a run violates the power-budget,
  energy-accounting, volume-monotonicity, clock or quality invariants.
  Enable with ``--sanitize`` on the CLI or ``REPRO_SANITIZE=1``.

See ``docs/static-analysis.md`` for the full rule catalogue.
"""

from __future__ import annotations

from repro.check.linter import Finding, lint_paths, lint_source
from repro.check.rules import RULES, Rule, rule_catalog
from repro.check.sanitizer import SanitizingTracer, SanitizerViolation

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SanitizerViolation",
    "SanitizingTracer",
    "lint_paths",
    "lint_source",
    "rule_catalog",
]
