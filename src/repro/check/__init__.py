"""Correctness tooling: sim-lint, sim-units and the runtime sanitizer.

The GE reproduction's headline numbers rest on physical invariants the
paper states but Python cannot express in types: per-round dynamic
power never exceeds the budget ``H`` (§III-D), energy is the exact
integral of the piecewise-constant speed timelines (§II-B), and the
aggregate quality ``Q = Σf(c_j)/Σf(p_j)`` stays in ``[0, 1]`` and never
dips below ``Q_GE`` outside a compensation episode (§III-C).  This
package enforces them three ways:

* **sim-lint** (:mod:`repro.check.linter` / :mod:`repro.check.rules`) —
  an AST linter with simulator-domain rules (SIM001–SIM009): no
  wall-clock or unseeded randomness inside the deterministic layers, no
  bare float equality in scheduler code, layering hygiene, frozen
  config, fully annotated public API, no unordered set iteration in
  scheduling code.  Run ``python -m repro.check lint src/repro``.

* **sim-units** (:mod:`repro.check.units`) — a dimensional-analysis
  pass (UNITS001–UNITS005) over the :mod:`repro.units` vocabulary of
  ``Annotated[float, Unit("W")]`` aliases.  It infers units through
  locals and arithmetic (``W·s → J``, ``unit/(unit/s) → s``) and flags
  mismatched additions, comparisons, call arguments, returns and
  assignments.  Run ``python -m repro.check units src/repro``; the
  ``--coverage`` flag reports per-module annotation coverage.

* **the sanitizer** (:mod:`repro.check.sanitizer`) — an opt-in
  :class:`SanitizingTracer` that rides the :mod:`repro.obs` telemetry
  stream and fails fast the moment a run violates the power-budget,
  energy-accounting, volume-monotonicity, clock or quality invariants.
  Enable with ``--sanitize`` on the CLI or ``REPRO_SANITIZE=1``.

``python -m repro.check gate src/repro`` runs both static passes — the
default CI gate.  See ``docs/static-analysis.md`` for the catalogue.
"""

from __future__ import annotations

from repro.check.linter import Finding, lint_paths, lint_source
from repro.check.rules import RULES, Rule, rule_catalog
from repro.check.sanitizer import SanitizingTracer, SanitizerViolation
from repro.check.units import UNITS_RULES, UnitsReport, check_paths, check_source

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SanitizerViolation",
    "SanitizingTracer",
    "UNITS_RULES",
    "UnitsReport",
    "check_paths",
    "check_source",
    "lint_paths",
    "lint_source",
    "rule_catalog",
]
