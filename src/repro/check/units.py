"""sim-units: the dimensional-analysis pass (UNITS001–UNITS005).

A watts-for-joules or speed-for-volume mix-up type-checks (every
quantity is a ``float``), lints clean, and surfaces — if ever — as a
silent fidelity drift.  This pass closes that hole statically.  It
reads the :mod:`repro.units` vocabulary (``Annotated[float,
Unit("W")]`` aliases on signatures and dataclass fields), infers units
intraprocedurally through locals and arithmetic with the real algebra

* ``W · s → J``          (power × time = energy)
* ``unit / (unit/s) → s``  (volume / speed = time)
* ``(unit/s) · s → unit``  (speed × time = volume)
* add / subtract / compare require **identical** units,
* dimensionless factors scale anything,

and reports:

========= ===========================================================
UNITS001  Mismatched units in ``+``/``-`` (also ``min``/``max``).
UNITS002  Mismatched units in a comparison.
UNITS003  Wrong-unit argument at a call site of an annotated callable.
UNITS004  Wrong-unit return from a unit-annotated function.
UNITS005  Wrong-unit assignment to a unit-annotated target.
========= ===========================================================

The analysis is deliberately conservative: a dimension is tracked only
while it is *known*; any unknown operand silences the check (no
finding), so every report is high-confidence.  Numeric literals are
polymorphic (``budget + 1e-9`` is fine: the literal adopts watts).
Suppression uses the same pragma machinery as sim-lint
(``# simlint: ignore[UNITS003]``, ``# simlint: skip-file``).

The pass is **whole-program for signatures, intraprocedural for
flow**: a first sweep collects every annotated function signature,
dataclass field and property across the analyzed files (plus instance
attributes inferable from ``self.x = <param>`` style assignments);
the second sweep checks each function body against that registry.
Same-name symbols whose collected units disagree (e.g. ``speed`` is
GHz on :class:`repro.server.core.Segment` but units/s on
:class:`repro.core.energy_opt.BlockSpeed`) are dropped from the
name-based fallback registries — they are only checked where the
receiver's class is known.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.check.linter import (
    Finding,
    LintError,
    _suppressed,
    _suppressions,
    iter_python_files,
    module_name_for,
)
from repro.check.rules import _canonical, _collect_aliases, _dotted
from repro.units import (
    DIMENSIONLESS,
    Dim,
    UnitError,
    dim_div,
    dim_mul,
    dim_pow,
    format_dim,
    parse_spec,
)
from repro.units import ALIAS_SPECS as _ALIAS_SPECS

__all__ = [
    "UNITS_RULES",
    "UnitsReport",
    "check_paths",
    "check_source",
    "coverage_table",
]

#: Code → summary, for the ``rules`` listing and docs.
UNITS_RULES: Mapping[str, str] = {
    "UNITS001": "mismatched units in addition/subtraction (or min/max)",
    "UNITS002": "mismatched units in a comparison",
    "UNITS003": "wrong-unit argument at a call site of an annotated callable",
    "UNITS004": "wrong-unit return from a unit-annotated function",
    "UNITS005": "wrong-unit assignment to a unit-annotated target",
}


class _AnyDim:
    """Polymorphic dimension of numeric literals (adopts any unit)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<any>"


#: Singleton polymorphic dimension.
ANY = _AnyDim()

#: ``None`` = unknown (silences checks); ``ANY`` = literal (adopts).
MaybeDim = Union[Dim, None, _AnyDim]


def _is_real(dim: MaybeDim) -> bool:
    """A concrete, known dimension (including dimensionless ``()``)."""
    return dim is not None and not isinstance(dim, _AnyDim)


def _alias_dims() -> Dict[str, Dim]:
    return {name: parse_spec(spec) for name, spec in _ALIAS_SPECS.items()}

_ALIAS_DIMS: Dict[str, Dim] = _alias_dims()


# ---------------------------------------------------------------------------
# Annotation parsing
# ---------------------------------------------------------------------------

#: Generic containers whose element units we treat as the container's
#: unit (arrays and scalars share one algebra; indexing/iterating is a
#: no-op dimensionally).
_CONTAINER_HEADS = frozenset(
    {"List", "Sequence", "Tuple", "Iterable", "Iterator", "Set", "FrozenSet",
     "Dict", "Mapping", "MutableMapping", "DefaultDict", "Deque", "list",
     "tuple", "set", "frozenset", "dict", "Generator", "Counter"}
)

#: Annotation heads that make a slot "float-like" for coverage purposes.
_FLOATY_HEADS = frozenset({"float", "ndarray", "ArrayOrFloat", "ArrayLike"})


@dataclass(frozen=True)
class _AnnInfo:
    """What an annotation expression tells us."""

    dim: Optional[Dim] = None  #: concrete dimension, if unit-annotated
    cls: Optional[str] = None  #: resolved class name, if a known-class slot
    is_unit: bool = False  #: carries an explicit Unit()/alias marker
    is_floaty: bool = False  #: float/ndarray-like (coverage denominator)


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _ann_info(node: Optional[ast.expr], aliases: Dict[str, str]) -> _AnnInfo:
    """Interpret one annotation expression (recursively)."""
    if node is None:
        return _AnnInfo()
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return _AnnInfo()
            return _ann_info(inner, aliases)
        return _AnnInfo()
    if isinstance(node, (ast.Name, ast.Attribute)):
        resolved = _canonical(node, aliases) or ""
        tail = _last_segment(resolved)
        if tail in _ALIAS_DIMS:
            return _AnnInfo(dim=_ALIAS_DIMS[tail], is_unit=True, is_floaty=True)
        if tail in ("int", "bool"):
            return _AnnInfo(dim=DIMENSIONLESS)
        if tail in _FLOATY_HEADS:
            return _AnnInfo(is_floaty=True)
        if tail in ("str", "bytes", "object", "None"):
            return _AnnInfo()
        return _AnnInfo(cls=resolved)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _merge_ann([_ann_info(node.left, aliases), _ann_info(node.right, aliases)])
    if isinstance(node, ast.Subscript):
        head = _last_segment(_dotted(node.value) or "")
        slice_elts: List[ast.expr]
        if isinstance(node.slice, ast.Tuple):
            slice_elts = list(node.slice.elts)
        else:
            slice_elts = [node.slice]
        if head == "Annotated":
            for meta in slice_elts[1:]:
                if (
                    isinstance(meta, ast.Call)
                    and _last_segment(_dotted(meta.func) or "") == "Unit"
                    and len(meta.args) == 1
                    and isinstance(meta.args[0], ast.Constant)
                    and isinstance(meta.args[0].value, str)
                ):
                    try:
                        dim = parse_spec(meta.args[0].value)
                    except UnitError:
                        return _AnnInfo()
                    inner = _ann_info(slice_elts[0], aliases)
                    return _AnnInfo(dim=dim, is_unit=True, is_floaty=True,
                                    cls=inner.cls)
            return _ann_info(slice_elts[0], aliases)
        if head in ("Optional", "Final", "ClassVar"):
            return _ann_info(slice_elts[0], aliases)
        if head == "Union":
            return _merge_ann([_ann_info(e, aliases) for e in slice_elts])
        if head in _CONTAINER_HEADS or head == "Callable":
            if head == "Callable":
                return _AnnInfo()
            return _merge_ann([_ann_info(e, aliases) for e in slice_elts],
                              container=True)
    return _AnnInfo()


def _merge_ann(infos: Sequence[_AnnInfo], *, container: bool = False) -> _AnnInfo:
    """Combine union/container member annotations conservatively."""
    unit_dims = {i.dim for i in infos if i.is_unit and i.dim is not None}
    classes = {i.cls for i in infos if i.cls}
    floaty = any(i.is_floaty for i in infos)
    if len(unit_dims) == 1:
        return _AnnInfo(dim=next(iter(unit_dims)), is_unit=True, is_floaty=True)
    if len(unit_dims) > 1:
        return _AnnInfo(is_floaty=floaty)
    if not container:
        plain = {i.dim for i in infos if i.dim is not None and not i.is_unit}
        if len(plain) == 1 and len(classes) == 0:
            return _AnnInfo(dim=next(iter(plain)), is_floaty=floaty)
    if len(classes) == 1 and not container:
        return _AnnInfo(cls=next(iter(classes)), is_floaty=floaty)
    return _AnnInfo(is_floaty=floaty)


# ---------------------------------------------------------------------------
# Signature / class registries
# ---------------------------------------------------------------------------


@dataclass
class _Param:
    name: str
    dim: Optional[Dim]
    cls: Optional[str]


@dataclass
class _FuncInfo:
    qualname: str
    params: List[_Param] = field(default_factory=list)  #: positional, no self
    by_name: Dict[str, _Param] = field(default_factory=dict)
    return_dim: Optional[Dim] = None
    return_cls: Optional[str] = None
    has_star: bool = False  #: *args/**kwargs present → skip positional checks


@dataclass
class _ClassInfo:
    qualname: str
    #: declared unit dims: class-body AnnAssign fields + property returns.
    fields: Dict[str, Dim] = field(default_factory=dict)
    #: declared class-typed attrs (``f: QualityFunction``).
    attr_cls: Dict[str, str] = field(default_factory=dict)
    #: dataclass field order for positional constructor checking.
    field_order: List[_Param] = field(default_factory=list)
    is_dataclass: bool = False
    methods: Dict[str, _FuncInfo] = field(default_factory=dict)
    #: dims inferred from ``self.x = <expr>`` (never used for UNITS005).
    inferred: Dict[str, Dim] = field(default_factory=dict)
    inferred_cls: Dict[str, str] = field(default_factory=dict)
    #: attrs whose inferred dims conflicted — never resolved.
    tainted: Set[str] = field(default_factory=set)

    def attr_dim(self, attr: str) -> Optional[Dim]:
        if attr in self.tainted:
            return None
        if attr in self.fields:
            return self.fields[attr]
        return self.inferred.get(attr)

    def attr_class(self, attr: str) -> Optional[str]:
        return self.attr_cls.get(attr) or self.inferred_cls.get(attr)


class _Program:
    """Cross-module registry built by the collection sweep."""

    def __init__(self) -> None:
        self.functions: Dict[str, _FuncInfo] = {}  #: "module.func" → info
        self.classes: Dict[str, _ClassInfo] = {}  #: "module.Class" → info
        self.class_by_name: Dict[str, Optional[_ClassInfo]] = {}
        self.merged_funcs: Dict[str, Optional[_FuncInfo]] = {}
        self.merged_attr_dim: Dict[str, Optional[Dim]] = {}
        self.merged_attr_cls: Dict[str, Optional[str]] = {}
        self.module_consts: Dict[str, Dict[str, MaybeDim]] = {}

    # -- registration ---------------------------------------------------
    def add_function(self, info: _FuncInfo, bare: str) -> None:
        self.functions[info.qualname] = info
        self._merge_func(bare, info)

    def add_class(self, info: _ClassInfo, bare: str) -> None:
        self.classes[info.qualname] = info
        if bare in self.class_by_name and self.class_by_name[bare] is not info:
            self.class_by_name[bare] = None  # ambiguous bare name
        else:
            self.class_by_name[bare] = info
        for name, method in info.methods.items():
            self._merge_func(name, method)

    def _merge_func(self, bare: str, info: _FuncInfo) -> None:
        if bare.startswith("__") and bare not in ("__call__", "__init__"):
            return
        if bare not in self.merged_funcs:
            self.merged_funcs[bare] = info
            return
        existing = self.merged_funcs[bare]
        if existing is None or existing is info:
            return
        self.merged_funcs[bare] = _merge_sigs(existing, info)

    def finalize_attrs(self) -> None:
        """Build the name-based attribute fallback (agreement-only)."""
        dims: Dict[str, Optional[Dim]] = {}
        classes: Dict[str, Optional[str]] = {}
        for cls in self.classes.values():
            declared = dict(cls.fields)
            for attr, dim in cls.inferred.items():
                declared.setdefault(attr, dim)
            for attr, dim in declared.items():
                if attr in cls.tainted:
                    dims[attr] = None
                elif attr not in dims:
                    dims[attr] = dim
                elif dims[attr] != dim:
                    dims[attr] = None
            for attr, cname in {**cls.attr_cls, **cls.inferred_cls}.items():
                if attr not in classes:
                    classes[attr] = cname
                elif classes[attr] != cname:
                    classes[attr] = None
        self.merged_attr_dim = dims
        self.merged_attr_cls = classes

    # -- lookups --------------------------------------------------------
    def resolve_class(self, name: Optional[str]) -> Optional[_ClassInfo]:
        if not name:
            return None
        if name in self.classes:
            return self.classes[name]
        return self.class_by_name.get(_last_segment(name))


def _merge_sigs(a: _FuncInfo, b: _FuncInfo) -> _FuncInfo:
    """Positional/keyword intersection: keep only agreeing slots."""
    merged = _FuncInfo(qualname=a.qualname, has_star=a.has_star or b.has_star)
    for pa, pb in zip(a.params, b.params):
        merged.params.append(
            _Param(
                name=pa.name if pa.name == pb.name else "",
                dim=pa.dim if pa.dim == pb.dim else None,
                cls=pa.cls if pa.cls == pb.cls else None,
            )
        )
    if len(a.params) != len(b.params):
        merged.has_star = True  # arity mismatch → positional checks off past zip
    for name in set(a.by_name) & set(b.by_name):
        pa2, pb2 = a.by_name[name], b.by_name[name]
        merged.by_name[name] = _Param(
            name=name,
            dim=pa2.dim if pa2.dim == pb2.dim else None,
            cls=pa2.cls if pa2.cls == pb2.cls else None,
        )
    merged.return_dim = a.return_dim if a.return_dim == b.return_dim else None
    merged.return_cls = a.return_cls if a.return_cls == b.return_cls else None
    return merged


# ---------------------------------------------------------------------------
# Collection sweep
# ---------------------------------------------------------------------------


def _is_property(func: ast.FunctionDef) -> bool:
    return any(
        (isinstance(d, ast.Name) and d.id in ("property", "cached_property"))
        or (isinstance(d, ast.Attribute) and d.attr == "cached_property")
        for d in func.decorator_list
    )


def _is_staticmethod(func: ast.FunctionDef) -> bool:
    return any(
        isinstance(d, ast.Name) and d.id == "staticmethod"
        for d in func.decorator_list
    )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for d in node.decorator_list:
        target = d.func if isinstance(d, ast.Call) else d
        if _last_segment(_dotted(target) or "") == "dataclass":
            return True
    return False


@dataclass
class _Coverage:
    unit_slots: int = 0
    floaty_slots: int = 0

    def count(self, info: _AnnInfo) -> None:
        if info.is_floaty:
            self.floaty_slots += 1
            if info.is_unit:
                self.unit_slots += 1


def _func_info(
    func: ast.FunctionDef,
    qualname: str,
    aliases: Dict[str, str],
    *,
    is_method: bool,
    coverage: Optional[_Coverage],
) -> _FuncInfo:
    info = _FuncInfo(qualname=qualname)
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and not _is_staticmethod(func) and positional:
        positional = positional[1:]
    info.has_star = args.vararg is not None or args.kwarg is not None
    for arg in positional + list(args.kwonlyargs):
        ann = _ann_info(arg.annotation, aliases)
        if coverage is not None:
            coverage.count(ann)
        param = _Param(name=arg.arg, dim=ann.dim, cls=ann.cls)
        if arg in positional:
            info.params.append(param)
        info.by_name[arg.arg] = param
    ret = _ann_info(func.returns, aliases)
    if coverage is not None and func.name != "__init__":
        coverage.count(ret)
    info.return_dim = ret.dim
    info.return_cls = ret.cls
    return info


@dataclass
class _ModuleUnit:
    """One parsed module plus its per-module lookup context."""

    module: str
    path: str
    tree: ast.Module
    source: str
    aliases: Dict[str, str]
    suppressions: Optional[Dict[int, object]]
    coverage: _Coverage = field(default_factory=_Coverage)


def _collect_module(unit: _ModuleUnit, program: _Program) -> None:
    consts: Dict[str, MaybeDim] = {}
    for stmt in unit.tree.body:
        if isinstance(stmt, ast.FunctionDef):
            info = _func_info(
                stmt, f"{unit.module}.{stmt.name}", unit.aliases,
                is_method=False, coverage=unit.coverage,
            )
            program.add_function(info, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            _collect_class(stmt, unit, program)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Constant):
                if isinstance(stmt.value.value, (int, float)) and not isinstance(
                    stmt.value.value, bool
                ):
                    consts[target.id] = ANY
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = _ann_info(stmt.annotation, unit.aliases)
            if ann.dim is not None:
                consts[stmt.target.id] = ann.dim
    program.module_consts[unit.module] = consts


def _collect_class(node: ast.ClassDef, unit: _ModuleUnit, program: _Program) -> None:
    info = _ClassInfo(qualname=f"{unit.module}.{node.name}")
    info.is_dataclass = _is_dataclass_decorated(node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = _ann_info(stmt.annotation, unit.aliases)
            unit.coverage.count(ann)
            if ann.dim is not None:
                info.fields[stmt.target.id] = ann.dim
            if ann.cls is not None:
                info.attr_cls[stmt.target.id] = ann.cls
            if info.is_dataclass:
                info.field_order.append(
                    _Param(name=stmt.target.id, dim=ann.dim, cls=ann.cls)
                )
        elif isinstance(stmt, ast.FunctionDef):
            if _is_property(stmt):
                ret = _ann_info(stmt.returns, unit.aliases)
                unit.coverage.count(ret)
                if ret.dim is not None:
                    info.fields.setdefault(stmt.name, ret.dim)
                if ret.cls is not None:
                    info.attr_cls.setdefault(stmt.name, ret.cls)
                continue
            method = _func_info(
                stmt, f"{info.qualname}.{stmt.name}", unit.aliases,
                is_method=True, coverage=unit.coverage,
            )
            info.methods[stmt.name] = method
    program.add_class(info, node.name)


def _infer_instance_attrs(units: Sequence[_ModuleUnit], program: _Program) -> None:
    """Record dims of ``self.x = <expr>`` assignments (two fixpoint passes)."""
    for _ in range(2):
        for unit in units:
            for stmt in unit.tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                cls = program.resolve_class(f"{unit.module}.{stmt.name}")
                if cls is None:
                    continue
                for method in stmt.body:
                    if not isinstance(method, ast.FunctionDef):
                        continue
                    if _is_property(method) or _is_staticmethod(method):
                        continue
                    checker = _BodyChecker(unit, program, collect_only=True,
                                           self_class=cls)
                    checker.seed_params(method, is_method=True)
                    checker.visit_body(method.body)


# ---------------------------------------------------------------------------
# The intraprocedural dataflow checker
# ---------------------------------------------------------------------------

#: numpy/builtin call behaviour tables (canonical dotted names).
_PASSTHROUGH_1ARG = frozenset(
    {"float", "abs", "round", "sorted", "list", "tuple", "reversed", "sum",
     "int", "next", "iter",
     "numpy.sum", "numpy.max", "numpy.min", "numpy.mean", "numpy.abs",
     "numpy.asarray", "numpy.array", "numpy.copy", "numpy.sort",
     "numpy.cumsum", "numpy.diff", "numpy.floor", "numpy.ceil",
     "numpy.round", "numpy.ravel", "numpy.squeeze", "numpy.median",
     "numpy.ascontiguousarray", "numpy.atleast_1d", "numpy.flip",
     "numpy.float64", "numpy.nanmax", "numpy.nanmin", "numpy.nansum"}
)

_UNIFYING = frozenset(
    {"min", "max", "numpy.minimum", "numpy.maximum", "numpy.clip",
     "numpy.hypot", "numpy.where", "numpy.append", "numpy.concatenate"}
)

_PRODUCT = frozenset({"numpy.dot", "numpy.multiply", "numpy.outer", "numpy.inner"})
_QUOTIENT = frozenset({"numpy.divide", "numpy.true_divide"})

_FRESH_ANY = frozenset(
    {"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
     "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like",
     "numpy.full_like", "numpy.arange", "numpy.linspace"}
)

_DIMENSIONLESS_RESULT = frozenset(
    {"len", "numpy.argsort", "numpy.argmin", "numpy.argmax",
     "numpy.searchsorted", "numpy.nonzero", "numpy.flatnonzero",
     "numpy.sign", "numpy.isclose", "numpy.isfinite", "numpy.isnan",
     "numpy.allclose", "numpy.count_nonzero", "math.isclose",
     "math.isfinite", "math.isnan", "range", "enumerate"}
)

#: Attribute reads that behave like polymorphic literals.
_ANY_ATTRS = frozenset({"math.inf", "math.nan", "numpy.inf", "numpy.nan"})
_DIMENSIONLESS_ATTRS = frozenset({"math.pi", "math.e", "math.tau"})

#: ndarray structural attributes: counts/indices, not quantities.
_COUNT_ATTR_NAMES = frozenset({"size", "ndim", "shape"})


class _BodyChecker:
    """Checks one function body; optionally only collects ``self.x`` dims."""

    def __init__(
        self,
        unit: _ModuleUnit,
        program: _Program,
        *,
        collect_only: bool = False,
        self_class: Optional[_ClassInfo] = None,
        return_dim: Optional[Dim] = None,
        parent_env: Optional[Dict[str, MaybeDim]] = None,
        parent_types: Optional[Dict[str, Optional[str]]] = None,
    ) -> None:
        self.unit = unit
        self.program = program
        self.collect_only = collect_only
        self.self_class = self_class
        self.return_dim = return_dim
        self.env: Dict[str, MaybeDim] = dict(parent_env or {})
        self.types: Dict[str, Optional[str]] = dict(parent_types or {})
        self.findings: List[Finding] = []

    # -- setup ----------------------------------------------------------
    def seed_params(self, func: ast.FunctionDef, *, is_method: bool) -> None:
        args = func.args
        positional = list(args.posonlyargs) + list(args.args)
        if is_method and not _is_staticmethod(func) and positional:
            self.env[positional[0].arg] = None
            self.types[positional[0].arg] = (
                self.self_class.qualname if self.self_class else None
            )
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            ann = _ann_info(arg.annotation, self.unit.aliases)
            self.env[arg.arg] = ann.dim
            self.types[arg.arg] = ann.cls
        for star in (args.vararg, args.kwarg):
            if star is not None:
                self.env[star.arg] = None

    # -- reporting ------------------------------------------------------
    def report(self, code: str, node: ast.AST, message: str) -> None:
        if self.collect_only:
            return
        self.findings.append(
            Finding(
                path=self.unit.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- dimension combinators ------------------------------------------
    def _same_unit(
        self, node: ast.AST, code: str, what: str, dims: Sequence[MaybeDim]
    ) -> MaybeDim:
        """Require all known dims equal; report a mismatch once."""
        reals = [d for d in dims if _is_real(d)]
        distinct: List[Dim] = []
        for d in reals:
            if d not in distinct:
                distinct.append(d)
        if len(distinct) > 1:
            self.report(
                code,
                node,
                f"unit mismatch in {what}: "
                + " vs ".join(f"`{format_dim(d)}`" for d in distinct[:3]),
            )
            return None
        if any(d is None for d in dims):
            return None
        if distinct:
            return distinct[0]
        return ANY if dims else None

    @staticmethod
    def _product(a: MaybeDim, b: MaybeDim, *, div: bool = False) -> MaybeDim:
        if a is None or b is None:
            return None
        if isinstance(a, _AnyDim):
            # ``lit * X`` scales X; a literal scaled by a pure number
            # stays a literal (``[0.0] * n``); ``lit / X`` is ambiguous
            # (the literal may stand for a quantity, e.g. a container
            # seeded from zeros), so its unit stays unknown.
            if b == DIMENSIONLESS:
                return ANY
            return None if div else b
        if isinstance(b, _AnyDim):
            return a
        return dim_div(a, b) if div else dim_mul(a, b)

    # -- expression evaluation ------------------------------------------
    def eval(self, node: Optional[ast.expr]) -> Tuple[MaybeDim, Optional[str]]:
        """Return ``(dimension, class-tag)`` of an expression."""
        if node is None:
            return None, None
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None, None

    def dim(self, node: Optional[ast.expr]) -> MaybeDim:
        return self.eval(node)[0]

    def _eval_Constant(self, node: ast.Constant) -> Tuple[MaybeDim, Optional[str]]:
        if isinstance(node.value, bool):
            return ANY, None
        if isinstance(node.value, (int, float)):
            return ANY, None
        return None, None

    def _eval_Name(self, node: ast.Name) -> Tuple[MaybeDim, Optional[str]]:
        if node.id in self.env:
            return self.env[node.id], self.types.get(node.id)
        consts = self.program.module_consts.get(self.unit.module, {})
        if node.id in consts:
            return consts[node.id], None
        return None, None

    def _eval_Attribute(self, node: ast.Attribute) -> Tuple[MaybeDim, Optional[str]]:
        dotted = _canonical(node, self.unit.aliases)
        if dotted in _ANY_ATTRS:
            return ANY, None
        if dotted in _DIMENSIONLESS_ATTRS:
            return DIMENSIONLESS, None
        _value_dim, value_cls = self.eval(node.value)
        cls = self.program.resolve_class(value_cls)
        if cls is not None:
            dim = cls.attr_dim(node.attr)
            return dim, cls.attr_class(node.attr)
        dim = self.program.merged_attr_dim.get(node.attr)
        if dim is None and node.attr in _COUNT_ATTR_NAMES:
            return DIMENSIONLESS, None
        return dim, self.program.merged_attr_cls.get(node.attr)

    def _eval_BinOp(self, node: ast.BinOp) -> Tuple[MaybeDim, Optional[str]]:
        left = self.dim(node.left)
        right = self.dim(node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            word = "addition" if isinstance(op, ast.Add) else "subtraction"
            return self._same_unit(node, "UNITS001", word, [left, right]), None
        if isinstance(op, ast.Mult):
            return self._product(left, right), None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._product(left, right, div=True), None
        if isinstance(op, ast.Mod):
            if _is_real(left) and _is_real(right) and left == right:
                return left, None
            if isinstance(right, _AnyDim):
                return left, None
            return None, None
        if isinstance(op, ast.Pow):
            if isinstance(left, _AnyDim):
                return ANY, None
            if left == DIMENSIONLESS:
                return DIMENSIONLESS, None
            if (
                _is_real(left)
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
            ):
                return dim_pow(left, node.right.value), None
            return None, None
        return None, None

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Tuple[MaybeDim, Optional[str]]:
        inner = self.eval(node.operand)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return inner
        if isinstance(node.op, ast.Not):
            self.eval(node.operand)
            return DIMENSIONLESS, None
        return None, None

    def _eval_Compare(self, node: ast.Compare) -> Tuple[MaybeDim, Optional[str]]:
        comparators = [node.left, *node.comparators]
        dims = [self.dim(c) for c in comparators]
        for op, left, right in zip(node.ops, dims, dims[1:]):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                self._same_unit(node, "UNITS002", "comparison", [left, right])
        return DIMENSIONLESS, None

    def _eval_BoolOp(self, node: ast.BoolOp) -> Tuple[MaybeDim, Optional[str]]:
        dims = [self.dim(v) for v in node.values]
        reals = {d for d in dims if _is_real(d)}
        if len(reals) == 1 and all(d is not None for d in dims):
            return next(iter(reals)), None
        return None, None

    def _eval_IfExp(self, node: ast.IfExp) -> Tuple[MaybeDim, Optional[str]]:
        self.eval(node.test)
        body_dim, body_cls = self.eval(node.body)
        else_dim, else_cls = self.eval(node.orelse)
        dim = self._same_unit(
            node, "UNITS001", "conditional expression", [body_dim, else_dim]
        )
        return dim, body_cls if body_cls == else_cls else None

    def _eval_Subscript(self, node: ast.Subscript) -> Tuple[MaybeDim, Optional[str]]:
        value_dim, value_cls = self.eval(node.value)
        if isinstance(node.slice, ast.expr):
            self.eval(node.slice)
        return value_dim, value_cls

    def _eval_Starred(self, node: ast.Starred) -> Tuple[MaybeDim, Optional[str]]:
        return self.eval(node.value)

    def _eval_List(self, node: ast.List) -> Tuple[MaybeDim, Optional[str]]:
        return self._display(node.elts), None

    def _eval_Tuple(self, node: ast.Tuple) -> Tuple[MaybeDim, Optional[str]]:
        return self._display(node.elts), None

    def _eval_Set(self, node: ast.Set) -> Tuple[MaybeDim, Optional[str]]:
        return self._display(node.elts), None

    def _display(self, elts: Sequence[ast.expr]) -> MaybeDim:
        dims = [self.dim(e) for e in elts]
        reals = {d for d in dims if _is_real(d)}
        if not dims:
            return ANY
        if len(reals) == 1 and all(d is not None for d in dims):
            return next(iter(reals))
        if not reals and all(isinstance(d, _AnyDim) for d in dims):
            return ANY
        return None

    def _eval_Dict(self, node: ast.Dict) -> Tuple[MaybeDim, Optional[str]]:
        for key in node.keys:
            if key is not None:
                self.eval(key)
        return self._display([v for v in node.values]), None

    def _eval_Lambda(self, node: ast.Lambda) -> Tuple[MaybeDim, Optional[str]]:
        child = _BodyChecker(
            self.unit, self.program, collect_only=self.collect_only,
            self_class=self.self_class,
            parent_env=self.env, parent_types=self.types,
        )
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            child.env[arg.arg] = None
            child.types[arg.arg] = None
        child.eval(node.body)
        self.findings.extend(child.findings)
        return None, None

    def _eval_ListComp(self, node: ast.ListComp) -> Tuple[MaybeDim, Optional[str]]:
        return self._comp(node.generators, node.elt), None

    def _eval_SetComp(self, node: ast.SetComp) -> Tuple[MaybeDim, Optional[str]]:
        return self._comp(node.generators, node.elt), None

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> Tuple[MaybeDim, Optional[str]]:
        return self._comp(node.generators, node.elt), None

    def _eval_DictComp(self, node: ast.DictComp) -> Tuple[MaybeDim, Optional[str]]:
        return self._comp(node.generators, node.value, extra=node.key), None

    def _comp(
        self,
        generators: Sequence[ast.comprehension],
        elt: ast.expr,
        extra: Optional[ast.expr] = None,
    ) -> MaybeDim:
        saved_env, saved_types = dict(self.env), dict(self.types)
        try:
            for gen in generators:
                self._bind_iter(gen.target, gen.iter)
                for cond in gen.ifs:
                    self.eval(cond)
            if extra is not None:
                self.eval(extra)
            return self.dim(elt)
        finally:
            self.env, self.types = saved_env, saved_types

    # -- call handling ---------------------------------------------------
    def _eval_Call(self, node: ast.Call) -> Tuple[MaybeDim, Optional[str]]:
        dotted = _canonical(node.func, self.unit.aliases)
        if dotted is not None and self._is_builtin(dotted):
            return self._builtin_call(node, dotted)

        sig: Optional[_FuncInfo] = None
        label = ""
        if isinstance(node.func, ast.Attribute):
            # Method call: prefer the receiver's known class.
            _dim, recv_cls = self.eval(node.func.value)
            cls = self.program.resolve_class(recv_cls)
            if cls is not None:
                if node.func.attr in cls.methods:
                    sig = cls.methods[node.func.attr]
                    label = f"{_last_segment(cls.qualname)}.{node.func.attr}"
                else:
                    # Known class without that method: stay silent.
                    self._eval_args_only(node)
                    return None, None
            else:
                sig = self.program.merged_funcs.get(node.func.attr)
                label = node.func.attr
        elif isinstance(node.func, ast.Name) and node.func.id in self.env:
            # A local callable (e.g. a parameter): only check it when
            # it is a known-class instance with a ``__call__``.
            own = self.program.resolve_class(self.types.get(node.func.id))
            if own is not None and "__call__" in own.methods:
                sig = own.methods["__call__"]
                label = f"{_last_segment(own.qualname)}.__call__"
        elif dotted is not None:
            target_cls = (
                self.program.classes.get(dotted)
                or self.program.class_by_name.get(_last_segment(dotted))
            )
            if target_cls is not None:
                return self._constructor_call(node, target_cls)
            sig = (
                self.program.functions.get(dotted)
                or self.program.merged_funcs.get(_last_segment(dotted))
            )
            label = _last_segment(dotted)
        if sig is None:
            self._eval_args_only(node)
            return None, None
        return self._checked_call(node, sig, label)

    def _eval_args_only(self, node: ast.Call) -> None:
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            self.eval(kw.value)

    @staticmethod
    def _is_builtin(dotted: str) -> bool:
        return (
            dotted in _PASSTHROUGH_1ARG
            or dotted in _UNIFYING
            or dotted in _PRODUCT
            or dotted in _QUOTIENT
            or dotted in _FRESH_ANY
            or dotted in _DIMENSIONLESS_RESULT
            or dotted.startswith(("math.", "numpy."))
        )

    def _builtin_call(
        self, node: ast.Call, dotted: str
    ) -> Tuple[MaybeDim, Optional[str]]:
        """Dimension behaviour of builtin / math / numpy calls."""
        if dotted in _PASSTHROUGH_1ARG:
            dims = [self.dim(a) for a in node.args]
            self._eval_kwargs(node)
            return (dims[0] if dims else None), None
        if dotted in _UNIFYING:
            dims = [self.dim(a) for a in node.args]
            for kw in node.keywords:
                dims.append(self.dim(kw.value))
            name = _last_segment(dotted)
            return self._same_unit(node, "UNITS001", f"`{name}()`", dims), None
        if dotted in _PRODUCT or dotted in _QUOTIENT:
            dims = [self.dim(a) for a in node.args]
            self._eval_kwargs(node)
            if len(dims) == 2:
                return self._product(dims[0], dims[1], div=dotted in _QUOTIENT), None
            return None, None
        if dotted in _FRESH_ANY:
            self._eval_args_only(node)
            return ANY, None
        if dotted in _DIMENSIONLESS_RESULT:
            self._eval_args_only(node)
            return DIMENSIONLESS, None
        # Remaining math.* / numpy.* calls: evaluate for nested findings,
        # yield no conclusion (exp/log/sqrt change dimensions nonlinearly).
        self._eval_args_only(node)
        return None, None

    def _eval_kwargs(self, node: ast.Call) -> None:
        for kw in node.keywords:
            self.eval(kw.value)

    def _checked_call(
        self, node: ast.Call, sig: _FuncInfo, label: str
    ) -> Tuple[MaybeDim, Optional[str]]:
        positional_ok = not sig.has_star and not any(
            isinstance(a, ast.Starred) for a in node.args
        )
        for index, arg in enumerate(node.args):
            got = self.dim(arg)
            if positional_ok and index < len(sig.params):
                self._check_arg(node, arg, sig.params[index], got, label)
        for kw in node.keywords:
            got = self.dim(kw.value)
            if kw.arg is None:
                continue
            param = sig.by_name.get(kw.arg)
            if param is not None:
                self._check_arg(node, kw.value, param, got, label)
        return sig.return_dim, sig.return_cls

    def _check_arg(
        self,
        call: ast.Call,
        arg: ast.expr,
        param: _Param,
        got: MaybeDim,
        label: str,
    ) -> None:
        if param.dim is None or not _is_real(got):
            return
        if got != param.dim:
            name = f"`{param.name}`" if param.name else "argument"
            self.report(
                "UNITS003",
                arg,
                f"{name} of `{label}()` expects `{format_dim(param.dim)}`, "
                f"got `{format_dim(got)}`",
            )

    def _constructor_call(
        self, node: ast.Call, cls: _ClassInfo
    ) -> Tuple[MaybeDim, Optional[str]]:
        sig: Optional[_FuncInfo] = None
        if cls.is_dataclass and cls.field_order:
            sig = _FuncInfo(qualname=f"{cls.qualname}.__init__")
            sig.params = list(cls.field_order)
            sig.by_name = {p.name: p for p in cls.field_order}
        elif "__init__" in cls.methods:
            sig = cls.methods["__init__"]
        if sig is None:
            self._eval_args_only(node)
            return None, cls.qualname
        dim, _cls = self._checked_call(node, sig, _last_segment(cls.qualname))
        del dim
        return None, cls.qualname

    # -- statements -----------------------------------------------------
    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim, cls = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, dim, cls)
        elif isinstance(stmt, ast.AnnAssign):
            ann = _ann_info(stmt.annotation, self.unit.aliases)
            dim, cls = (self.eval(stmt.value) if stmt.value is not None else (None, None))
            if (
                ann.dim is not None
                and _is_real(dim)
                and dim != ann.dim
                and not isinstance(stmt.value, ast.Constant)
            ):
                self.report(
                    "UNITS005",
                    stmt,
                    f"assignment to target annotated "
                    f"`{format_dim(ann.dim)}` has unit `{format_dim(dim)}`",
                )
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = ann.dim if ann.dim is not None else dim
                self.types[stmt.target.id] = ann.cls or cls
            elif isinstance(stmt.target, ast.Attribute):
                self._assign_attr(stmt.target, ann.dim if ann.dim is not None else dim,
                                  ann.cls or cls, check_node=stmt)
        elif isinstance(stmt, ast.AugAssign):
            current = self.dim(stmt.target)
            incoming = self.dim(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                word = "addition" if isinstance(stmt.op, ast.Add) else "subtraction"
                result = self._same_unit(
                    stmt, "UNITS001", f"augmented {word}", [current, incoming]
                )
            elif isinstance(stmt.op, ast.Mult):
                result = self._product(current, incoming)
            elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
                result = self._product(current, incoming, div=True)
            else:
                result = None
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = result
            elif isinstance(stmt.target, ast.Attribute):
                self._record_self_attr(stmt.target, result, None)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._bind_iter(stmt.target, stmt.iter)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = None
                    self.types[item.optional_vars.id] = None
            self.visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = None
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, ast.FunctionDef):
            child = _BodyChecker(
                self.unit, self.program, collect_only=self.collect_only,
                self_class=self.self_class,
                return_dim=_ann_info(stmt.returns, self.unit.aliases).dim,
                parent_env=self.env, parent_types=self.types,
            )
            child.seed_params(stmt, is_method=False)
            child.visit_body(stmt.body)
            self.findings.extend(child.findings)
            self.env[stmt.name] = None
        # ClassDef / imports / pass / global: nothing to track.

    def _check_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        if isinstance(stmt.value, ast.Constant) and stmt.value.value is None:
            return
        got = self.dim(stmt.value)
        if self.return_dim is None or not _is_real(got):
            return
        if got != self.return_dim:
            self.report(
                "UNITS004",
                stmt,
                f"return annotated `{format_dim(self.return_dim)}` "
                f"has unit `{format_dim(got)}`",
            )

    def _assign(
        self, target: ast.expr, value: ast.expr, dim: MaybeDim, cls: Optional[str]
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dim
            self.types[target.id] = cls
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    sub_dim, sub_cls = self.eval(sub_value)
                    self._assign(sub_target, sub_value, sub_dim, sub_cls)
            else:
                for sub_target in target.elts:
                    self._assign(sub_target, value, dim, None)
        elif isinstance(target, ast.Attribute):
            self._assign_attr(target, dim, cls, check_node=target)
        elif isinstance(target, ast.Subscript):
            container = self.dim(target.value)
            if _is_real(container) and _is_real(dim) and container != dim:
                self.report(
                    "UNITS005",
                    target,
                    f"element assignment into `{format_dim(container)}` "
                    f"container has unit `{format_dim(dim)}`",
                )
            elif (
                isinstance(target.value, ast.Name)
                and isinstance(container, _AnyDim)
                and _is_real(dim)
            ):
                # A container seeded from literals (``[0.0] * n``) adopts
                # the unit of the first real element stored into it.
                self.env[target.value.id] = dim
        elif isinstance(target, ast.Starred):
            self._assign(target.value, target, None, None)

    def _assign_attr(
        self,
        target: ast.Attribute,
        dim: MaybeDim,
        cls: Optional[str],
        *,
        check_node: ast.AST,
    ) -> None:
        _recv_dim, recv_cls = self.eval(target.value)
        owner = self.program.resolve_class(recv_cls)
        declared = owner.fields.get(target.attr) if owner is not None else None
        if declared is not None and _is_real(dim) and dim != declared:
            self.report(
                "UNITS005",
                check_node,
                f"assignment to `{target.attr}` declared "
                f"`{format_dim(declared)}` has unit `{format_dim(dim)}`",
            )
        self._record_self_attr(target, dim, cls)

    def _record_self_attr(
        self, target: ast.Attribute, dim: MaybeDim, cls: Optional[str]
    ) -> None:
        """During collection: learn ``self.x`` dims for the class registry."""
        if not self.collect_only or self.self_class is None:
            return
        if not (isinstance(target.value, ast.Name) and target.value.id == "self"):
            return
        info = self.self_class
        attr = target.attr
        if attr in info.fields or attr in info.tainted:
            return
        if _is_real(dim):
            known = info.inferred.get(attr)
            if known is not None and known != dim:
                info.tainted.add(attr)
                info.inferred.pop(attr, None)
            else:
                info.inferred[attr] = dim
        if cls is not None and attr not in info.attr_cls:
            existing = info.inferred_cls.get(attr)
            if existing is not None and existing != cls:
                info.inferred_cls.pop(attr, None)
            else:
                info.inferred_cls[attr] = cls

    # -- iteration binding ----------------------------------------------
    def _bind_iter(self, target: ast.expr, iterable: ast.expr) -> None:
        """Bind loop/comprehension targets from an iterable expression."""
        if isinstance(iterable, ast.Call):
            dotted = _canonical(iterable.func, self.unit.aliases)
            tail = _last_segment(dotted or "")
            if tail == "zip" and isinstance(target, (ast.Tuple, ast.List)):
                element_dims = [self.eval(a) for a in iterable.args]
                for sub, (dim, cls) in zip(target.elts, element_dims):
                    self._assign(sub, iterable, dim, cls)
                return
            if tail == "enumerate":
                inner = self.eval(iterable.args[0]) if iterable.args else (None, None)
                if isinstance(target, (ast.Tuple, ast.List)) and len(target.elts) == 2:
                    self._assign(target.elts[0], iterable, DIMENSIONLESS, None)
                    self._assign(target.elts[1], iterable, inner[0], inner[1])
                    return
            if tail == "range":
                self._eval_args_only(iterable)
                self._assign(target, iterable, DIMENSIONLESS, None)
                return
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Attribute):
            # d.items()/.values()/.keys(): we track a dict's *value* dim,
            # so keys are unknown and values carry the dict's dim.
            attr = iterable.func.attr
            if attr == "keys":
                self.eval(iterable.func.value)
                self._assign(target, iterable, None, None)
                return
            if attr == "items":
                dict_dim, _cls = self.eval(iterable.func.value)
                if isinstance(target, (ast.Tuple, ast.List)) and len(target.elts) == 2:
                    self._assign(target.elts[0], iterable, None, None)
                    self._assign(target.elts[1], iterable, dict_dim, None)
                    return
        dim, cls = self.eval(iterable)
        self._assign(target, iterable, dim, cls)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass
class UnitsReport:
    """Findings plus per-module annotation coverage."""

    findings: List[Finding]
    coverage: Dict[str, Tuple[int, int]]  #: module → (unit slots, float slots)


def _parse_units(
    sources: Sequence[Tuple[str, str, str]]
) -> List[_ModuleUnit]:
    units: List[_ModuleUnit] = []
    for module, path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: {exc}") from exc
        units.append(
            _ModuleUnit(
                module=module,
                path=path,
                tree=tree,
                source=source,
                aliases=_collect_aliases(tree, module),
                suppressions=_suppressions(source),
            )
        )
    return units


def _check_units(
    units: Sequence[_ModuleUnit],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> UnitsReport:
    program = _Program()
    active = [u for u in units if u.suppressions is not None]
    for unit in active:
        _collect_module(unit, program)
    _infer_instance_attrs(active, program)
    program.finalize_attrs()

    findings: List[Finding] = []
    for unit in active:
        file_findings: List[Finding] = []
        for stmt in unit.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                file_findings.extend(
                    _check_function(stmt, unit, program, self_class=None)
                )
            elif isinstance(stmt, ast.ClassDef):
                cls = program.resolve_class(f"{unit.module}.{stmt.name}")
                for method in stmt.body:
                    if isinstance(method, ast.FunctionDef):
                        file_findings.extend(
                            _check_function(method, unit, program, self_class=cls)
                        )
        table = unit.suppressions
        assert table is not None
        findings.extend(
            f for f in file_findings if not _suppressed(f, table)  # type: ignore[arg-type]
        )

    selected = {s.strip().upper() for s in select} if select else None
    ignored = {s.strip().upper() for s in ignore} if ignore else set()
    # set(): tuple-literal assignments evaluate element expressions on
    # both sides of the binding, which can report one defect twice.
    deduped = {
        f
        for f in findings
        if (selected is None or f.code in selected) and f.code not in ignored
    }
    coverage = {
        u.module: (u.coverage.unit_slots, u.coverage.floaty_slots) for u in units
    }
    return UnitsReport(findings=sorted(deduped), coverage=coverage)


def _check_function(
    func: ast.FunctionDef,
    unit: _ModuleUnit,
    program: _Program,
    *,
    self_class: Optional[_ClassInfo],
) -> List[Finding]:
    checker = _BodyChecker(
        unit,
        program,
        self_class=self_class,
        return_dim=_ann_info(func.returns, unit.aliases).dim,
    )
    checker.seed_params(func, is_method=self_class is not None)
    checker.visit_body(func.body)
    return checker.findings


def check_source(
    source: str,
    *,
    module: str = "repro.core.fixture",
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Check one module given as source text (the test-fixture entry)."""
    units = _parse_units([(module, path, source)])
    return _check_units(units, select=select, ignore=ignore).findings


def check_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    module: Optional[str] = None,
) -> UnitsReport:
    """Check every python file under ``paths`` as one program."""
    sources: List[Tuple[str, str, str]] = []
    for file_path in iter_python_files(paths):
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        name = module if module is not None else module_name_for(file_path)
        sources.append((name, str(file_path), text))
    units = _parse_units(sources)
    return _check_units(units, select=select, ignore=ignore)


def coverage_table(coverage: Mapping[str, Tuple[int, int]]) -> str:
    """Render the per-module annotation coverage report."""
    lines = [f"{'module':<44} {'unit':>6} {'float':>6} {'pct':>6}"]
    total_unit = total_floaty = 0
    for module in sorted(coverage):
        unit_slots, floaty_slots = coverage[module]
        total_unit += unit_slots
        total_floaty += floaty_slots
        if floaty_slots == 0:
            continue
        pct = 100.0 * unit_slots / floaty_slots
        lines.append(f"{module:<44} {unit_slots:>6} {floaty_slots:>6} {pct:>5.1f}%")
    if total_floaty:
        pct = 100.0 * total_unit / total_floaty
        lines.append(f"{'TOTAL':<44} {total_unit:>6} {total_floaty:>6} {pct:>5.1f}%")
    return "\n".join(lines)


def coverage_json(coverage: Mapping[str, Tuple[int, int]]) -> str:
    """JSON form of the coverage report (the CI artifact)."""
    payload = {
        "modules": {
            module: {"unit_slots": unit_slots, "float_slots": floaty_slots}
            for module, (unit_slots, floaty_slots) in sorted(coverage.items())
        },
        "total": {
            "unit_slots": sum(u for u, _ in coverage.values()),
            "float_slots": sum(f for _, f in coverage.values()),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
