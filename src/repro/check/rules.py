"""The sim-lint rule catalogue (SIM001–SIM009).

Each rule guards a property the simulator's correctness argument
depends on (see ``docs/static-analysis.md`` for the full rationale and
the paper sections each rule protects):

======= ==============================================================
SIM001  No wall-clock reads inside the deterministic layers.
SIM002  No unseeded randomness outside :mod:`repro.sim.rng`.
SIM003  No bare ``==`` / ``!=`` against floats in numeric layers.
SIM004  Package layering: lower layers never import higher ones.
SIM005  No mutation of frozen :class:`repro.config.SimulationConfig`.
SIM006  Public functions must be fully annotated.
SIM007  No ``print`` in library code (use the tracer or the CLI).
SIM008  No silently swallowed broad exceptions.
SIM009  No unordered set iteration feeding scheduling decisions.
======= ==============================================================

The dimensional-analysis rules (UNITS001–UNITS005) live in
:mod:`repro.check.units`; they share this package's suppression and
CLI machinery but run as a whole-program pass.

Rules are plain data (:class:`Rule`) over two callables so the engine
in :mod:`repro.check.linter` stays rule-agnostic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.check.linter import Finding, ModuleContext

__all__ = ["RULES", "Rule", "SIM001_MODULE_ALLOWLIST", "rule_catalog"]


@dataclass(frozen=True)
class Rule:
    """One sim-lint rule: metadata plus its predicate and checker."""

    code: str
    name: str
    summary: str
    rationale: str
    applies: Callable[[ModuleContext], bool]
    check: Callable[[ModuleContext], Iterable[Finding]]


# ---------------------------------------------------------------------------
# Shared helpers: import-alias resolution
# ---------------------------------------------------------------------------


def _collect_aliases(tree: ast.Module, module: str) -> Dict[str, str]:
    """Map local names to the canonical dotted name they refer to.

    ``import time as _time`` → ``{"_time": "time"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``;
    ``from . import engine`` (in ``repro.sim.x``) → ``{"engine": "repro.sim.engine"}``.
    """
    aliases: Dict[str, str] = {}
    package_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def _dotted(node: ast.AST) -> Optional[str]:
    """Flatten a ``Name``/``Attribute`` chain into ``"a.b.c"``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _canonical(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call target through the module's import aliases."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return dotted
    return f"{resolved}.{rest}" if rest else resolved


# ---------------------------------------------------------------------------
# SIM001 — wall-clock reads in deterministic code
# ---------------------------------------------------------------------------

#: Layers whose behaviour must be a pure function of (config, seed).
#: ``repro.obs`` is included: the tracer only observes simulation state,
#: so a wall-clock read there would leak host timing into artifacts that
#: must be reproducible bit-for-bit.
_DETERMINISTIC = (
    "repro.sim",
    "repro.server",
    "repro.core",
    "repro.power",
    "repro.quality",
    "repro.workload",
    "repro.metrics",
    "repro.obs",
)

#: SIM001 module allowlist — the sanctioned homes for host-clock reads:
#:
#: * ``repro.obs.prof`` — the hot-path profiler reads the monotonic
#:   clock to measure host wall time (scheduler overhead, planner
#:   math) that is *written* to telemetry and never read back by
#:   simulation logic, so it cannot perturb results;
#: * ``repro.obs.runs`` — the run registry stamps stored artifacts
#:   with a wall-clock ``created_unix`` so humans can order store
#:   entries; the stamp is storage metadata, applied after the run
#:   finished, and never enters simulated time.
#: * ``repro.obs.bus`` — the fleet telemetry bus stamps messages with
#:   ``sent_unix`` and tracks worker liveness (heartbeat staleness)
#:   against the host clock; both are fleet-orchestration metadata
#:   about *processes*, never about simulated time, and nothing in the
#:   simulator reads them back.
#:
#: Code elsewhere must route timing through a
#: :class:`repro.obs.prof.PhaseProfiler` instead of reading the clock —
#: inline ``# simlint: ignore[SIM001]`` pragmas are no longer used in
#: ``src/repro``.  In particular the *streaming* telemetry modules
#: (``repro.obs.stream``, ``repro.obs.slo``) are deliberately NOT
#: exempt: windowing and SLO evaluation are over simulated seconds
#: only.  Documented in ``docs/static-analysis.md``.
SIM001_MODULE_ALLOWLIST: FrozenSet[str] = frozenset(
    {"repro.obs.prof", "repro.obs.runs", "repro.obs.bus"}
)

_WALL_CLOCK: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _check_wall_clock(ctx: ModuleContext) -> Iterable[Finding]:
    aliases = _collect_aliases(ctx.tree, ctx.module)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical(node.func, aliases)
        if name in _WALL_CLOCK:
            yield ctx.finding(
                "SIM001",
                node,
                f"wall-clock read `{name}()` in deterministic simulator code; "
                "use `sim.now` (simulated time) instead",
            )


# ---------------------------------------------------------------------------
# SIM002 — unseeded randomness
# ---------------------------------------------------------------------------

#: numpy.random attributes that are constructors, not the legacy global RNG.
_NP_RANDOM_OK: FrozenSet[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)


def _check_randomness(ctx: ModuleContext) -> Iterable[Finding]:
    aliases = _collect_aliases(ctx.tree, ctx.module)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical(node.func, aliases)
        if name is None:
            continue
        if name == "random" or name.startswith("random."):
            yield ctx.finding(
                "SIM002",
                node,
                f"stdlib `{name}()` draws from process-global state; use a "
                "named stream from `repro.sim.rng.RandomStreams`",
            )
        elif name == "numpy.random.default_rng" and not node.args and not node.keywords:
            yield ctx.finding(
                "SIM002",
                node,
                "`numpy.random.default_rng()` without a seed is entropy-seeded "
                "and unreproducible; pass a seed or use `repro.sim.rng`",
            )
        elif name.startswith("numpy.random.") and name.split(".")[-1] not in _NP_RANDOM_OK:
            yield ctx.finding(
                "SIM002",
                node,
                f"legacy global-state RNG call `{name}()`; use a seeded "
                "`numpy.random.Generator` via `repro.sim.rng.RandomStreams`",
            )


# ---------------------------------------------------------------------------
# SIM003 — bare float equality
# ---------------------------------------------------------------------------

#: Layers doing continuous arithmetic (speeds, watts, joules, quality).
_NUMERIC = (
    "repro.sim",
    "repro.server",
    "repro.core",
    "repro.power",
    "repro.quality",
    "repro.analysis",
    "repro.mixed",
)


def _is_floaty(node: ast.AST) -> bool:
    """Conservatively: does this expression *syntactically* involve floats?

    ``float("inf")`` / ``float("nan")`` style sentinels are excluded:
    comparing against infinity is exact, not a rounding hazard.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floaty(node.left) or _is_floaty(node.right)
    if isinstance(node, ast.Call):
        target = _dotted(node.func)
        if target == "float":
            return not (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            )
        return target in {"math.sqrt", "math.exp", "math.log"}
    return False


def _check_float_equality(ctx: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        comparators = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, comparators, comparators[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floaty(left) or _is_floaty(right):
                yield ctx.finding(
                    "SIM003",
                    node,
                    "exact `==`/`!=` against a float; accumulated rounding makes "
                    "this unstable — use `math.isclose` or an epsilon guard "
                    "(cf. `_VOLUME_EPS` in repro.server.core)",
                )
                break


# ---------------------------------------------------------------------------
# SIM004 — package layering
# ---------------------------------------------------------------------------

#: Allowed `repro.<segment>` imports per package; ``None`` = unrestricted.
#: Order mirrors the architecture diagram in ``docs/architecture.md``:
#: sim/obs/power/quality at the bottom, experiments/cli at the top.
#: ``repro.units`` is the stdlib-only unit vocabulary: pure type
#: aliases plus the dimension algebra, no simulator imports.  Every
#: layer may depend on it (annotations are the whole point), so it
#: appears in every allowlist below and allows nothing but itself.
_LAYER_ALLOW: Dict[str, Optional[FrozenSet[str]]] = {
    "units": frozenset({"units"}),
    "errors": frozenset({"errors"}),
    "sim": frozenset({"sim", "errors", "units"}),
    "obs": frozenset({"obs", "errors", "units"}),
    "power": frozenset({"power", "errors", "units"}),
    "quality": frozenset({"quality", "errors", "units"}),
    "workload": frozenset({"workload", "errors", "sim", "config", "units"}),
    # chaos is pure disturbance data + event-heap injection: it may see
    # the sim kernel but never the schedulers it perturbs (the harness
    # hands itself to the injector at runtime).
    "chaos": frozenset({"chaos", "errors", "sim", "units"}),
    "metrics": frozenset(
        {"metrics", "errors", "workload", "quality", "obs", "units"}
    ),
    "config": frozenset(
        {"config", "errors", "power", "quality", "sim", "workload", "units",
         "chaos"}
    ),
    "server": frozenset(
        {"server", "errors", "sim", "obs", "power", "quality",
         "workload", "metrics", "config", "units", "chaos"}
    ),
    "core": frozenset(
        {"core", "server", "errors", "sim", "obs", "power", "quality",
         "workload", "metrics", "config", "units"}
    ),
    "analysis": frozenset(
        {"analysis", "errors", "power", "quality", "workload", "sim",
         "config", "units"}
    ),
    "mixed": frozenset(
        {"mixed", "core", "server", "errors", "sim", "obs", "power",
         "quality", "workload", "metrics", "config", "units"}
    ),
    "baselines": frozenset(
        {"baselines", "core", "server", "errors", "sim", "obs", "power",
         "quality", "workload", "metrics", "config", "units"}
    ),
    "check": frozenset({"check", "errors", "obs", "config", "units"}),
    # experiments, cli, validation: top of the stack, unrestricted.
}


def _type_checking_imports(tree: ast.Module) -> FrozenSet[int]:
    """Ids of import nodes under ``if TYPE_CHECKING:`` blocks.

    Such imports never execute at runtime, so they do not count as
    layering edges — annotating ``repro.obs`` with higher-layer types
    keeps it import-light.
    """
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = _dotted(node.test)
        if test not in {"TYPE_CHECKING", "typing.TYPE_CHECKING"}:
            continue
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(sub))
    return frozenset(guarded)


def _imported_repro_modules(ctx: ModuleContext) -> Iterable[tuple[ast.AST, str]]:
    package_parts = ctx.module.split(".")[:-1]
    guarded = _type_checking_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if id(node) in guarded:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([base] if base else []))
            if base == "repro" or base.startswith("repro."):
                yield node, base


def _layer_of(module: str) -> Optional[str]:
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1]


#: The fleet-orchestration modules: process fan-out and the telemetry
#: bus.  Confined on *both* sides — only the top-of-stack layers listed
#: in :data:`_FLEET_IMPORTERS` may import them (the deterministic
#: simulator must never grow a dependency on process orchestration),
#: and they are the only modules allowed to import ``multiprocessing``
#: at all (a stray Pool in a lower layer would fork the simulator's
#: state and silently break per-seed reproducibility).
_FLEET_MODULES: FrozenSet[str] = frozenset(
    {"repro.obs.bus", "repro.experiments.fleet"}
)

#: Module prefixes allowed to import the fleet modules (besides the
#: fleet modules themselves): the experiment drivers and the CLI.
_FLEET_IMPORTERS = ("repro.experiments", "repro.cli")


def _may_import_fleet(module: str) -> bool:
    if module in _FLEET_MODULES:
        return True
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _FLEET_IMPORTERS
    )


def _fleet_imports(ctx: ModuleContext) -> Iterable[tuple[ast.AST, str]]:
    """Import nodes pulling in a fleet module, via any spelling.

    Catches ``import repro.experiments.fleet``, ``from
    repro.experiments.fleet import X`` *and* ``from repro.obs import
    bus`` — the last resolves the submodule through the alias path the
    plain layering walk treats as a ``repro.obs`` edge.
    """
    package_parts = ctx.module.split(".")[:-1]
    guarded = _type_checking_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if id(node) in guarded:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _FLEET_MODULES:
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([base] if base else []))
            if base in _FLEET_MODULES:
                yield node, base
                continue
            for alias in node.names:
                full = f"{base}.{alias.name}" if base else alias.name
                if full in _FLEET_MODULES:
                    yield node, full


def _multiprocessing_imports(ctx: ModuleContext) -> Iterable[ast.AST]:
    guarded = _type_checking_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if id(node) in guarded:
            continue
        if isinstance(node, ast.Import):
            if any(
                alias.name == "multiprocessing"
                or alias.name.startswith("multiprocessing.")
                for alias in node.names
            ):
                yield node
        elif isinstance(node, ast.ImportFrom) and not node.level:
            base = node.module or ""
            if base == "multiprocessing" or base.startswith("multiprocessing."):
                yield node


def _check_layering(ctx: ModuleContext) -> Iterable[Finding]:
    yield from _check_fleet_confinement(ctx)
    layer = _layer_of(ctx.module)
    if layer is None:
        return
    allowed = _LAYER_ALLOW.get(layer)
    if allowed is None:
        return
    for node, imported in _imported_repro_modules(ctx):
        target = _layer_of(imported)
        if target is None:
            # `from repro import X` / `import repro`: pulls the whole
            # top-level namespace — only the top layers may do that.
            yield ctx.finding(
                "SIM004",
                node,
                f"`{ctx.module}` (layer `{layer}`) imports the top-level "
                "`repro` namespace; import the concrete module instead",
            )
            continue
        if target not in allowed:
            yield ctx.finding(
                "SIM004",
                node,
                f"layering violation: `{ctx.module}` (layer `{layer}`) must "
                f"not import `repro.{target}` (allowed: "
                f"{', '.join(sorted(allowed))})",
            )


def _check_fleet_confinement(ctx: ModuleContext) -> Iterable[Finding]:
    """The fleet-specific half of SIM004 (see :data:`_FLEET_MODULES`)."""
    if not _may_import_fleet(ctx.module):
        for node, imported in _fleet_imports(ctx):
            yield ctx.finding(
                "SIM004",
                node,
                f"fleet confinement: `{ctx.module}` must not import "
                f"`{imported}`; only the fleet modules themselves, "
                "`repro.experiments.*` and `repro.cli` may depend on "
                "process orchestration",
            )
    if ctx.module not in _FLEET_MODULES:
        for node in _multiprocessing_imports(ctx):
            yield ctx.finding(
                "SIM004",
                node,
                f"`{ctx.module}` imports `multiprocessing`; process "
                "fan-out is confined to repro.obs.bus and "
                "repro.experiments.fleet so the simulator stays a pure "
                "function of (config, seed)",
            )


# ---------------------------------------------------------------------------
# SIM005 — frozen SimulationConfig mutation
# ---------------------------------------------------------------------------

_CONFIG_NAMES = frozenset({"config", "cfg"})

_CONFIG_FIELDS_FALLBACK: FrozenSet[str] = frozenset(
    {
        "arrival_rate", "horizon", "demand_alpha", "demand_min", "demand_max",
        "window_low", "window_high", "m", "budget", "power_a", "power_beta",
        "units_per_ghz_second", "discrete_levels", "top_speed", "quality_c",
        "quality_shape", "q_ge", "static_power_per_core", "core_power_scales",
        "quantum", "counter_threshold", "critical_load_fraction", "seed",
    }
)

_config_fields_cache: Optional[FrozenSet[str]] = None


def _config_fields() -> FrozenSet[str]:
    """Field names of :class:`SimulationConfig` (imported lazily)."""
    global _config_fields_cache
    if _config_fields_cache is None:
        try:
            import dataclasses

            from repro.config import SimulationConfig

            _config_fields_cache = frozenset(
                f.name for f in dataclasses.fields(SimulationConfig)
            )
        except Exception:  # pragma: no cover - only if repro.config breaks
            _config_fields_cache = _CONFIG_FIELDS_FALLBACK
    return _config_fields_cache


def _ends_in_config(node: ast.AST) -> bool:
    """Is this expression ``config`` / ``cfg`` / ``<anything>.config``?"""
    if isinstance(node, ast.Name):
        return node.id in _CONFIG_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _CONFIG_NAMES
    return False


def _check_config_mutation(ctx: ModuleContext) -> Iterable[Finding]:
    fields = _config_fields()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name == "object.__setattr__":
                yield ctx.finding(
                    "SIM005",
                    node,
                    "`object.__setattr__` bypasses frozen-dataclass protection; "
                    "derive variants with `SimulationConfig.with_overrides`",
                )
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in fields
                and _ends_in_config(target.value)
            ):
                yield ctx.finding(
                    "SIM005",
                    node,
                    f"assignment to frozen config field `{target.attr}`; "
                    "use `SimulationConfig.with_overrides` to derive a variant",
                )


# ---------------------------------------------------------------------------
# SIM006 — fully annotated public API
# ---------------------------------------------------------------------------


def _is_staticmethod(func: ast.AST) -> bool:
    return any(
        isinstance(d, ast.Name) and d.id == "staticmethod"
        for d in getattr(func, "decorator_list", [])
    )


def _missing_annotations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, *, is_method: bool
) -> List[str]:
    missing: List[str] = []
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and not _is_staticmethod(func) and positional:
        positional = positional[1:]  # self / cls
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(("*" if star is args.vararg else "**") + star.arg)
    if func.returns is None and func.name != "__init__":
        missing.append("return")
    return missing


def _check_annotations(ctx: ModuleContext) -> Iterable[Finding]:
    def visit(body: Iterable[ast.stmt], *, in_class: bool, private_scope: bool):
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from visit(
                    node.body,
                    in_class=True,
                    private_scope=private_scope or node.name.startswith("_"),
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                public = not node.name.startswith("_") or node.name == "__init__"
                if public and not private_scope:
                    missing = _missing_annotations(node, is_method=in_class)
                    if missing:
                        yield ctx.finding(
                            "SIM006",
                            node,
                            f"public function `{node.name}` is missing type "
                            f"annotations for: {', '.join(missing)}",
                        )
                # Nested defs are implementation details — not visited.

    yield from visit(ctx.tree.body, in_class=False, private_scope=False)


# ---------------------------------------------------------------------------
# SIM007 — print in library code
# ---------------------------------------------------------------------------

#: Modules whose *job* is terminal output.
_PRINT_OK = ("repro.cli", "repro.check", "repro.experiments", "repro.validation")


def _check_print(ctx: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield ctx.finding(
                "SIM007",
                node,
                "`print` in library code; report through the tracer/metrics "
                "(repro.obs) or return data for the CLI layer to present",
            )


# ---------------------------------------------------------------------------
# SIM008 — silently swallowed broad exceptions
# ---------------------------------------------------------------------------


def _is_broad(handler_type: Optional[ast.expr]) -> bool:
    if handler_type is None:
        return True
    name = _dotted(handler_type)
    return name in {"Exception", "BaseException"}


def _body_is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _check_silent_except(ctx: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _is_broad(node.type)
            and _body_is_silent(node.body)
        ):
            yield ctx.finding(
                "SIM008",
                node,
                "broad exception silently swallowed; simulator faults must "
                "surface or energy/quality accounting silently corrupts",
            )


# ---------------------------------------------------------------------------
# SIM009 — unordered set/dict iteration feeding scheduling decisions
# ---------------------------------------------------------------------------

#: Layers whose iteration order becomes scheduling order: the policy
#: code (targets, plans, power splits) and the event kernel.
_ORDER_SENSITIVE = ("repro.core", "repro.sim")

#: Set methods that return another set (propagate set-ness).
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Calls whose output order is the input's iteration order.
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _set_annotation(node: Optional[ast.expr]) -> bool:
    """Is this annotation ``Set[...]`` / ``set[...]`` / ``FrozenSet[...]``?"""
    if isinstance(node, ast.Subscript):
        node = node.value
    dotted = _dotted(node) if node is not None else None
    return dotted is not None and dotted.rsplit(".", 1)[-1] in {
        "set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet",
    }


def _collect_set_names(tree: ast.Module) -> tuple[FrozenSet[str], FrozenSet[str]]:
    """Names / attributes bound to set-typed values anywhere in the module.

    Iterated to a fixpoint so ``a = set(); b = a | other`` marks both.
    """
    names: set[str] = set()
    attrs: set[str] = set()

    def is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in {"set", "frozenset"}:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
            ):
                return is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return is_set_expr(node.left) or is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute):
            return node.attr in attrs
        return False

    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign) and is_set_expr(node.value):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and (
                _set_annotation(node.annotation)
                or (node.value is not None and is_set_expr(node.value))
            ):
                targets = [node.target]
            elif isinstance(node, ast.arg) and _set_annotation(node.annotation):
                if node.arg not in names:
                    names.add(node.arg)
                    changed = True
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in names:
                    names.add(target.id)
                    changed = True
                elif isinstance(target, ast.Attribute) and target.attr not in attrs:
                    attrs.add(target.attr)
                    changed = True
    return frozenset(names), frozenset(attrs)


def _check_unordered_iteration(ctx: ModuleContext) -> Iterable[Finding]:
    names, attrs = _collect_set_names(ctx.tree)

    def is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in {"set", "frozenset"}:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
            ):
                return is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return is_set_expr(node.left) or is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute):
            return node.attr in attrs
        return False

    def finding_at(node: ast.AST) -> Finding:
        return ctx.finding(
            "SIM009",
            node,
            "iteration over an unordered set feeds scheduling decisions; "
            "hash order varies across runs/platforms — wrap in `sorted(...)` "
            "(scheduling order must be deterministic per seed)",
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and is_set_expr(node.iter):
            yield finding_at(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if is_set_expr(gen.iter):
                    yield finding_at(gen.iter)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_MATERIALIZERS
            and len(node.args) == 1
            and not node.keywords
            and is_set_expr(node.args[0])
        ):
            yield finding_at(node)


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------


def _always(_ctx: ModuleContext) -> bool:
    return True


RULES: List[Rule] = [
    Rule(
        code="SIM001",
        name="wall-clock-read",
        summary="No wall-clock reads inside the deterministic layers.",
        rationale=(
            "Results must be a pure function of (config, seed): the paper's "
            "figures are time integrals over *simulated* time (§II-B, §IV-B). "
            "A wall-clock read couples output to host load. The only "
            "exemptions are the SIM001_MODULE_ALLOWLIST modules: "
            "repro.obs.prof (the phase profiler measures host-side "
            "overhead that never feeds back into the simulation) and "
            "repro.obs.runs (the run registry stamps stored artifacts "
            "with a wall-clock creation time)."
        ),
        applies=lambda ctx: (
            ctx.in_package(*_DETERMINISTIC)
            and ctx.module not in SIM001_MODULE_ALLOWLIST
        ),
        check=_check_wall_clock,
    ),
    Rule(
        code="SIM002",
        name="unseeded-randomness",
        summary="No unseeded or global-state randomness outside repro.sim.rng.",
        rationale=(
            "Scheduler comparisons require identical arrivals per seed "
            "(§IV-B); process-global RNGs couple streams and break "
            "replication ladders."
        ),
        applies=lambda ctx: ctx.module != "repro.sim.rng",
        check=_check_randomness,
    ),
    Rule(
        code="SIM003",
        name="float-equality",
        summary="No bare ==/!= against floats in numeric layers.",
        rationale=(
            "Speeds, watts, joules and quality ratios accumulate rounding; "
            "exact comparison flips branches nondeterministically (the "
            "`_VOLUME_EPS` guard in repro.server.core exists for this)."
        ),
        applies=lambda ctx: ctx.in_package(*_NUMERIC),
        check=_check_float_equality,
    ),
    Rule(
        code="SIM004",
        name="layering",
        summary="Lower layers must not import higher layers.",
        rationale=(
            "repro.sim must stay a generic discrete-event kernel and "
            "repro.obs import-light, so tracing can never perturb what it "
            "observes (bit-identical traced runs). The fleet half of the "
            "rule confines process orchestration: only repro.experiments.* "
            "and repro.cli may import repro.obs.bus / "
            "repro.experiments.fleet, and only those two fleet modules may "
            "import multiprocessing at all."
        ),
        applies=_always,
        check=_check_layering,
    ),
    Rule(
        code="SIM005",
        name="frozen-config-mutation",
        summary="Never mutate a frozen SimulationConfig.",
        rationale=(
            "SimulationConfig is the identity of a run; sweeps share one "
            "instance across harnesses, so in-place edits corrupt every "
            "concurrent experiment. Use with_overrides()."
        ),
        applies=_always,
        check=_check_config_mutation,
    ),
    Rule(
        code="SIM006",
        name="untyped-public-api",
        summary="Public functions must be fully annotated.",
        rationale=(
            "The strict-typing gate (mypy --strict) only binds if the public "
            "surface is annotated; unannotated defs erase checking for every "
            "caller."
        ),
        applies=_always,
        check=_check_annotations,
    ),
    Rule(
        code="SIM007",
        name="print-in-library",
        summary="No print() in library code.",
        rationale=(
            "Library layers must report through repro.obs or return values; "
            "stray prints corrupt the CLI's parseable output (CSV/JSONL)."
        ),
        applies=lambda ctx: not ctx.in_package(*_PRINT_OK),
        check=_check_print,
    ),
    Rule(
        code="SIM008",
        name="silent-broad-except",
        summary="No silently swallowed broad exceptions.",
        rationale=(
            "A swallowed SchedulingError leaves jobs half-settled: quality "
            "denominators and energy integrals silently drift from the "
            "truth the sanitizer asserts."
        ),
        applies=_always,
        check=_check_silent_except,
    ),
    Rule(
        code="SIM009",
        name="unordered-iteration",
        summary=(
            "No unordered set iteration feeding scheduling decisions in "
            "repro.core / repro.sim without an explicit sorted(...)."
        ),
        rationale=(
            "Set iteration order follows hash order, which varies across "
            "runs and platforms for str keys (PYTHONHASHSEED); a policy "
            "that visits jobs or cores in set order breaks the "
            "reproducibility contract (identical RunResult per seed) that "
            "every fidelity gate relies on. Membership tests and "
            "order-free reductions (min/max/sum/len) are fine; iteration "
            "must go through sorted(...). Dicts preserve insertion order "
            "and are not flagged — but dicts built *from* sets inherit "
            "the hazard, so build them from sorted sets too."
        ),
        applies=lambda ctx: ctx.in_package(*_ORDER_SENSITIVE),
        check=_check_unordered_iteration,
    ),
]


def rule_catalog() -> str:
    """Human-readable rule listing (the ``rules`` CLI subcommand)."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.code}  {rule.name}: {rule.summary}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
