"""Class stamping for mixed workloads.

:class:`MixedClassWorkload` wraps any workload (Poisson, static,
piecewise-rate) and assigns each job a class index drawn from given
fractions — deterministically, from its own named RNG stream, so the
same seed yields the same class pattern regardless of how the inner
workload consumed its streams.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.units import Speed
from repro.workload.generator import JobSink, Workload
from repro.workload.job import Job

__all__ = ["MixedClassWorkload"]


class MixedClassWorkload:
    """Wrap a workload and stamp per-job class indices.

    Parameters
    ----------
    inner:
        Any workload exposing ``materialize()`` / ``install(sim, sink)``.
    fractions:
        Probability of each class (must sum to 1).
    streams:
        RNG factory; the "classes" stream is used.
    """

    def __init__(
        self,
        inner: Workload,
        fractions: Sequence[float],
        streams: RandomStreams | None = None,
    ) -> None:
        fr = np.asarray(fractions, dtype=float)
        if fr.size < 1 or np.any(fr < 0) or abs(float(np.sum(fr)) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"class fractions must be non-negative and sum to 1, got {fractions!r}"
            )
        self.inner = inner
        self.fractions = fr
        self.streams = streams or RandomStreams(seed=0)
        self._stamped = False

    def materialize(self) -> List[Job]:
        """Materialize the inner workload and stamp classes (once)."""
        jobs = self.inner.materialize()
        if not self._stamped:
            rng = self.streams.fresh("classes")
            classes = rng.choice(self.fractions.size, size=len(jobs), p=self.fractions)
            for job, klass in zip(jobs, classes):
                job.klass = int(klass)
            self._stamped = True
        return jobs

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Stamp classes, then delegate arrival installation."""
        self.materialize()
        return self.inner.install(sim, sink)

    @property
    def offered_load(self) -> Speed:
        """Delegates to the inner workload."""
        return self.inner.offered_load

    def class_counts(self) -> List[int]:
        """Number of jobs per class (after materialization)."""
        jobs = self.materialize()
        counts = [0] * self.fractions.size
        for job in jobs:
            counts[job.klass] += 1
        return counts
