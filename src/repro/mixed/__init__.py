"""Mixed application classes: per-job quality functions, end to end.

The paper models one application per server (one shared quality
function).  Real consolidated servers host several error-tolerant
services at once — the paper's own §I list.  This package extends the
GE pipeline to jobs carrying a *class index* that selects their quality
function:

* :mod:`repro.mixed.quality_opt` — the class-aware second cut: under a
  core's capacity, level *marginal quality* across jobs (KKT) instead
  of volume, subject to the same EDF prefix constraints;
* :mod:`repro.mixed.monitor` — a quality monitor applying each job's
  own function, so compensation reacts to the true mixed aggregate;
* :mod:`repro.mixed.workload` — deterministic class stamping on any
  workload;
* :mod:`repro.mixed.scheduler` — :class:`MixedGEScheduler`, which cuts
  with :func:`repro.core.cutting_general.lf_cut_mixed` and plans with
  the class-aware allocator.

The first cut's theory is in docs/algorithms.md and
`repro/core/cutting_general.py`; `benchmarks/test_mixed_classes.py`
quantifies what class-awareness buys over class-blind GE.
"""

from repro.mixed.monitor import ClassAwareMonitor
from repro.mixed.quality_opt import quality_opt_mixed
from repro.mixed.scheduler import MixedGEScheduler, make_mixed_ge
from repro.mixed.workload import MixedClassWorkload

__all__ = [
    "ClassAwareMonitor",
    "MixedClassWorkload",
    "MixedGEScheduler",
    "make_mixed_ge",
    "quality_opt_mixed",
]
