"""Class-aware Quality-OPT: maximize mixed quality under capacity.

Same problem as :func:`repro.core.quality_opt.quality_opt` — extra
volumes ``x`` with ``0 ≤ x_i ≤ b_i`` and EDF prefix constraints
``Σ_{i≤k} x_i ≤ C_k`` — but the objective is ``Σ f_i(o_i + x_i)`` with
a *per-job* concave ``f_i``.

KKT inside a binding block now levels the **marginal quality**
``f_i'(o_i + x_i)`` to a common multiplier λ rather than the volume:

    x_i(λ) = clip( (f_i')^{-1}(λ) − o_i, 0, b_i ),

and the allocation is non-increasing in λ, so the λ that exhausts a
budget is found by bisection.  The binding-prefix recursion is the same
nested structure as the shared-f version (lowest-λ... highest-λ prefix
binds first — with marginals the *most starved* prefix is the one whose
exhausting λ is **largest**).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.cutting_general import inverse_marginal
from repro.errors import InfeasibleError
from repro.quality.functions import QualityFunction
from repro.units import (
    PerVolume,
    Seconds,
    SecondsSeq,
    Speed,
    Volume,
    VolumeArray,
    VolumeSeq,
)

__all__ = ["quality_opt_mixed"]

_EPS = 1e-12


def _alloc_at(
    lam: PerVolume,
    functions: Sequence[QualityFunction],
    offsets: VolumeArray,
    bounds: VolumeArray,
) -> VolumeArray:
    return np.array(
        [
            float(np.clip(inverse_marginal(f, lam) - o, 0.0, b))
            for f, o, b in zip(functions, offsets, bounds)
        ]
    )


def _lambda_for_budget(
    functions: Sequence[QualityFunction],
    offsets: VolumeArray,
    bounds: VolumeArray,
    budget: Volume,
    *,
    iters: int = 60,
) -> PerVolume:
    """λ whose allocation sums to ``budget`` (0 if even λ→0 fits)."""
    if float(np.sum(bounds)) <= budget + _EPS:
        return 0.0
    lo = 0.0  # allocates everything (too much)
    hi = max(float(f.derivative(0.0)) for f in functions)
    if not np.isfinite(hi):
        hi = 1.0
    while float(np.sum(_alloc_at(hi, functions, offsets, bounds))) > budget and hi < 1e12:
        hi *= 4.0
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if float(np.sum(_alloc_at(mid, functions, offsets, bounds))) > budget:
            lo = mid
        else:
            hi = mid
    return hi


def quality_opt_mixed(
    functions: Sequence[QualityFunction],
    bounds: VolumeSeq,
    deadlines: SecondsSeq,
    now: Seconds,
    capacity_per_second: Speed,
    offsets: VolumeSeq | None = None,
) -> VolumeArray:
    """Optimal extras for per-job quality functions (EDF prefixes).

    Mirrors :func:`repro.core.quality_opt.quality_opt`; see the module
    docstring for the KKT argument.  O(n² · bisection) — fine for the
    per-core batch sizes the scheduler produces.
    """
    bounds_arr = np.asarray(bounds, dtype=float)
    dls = np.asarray(deadlines, dtype=float)
    n = bounds_arr.size
    if len(functions) != n or dls.size != n:
        raise ValueError("functions, bounds and deadlines must have equal length")
    if n == 0:
        return np.zeros(0)
    if np.any(bounds_arr < 0):
        raise ValueError("bounds must be non-negative")
    if np.any(np.diff(dls) < 0):
        raise ValueError("deadlines must be non-decreasing (EDF order)")
    if capacity_per_second < 0:
        raise InfeasibleError(f"negative capacity {capacity_per_second!r}")
    offs = np.zeros(n) if offsets is None else np.asarray(offsets, dtype=float)
    if offs.shape != bounds_arr.shape or np.any(offs < 0):
        raise ValueError("offsets must be non-negative and match bounds")

    capacities = capacity_per_second * (dls - now)
    if np.any(capacities < -_EPS):
        raise InfeasibleError("a deadline lies in the past")
    capacities = np.maximum(capacities, 0.0)

    result = np.zeros(n)
    start = 0
    consumed = 0.0
    while start < n:
        # The binding prefix is the one whose exhausting λ is largest.
        best_k = None
        best_lam = -1.0
        for k in range(n - start):
            budget = capacities[start + k] - consumed
            block_f = functions[start : start + k + 1]
            block_o = offs[start : start + k + 1]
            block_b = bounds_arr[start : start + k + 1]
            if budget <= _EPS:
                lam = float("inf") if np.any(block_b > _EPS) else 0.0
            else:
                lam = _lambda_for_budget(block_f, block_o, block_b, budget)
            if lam > best_lam + _EPS:
                best_lam = lam
                best_k = k
        assert best_k is not None
        block = slice(start, start + best_k + 1)
        if best_lam == float("inf"):
            alloc = np.zeros(best_k + 1)
        elif best_lam <= 0.0:
            alloc = bounds_arr[block].copy()
        else:
            alloc = _alloc_at(
                best_lam, functions[block], offs[block], bounds_arr[block]
            )
            # λ is bisected from above, so the allocation may overshoot
            # the budget by a sliver; scale it back under the block
            # budget (interior prefixes stay safe — see module notes).
            budget = capacities[start + best_k] - consumed
            total = float(np.sum(alloc))
            if total > budget > 0:
                alloc = alloc * (budget / total)
        result[block] = np.minimum(alloc, bounds_arr[block])
        consumed += float(np.sum(result[block]))
        start = start + best_k + 1
    return result
