"""A quality monitor for mixed application classes.

Each job's contribution to the cumulative sums uses *its class's*
quality function, so the compensation policy defends the true mixed
aggregate ``Σ f_{k(j)}(c_j) / Σ f_{k(j)}(p_j)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.quality.functions import QualityFunction
from repro.quality.monitor import QualityMonitor
from repro.units import Dimensionless, QualityFrac, Seconds
from repro.workload.job import Job

__all__ = ["ClassAwareMonitor"]


class ClassAwareMonitor(QualityMonitor):
    """Cumulative monitor applying each job's own quality function.

    Parameters
    ----------
    functions:
        Quality function per class index; ``job.klass`` selects one.
        Class 0's function doubles as the fallback ``f`` for the base
        class's volume-based API (used only by code unaware of classes).
    """

    def __init__(self, functions: Sequence[QualityFunction], history: Dimensionless = 1.0) -> None:
        if not functions:
            raise ValueError("need at least one class quality function")
        super().__init__(functions[0], history=history)
        self.functions = list(functions)

    def function_for(self, job: Job) -> QualityFunction:
        """The quality function of ``job``'s class."""
        try:
            return self.functions[job.klass]
        except IndexError:
            raise ValueError(
                f"job {job.jid} has class {job.klass} but only "
                f"{len(self.functions)} classes are configured"
            ) from None

    def record_job(self, job: Job, time: Optional[Seconds] = None) -> QualityFrac:
        """Settle one job using its class's quality function."""
        f = self.function_for(job)
        processed = min(job.processed, job.demand)
        if self.history < 1.0:
            self._achieved *= self.history
            self._potential *= self.history
        self._achieved += float(f(processed))
        self._potential += float(f(job.demand))
        self._settled_jobs += 1
        q = self.quality
        if time is not None:
            self._trace.append((float(time), q))
        return q

    def expected_quality(self, jobs: Iterable[Job]) -> QualityFrac:
        """True mixed aggregate recomputed from the job records."""
        achieved: Dimensionless = 0.0
        potential: Dimensionless = 0.0
        for job in jobs:
            f = self.function_for(job)
            achieved += float(f(job.processed))
            potential += float(f(job.demand))
        return achieved / potential if potential > 0 else 1.0
