"""The class-aware GE scheduler.

:class:`MixedGEScheduler` runs the GE loop unchanged except for the two
stages where the shared quality function mattered:

* the AES first cut uses :func:`repro.core.cutting_general.lf_cut_mixed`
  (level *marginal* quality across classes, not volume);
* the per-core second cut uses
  :func:`repro.mixed.quality_opt.quality_opt_mixed`.

It requires a :class:`repro.mixed.monitor.ClassAwareMonitor` on the
harness so compensation reacts to the true mixed aggregate;
:func:`make_mixed_ge` builds the matched (scheduler, monitor) pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.cutting_general import lf_cut_mixed
from repro.core.ge import GEScheduler
from repro.core.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.mixed.monitor import ClassAwareMonitor
from repro.mixed.quality_opt import quality_opt_mixed
from repro.quality.functions import QualityFunction
from repro.units import Volume
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.server.harness import SimulationHarness

__all__ = ["MixedGEScheduler", "make_mixed_ge"]


class MixedGEScheduler(GEScheduler):
    """GE with per-class quality functions end to end."""

    def __init__(self, functions: Sequence[QualityFunction], **kwargs: object) -> None:
        if not functions:
            raise ConfigurationError("need at least one class quality function")
        kwargs.setdefault("name", "GE-Mixed")
        super().__init__(**kwargs)
        self.functions = list(functions)
        self._allocator = self._mixed_allocator

    # -- class plumbing ---------------------------------------------------
    def _f_of(self, job: Job) -> QualityFunction:
        try:
            return self.functions[job.klass]
        except IndexError:
            raise ConfigurationError(
                f"job {job.jid} has class {job.klass} but only "
                f"{len(self.functions)} classes are configured"
            ) from None

    def bind(self, harness: "SimulationHarness") -> None:
        super().bind(harness)
        if not isinstance(harness.monitor, ClassAwareMonitor):
            raise ConfigurationError(
                "MixedGEScheduler needs a ClassAwareMonitor on the harness "
                "(use make_mixed_ge / pass monitor= to SimulationHarness)"
            )

    # -- stage overrides -----------------------------------------------------
    def _targets_for(
        self, all_jobs: List[Job], mode: ExecutionMode
    ) -> Dict[int, Volume]:
        if mode is ExecutionMode.AES and all_jobs:
            targets = lf_cut_mixed(
                [self._f_of(j) for j in all_jobs],
                [j.demand for j in all_jobs],
                self._q_target,
            )
            return {j.jid: float(t) for j, t in zip(all_jobs, targets)}
        return {j.jid: j.demand for j in all_jobs}

    def _mixed_allocator(self, jobs, extras, deadlines, now, capacity, processed):
        return quality_opt_mixed(
            [self._f_of(j) for j in jobs],
            extras,
            deadlines,
            now,
            capacity,
            offsets=processed,
        )


def make_mixed_ge(
    functions: Sequence[QualityFunction], **kwargs: object
) -> Tuple[MixedGEScheduler, ClassAwareMonitor]:
    """Build the matched (scheduler, monitor) pair for mixed classes.

    Usage::

        scheduler, monitor = make_mixed_ge([f_search, f_video])
        harness = SimulationHarness(config, scheduler,
                                    workload=mixed_workload, monitor=monitor)
    """
    return MixedGEScheduler(functions, **kwargs), ClassAwareMonitor(functions)
