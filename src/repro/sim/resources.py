"""Resource primitives for the DES kernel: Resource and Store.

These complete the kernel as a general-purpose simulation substrate
(the scheduler itself does not need them — cores are modelled directly
— but examples, tests and downstream users of :mod:`repro.sim` do, e.g.
for modelling admission-control front-ends in front of the server).

* :class:`Resource` — ``capacity`` interchangeable slots with a FIFO
  wait queue; processes ``yield resource.request()`` and call
  ``resource.release()`` when done.
* :class:`Store` — an unbounded (or bounded) FIFO buffer of items;
  ``yield store.get()`` blocks until an item is available.

Both integrate with :class:`repro.sim.process.Process` via the
:class:`repro.sim.process.Signal` waitable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Signal

__all__ = ["Resource", "Store"]


class Resource:
    """``capacity`` interchangeable servers with a FIFO wait queue.

    Examples
    --------
    >>> from repro.sim import Simulator, Timeout
    >>> sim = Simulator()
    >>> res = Resource(sim, capacity=1)
    >>> log = []
    >>> def user(name):
    ...     yield res.request()
    ...     log.append((name, sim.now))
    ...     yield Timeout(1.0)
    ...     res.release()
    >>> _ = sim.process(user("a")); _ = sim.process(user("b"))
    >>> sim.run()
    >>> log
    [('a', 0.0), ('b', 1.0)]
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Signal:
        """Return a waitable that fires when a slot is granted.

        The returned signal is already triggered if a slot is free, so
        ``yield resource.request()`` resumes in the same instant.
        """
        signal = Signal(self.sim, name="resource-grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            signal.trigger()
        else:
            self._waiters.append(signal)
        return signal

    def release(self) -> None:
        """Free one slot, waking the longest-waiting requester if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a held slot")
        if self._waiters:
            # Hand the slot directly to the next waiter (in_use stays).
            self._waiters.popleft().trigger()
        else:
            self._in_use -= 1


class Store:
    """FIFO buffer of items with blocking ``get`` and optional bound."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Insert ``item``; wakes the longest-waiting getter if any.

        Raises when a bounded store is full (callers model back-pressure
        explicitly; a blocking put is deliberately not provided to keep
        the primitive simple).
        """
        if self._getters:
            self._getters.popleft().trigger(item)
            return
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SimulationError("put() into a full bounded store")
        self._items.append(item)

    def get(self) -> Signal:
        """Waitable that delivers the oldest item (maybe immediately)."""
        signal = Signal(self.sim, name="store-get")
        if self._items:
            signal.trigger(self._items.popleft())
        else:
            self._getters.append(signal)
        return signal

    def try_get(self) -> Any:
        """Non-blocking pop; returns ``None`` when empty."""
        return self._items.popleft() if self._items else None
