"""Event primitives for the discrete-event kernel.

An :class:`Event` is a future occurrence at a simulated time with an
attached callback.  The :class:`EventQueue` is a binary heap ordered by
``(time, priority, sequence)`` — the monotonically increasing sequence
number makes event ordering (and therefore whole simulations) fully
deterministic even when many events share a timestamp.

Cancellation is *lazy*: cancelled events stay in the heap but are
skipped on pop.  This is the standard technique for heap-based agendas
(also used by :mod:`sched` and ``asyncio``) and keeps both ``push`` and
``cancel`` O(log n) / O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.units import Seconds

__all__ = ["Event", "EventQueue", "PRIORITY_HIGH", "PRIORITY_NORMAL", "PRIORITY_LOW"]

#: Priority constants: lower sorts earlier among same-time events.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2


class Event:
    """A scheduled occurrence in simulated time.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`
    (via the queue's :meth:`EventQueue.push`); user code normally only
    keeps the handle around in order to :meth:`cancel` it.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    priority:
        Tie-break among events at the same time; lower fires first.
    callback:
        Zero-argument callable invoked when the event fires (the
        payload, if any, is bound via closure or ``functools.partial``).
    name:
        Optional human-readable label, used by traces and ``repr``.
    """

    __slots__ = ("time", "priority", "seq", "callback", "name", "_cancelled", "_fired", "_queue")

    def __init__(
        self,
        time: Seconds,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        name: Optional[str] = None,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = float(time)
        self.priority = int(priority)
        self.seq = int(seq)
        self.callback = callback
        self.name = name
        self._cancelled = False
        self._fired = False
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event's callback has already been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event; returns ``True`` if it was still pending."""
        if not self.pending:
            return False
        self._cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
        return True

    def _fire(self) -> None:
        if self._cancelled:  # pragma: no cover - guarded by EventQueue.pop
            raise SimulationError(f"firing cancelled event {self!r}")
        self._fired = True
        self.callback()

    # Heap ordering ----------------------------------------------------
    def _key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        label = self.name or getattr(self.callback, "__name__", "callback")
        return f"Event(t={self.time:.6f}, prio={self.priority}, {label}, {state})"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: Seconds,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        name: Optional[str] = None,
    ) -> Event:
        """Insert a new event and return its handle."""
        event = Event(time, priority, next(self._counter), callback, name, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> Optional[Seconds]:
        """Time of the earliest live event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        self._live -= 1
        return heapq.heappop(self._heap)

    def discard_cancelled(self) -> None:
        """Compact the heap by removing every cancelled entry.

        Useful for long simulations that cancel many timers; not needed
        for correctness.
        """
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
