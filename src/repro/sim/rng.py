"""Seeded, named random-number streams.

Simulation studies need *independent* randomness per concern (arrival
times, service demands, deadline jitter, ...) so that changing how one
stream is consumed does not perturb the others — otherwise comparing
two schedulers on "the same workload" is impossible.  This module wraps
NumPy's ``SeedSequence.spawn`` mechanism behind named streams:

>>> streams = RandomStreams(seed=42)
>>> arrivals = streams.stream("arrivals")
>>> demands = streams.stream("demands")

The same ``(seed, name)`` pair always yields the same stream regardless
of creation order, because each name is hashed into a stable spawn key.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


def _name_key(name: str) -> int:
    """Stable 64-bit key for a stream name (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of independent, reproducible ``numpy.random.Generator`` s.

    Parameters
    ----------
    seed:
        Master seed.  Two :class:`RandomStreams` with the same seed
        produce identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (so its state advances as it is consumed).
        """
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(_name_key(name),))
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with its initial state.

        Unlike :meth:`stream` this never shares state with previous
        callers; useful for replaying a stream from the start.
        """
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(_name_key(name),))
        return np.random.default_rng(seq)

    def child(self, index: int) -> "RandomStreams":
        """Derive an independent sub-factory (e.g. one per replication)."""
        mixed = int.from_bytes(
            hashlib.sha256(f"{self._seed}:{index}".encode()).digest()[:8], "little"
        )
        return RandomStreams(seed=mixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._cache)})"
