"""A from-scratch discrete-event simulation (DES) kernel.

The paper evaluates the GE scheduler purely in simulation.  ``simpy`` is
not available in this environment, so this subpackage provides an
equivalent substrate: a binary-heap event queue with a deterministic
tie-break (:mod:`repro.sim.events`), a simulator engine with callback
and generator-process interfaces (:mod:`repro.sim.engine`,
:mod:`repro.sim.process`), seeded independent random streams
(:mod:`repro.sim.rng`), and a piecewise-constant timeline recorder used
for energy/speed integration (:mod:`repro.sim.timeline`).

The kernel is intentionally small but complete: events can be
scheduled, cancelled and re-prioritized; processes can sleep, wait on
events, and interrupt each other; and runs are bit-for-bit reproducible
given a seed.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import Interrupt, Process, Signal, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.timeline import StepTimeline

__all__ = [
    "Event",
    "EventQueue",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "Signal",
    "Simulator",
    "StepTimeline",
    "Store",
    "Timeout",
]
