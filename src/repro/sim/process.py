"""Generator-based processes on top of the event kernel.

This gives the kernel a ``simpy``-flavoured coroutine interface: a
process is a Python generator that ``yield``\\ s *waitables* and is
resumed when they complete.  Supported waitables:

* :class:`Timeout` — sleep for a duration;
* :class:`Process` — wait for another process to finish (its return
  value is delivered as the ``yield`` result);
* :class:`Signal` — a one-shot condition another actor can trigger,
  optionally with a payload.

Processes can be interrupted: :meth:`Process.interrupt` raises
:class:`Interrupt` inside the generator at its current wait point.

The scheduler machinery in :mod:`repro.server` uses plain callbacks for
speed; processes are used by workload generators, examples, and tests,
and exist so the kernel is a complete DES substrate.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.units import Seconds
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_NORMAL, Event

__all__ = ["Interrupt", "Process", "Signal", "Timeout"]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Waitable: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: Seconds, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"Timeout with negative delay {delay!r}")
        self.delay = float(delay)
        self.value = value


class Signal:
    """A one-shot condition processes can wait on.

    :meth:`trigger` wakes every waiter with the given payload.  A signal
    that is already triggered resumes new waiters immediately (in the
    same simulated instant).
    """

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self._sim = sim
        self.name = name
        self._triggered = False
        self._payload: Any = None
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        """Whether the signal has fired."""
        return self._triggered

    @property
    def payload(self) -> Any:
        """Value passed to :meth:`trigger` (None before firing)."""
        return self._payload

    def trigger(self, payload: Any = None) -> None:
        """Fire the signal, waking all current waiters."""
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self._triggered = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.schedule(0.0, lambda p=proc: p._resume(payload))

    def _subscribe(self, proc: "Process") -> None:
        if self._triggered:
            self._sim.schedule(0.0, lambda: proc._resume(self._payload))
        else:
            self._waiters.append(proc)


class Process:
    """Drives a generator coroutine inside a :class:`Simulator`.

    The generator may ``yield`` :class:`Timeout`, :class:`Signal` or
    another :class:`Process`.  When the generator returns, the process
    is *done* and its :attr:`value` holds the ``return`` value.

    Examples
    --------
    >>> sim = Simulator()
    >>> def worker():
    ...     yield Timeout(2.0)
    ...     return "done"
    >>> p = sim.process(worker())
    >>> sim.run()
    >>> (p.done, p.value, sim.now)
    (True, 'done', 2.0)
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Iterable[Any],
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: list["Process"] = []
        self._wait_event: Optional[Event] = None
        self._interrupt_pending: Optional[Interrupt] = None
        # Kick off at the current instant.
        self._wait_event = sim.schedule(0.0, self._start, name=f"start:{self.name}")

    # -- public ---------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the generator has finished (returned or raised)."""
        return self._done

    @property
    def value(self) -> Any:
        """Return value of the generator (``None`` until done)."""
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        """Exception that terminated the process, if any."""
        return self._error

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point."""
        if self._done:
            return
        interrupt = Interrupt(cause)
        if self._wait_event is not None and self._wait_event.pending:
            self._wait_event.cancel()
            self._wait_event = None
            self._sim.schedule(0.0, lambda: self._throw(interrupt))
        else:
            # Process is starting up or being resumed this instant;
            # deliver the interrupt at its next resumption.
            self._interrupt_pending = interrupt

    # -- driving ----------------------------------------------------------
    def _start(self) -> None:
        self._wait_event = None
        if self._interrupt_pending is not None:
            pending, self._interrupt_pending = self._interrupt_pending, None
            self._throw(pending)
        else:
            self._advance(lambda: self._gen.send(None))

    def _resume(self, value: Any) -> None:
        self._wait_event = None
        if self._done:
            return
        if self._interrupt_pending is not None:
            pending, self._interrupt_pending = self._interrupt_pending, None
            self._throw(pending)
        else:
            self._advance(lambda: self._gen.send(value))

    def _throw(self, exc: BaseException) -> None:
        if self._done:
            return
        self._advance(lambda: self._gen.throw(exc))

    def _advance(self, step) -> None:
        try:
            target = step()
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process cleanly.
            self._finish(error=exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self._wait_event = self._sim.schedule(
                target.delay,
                lambda: self._resume(target.value),
                priority=PRIORITY_NORMAL,
                name=f"timeout:{self.name}",
            )
        elif isinstance(target, Process):
            if target._done:
                self._wait_event = self._sim.schedule(
                    0.0, lambda: self._resume(target._value)
                )
            else:
                target._waiters.append(self)
        elif isinstance(target, Signal):
            target._subscribe(self)
        else:
            error = SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )
            self._gen.close()
            self._finish(error=error)
            raise error

    def _finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._done = True
        self._value = value
        self._error = error
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.schedule(0.0, lambda p=proc: p._resume(value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "running"
        return f"Process({self.name}, {state})"
