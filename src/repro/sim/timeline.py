"""Piecewise-constant signal recording and integration.

Energy is the time integral of power, and the paper's Fig. 6 needs the
time-average and time-variance of per-core speeds.  Cores change speed
only at scheduling events, so every per-core signal is piecewise
constant; :class:`StepTimeline` records the breakpoints and answers
integral/average/variance queries exactly (no sampling error).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.units import Seconds

__all__ = ["StepTimeline", "merge_mean_timeline"]


class StepTimeline:
    """A right-open piecewise-constant function of time.

    ``set_value(t, v)`` declares that the signal equals ``v`` on
    ``[t, next breakpoint)``.  Timestamps must be non-decreasing; setting
    a value at the current last timestamp overwrites it (zero-width
    segments are elided).
    """

    __slots__ = ("_times", "_values", "_finalized")

    def __init__(self, start_time: Seconds = 0.0, initial_value: float = 0.0) -> None:
        self._times: List[float] = [float(start_time)]
        self._values: List[float] = [float(initial_value)]
        self._finalized: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> Seconds:
        """Time of the first breakpoint."""
        return self._times[0]

    @property
    def last_time(self) -> Seconds:
        """Timestamp of the most recent breakpoint."""
        return self._times[-1]

    @property
    def current_value(self) -> float:
        """Value of the signal after the last breakpoint."""
        return self._values[-1]

    def set_value(self, time: Seconds, value: float) -> None:
        """Record that the signal takes ``value`` from ``time`` onwards."""
        time = float(time)
        last = self._times[-1]
        if time < last:
            raise SimulationError(
                f"timeline updates must be chronological: {time} < {last}"
            )
        if value == self._values[-1] and time > last:
            return  # no change: extend the current segment implicitly
        if time == last:
            self._values[-1] = float(value)
            # collapse if the previous segment had the same value
            if len(self._values) >= 2 and self._values[-2] == self._values[-1]:
                self._times.pop()
                self._values.pop()
        else:
            self._times.append(time)
            self._values.append(float(value))

    # ------------------------------------------------------------------
    def segments(self, until: Seconds) -> Iterator[Tuple[Seconds, Seconds, float]]:
        """Yield ``(start, end, value)`` segments covering [start_time, until]."""
        if until < self._times[0]:
            raise SimulationError("query before the timeline's start")
        for i, (t, v) in enumerate(zip(self._times, self._values)):
            end = self._times[i + 1] if i + 1 < len(self._times) else until
            end = min(end, until)
            if end > t:
                yield (t, end, v)
            if end >= until:
                break

    def integral(
        self,
        until: Seconds,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> float:
        """Integrate the signal (or ``transform(value)``) up to ``until``.

        Vectorized over the breakpoints; ``transform`` receives a NumPy
        array (every transform used by the library — power curves,
        squaring, indicator functions — is array-capable).
        """
        if until < self._times[0]:
            raise SimulationError("query before the timeline's start")
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        ends = np.minimum(np.append(times[1:], until), until)
        widths = np.maximum(0.0, ends - np.minimum(times, until))
        if transform is not None:
            y = np.asarray(transform(values), dtype=float)
        else:
            y = values
        return float(np.dot(y, widths))

    def time_average(self, until: Seconds) -> float:
        """Time-weighted mean value over [start_time, until]."""
        span = until - self._times[0]
        if span <= 0:
            return self._values[0]
        return self.integral(until) / span

    def time_variance(self, until: Seconds) -> float:
        """Time-weighted variance of the signal over [start_time, until]."""
        span = until - self._times[0]
        if span <= 0:
            return 0.0
        mean = self.time_average(until)
        second = self.integral(until, transform=lambda v: v * v) / span
        return max(0.0, second - mean * mean)

    def sample(self, time: Seconds) -> float:
        """Value of the signal at ``time`` (right-continuous)."""
        if time < self._times[0]:
            raise SimulationError("sample before the timeline's start")
        idx = int(np.searchsorted(np.asarray(self._times), time, side="right")) - 1
        return self._values[idx]

    def as_arrays(self, until: Seconds) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(breakpoints, values)`` arrays covering up to ``until``."""
        starts, values = [], []
        for start, _end, value in self.segments(until):
            starts.append(start)
            values.append(value)
        return np.asarray(starts), np.asarray(values)

    def __len__(self) -> int:
        return len(self._times)


def merge_mean_timeline(timelines: List[StepTimeline], until: Seconds) -> StepTimeline:
    """Pointwise mean of several step timelines as a new timeline.

    Used to build the "average core speed over time" signal across the
    machine from per-core speed timelines.
    """
    if not timelines:
        raise SimulationError("merge_mean_timeline needs at least one timeline")
    breakpoints = sorted(
        {t for tl in timelines for t in tl._times if t <= until} | {until}
    )
    start = breakpoints[0]
    merged = StepTimeline(
        start_time=start,
        initial_value=float(np.mean([tl.sample(start) for tl in timelines])),
    )
    for t in breakpoints[1:]:
        if t >= until:
            break
        merged.set_value(t, float(np.mean([tl.sample(t) for tl in timelines])))
    return merged
