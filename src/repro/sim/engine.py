"""The discrete-event simulator engine.

:class:`Simulator` owns the clock and the event agenda.  It supports
two programming styles that can be mixed freely:

* **callback style** — ``sim.schedule(delay, fn)`` / ``sim.at(time, fn)``;
  used by the scheduler/server machinery because it is the fastest and
  most explicit way to express "re-plan at time t".
* **process style** — generator coroutines driven by
  :class:`repro.sim.process.Process`, convenient for workload
  generators and tests.

The engine is single-threaded and deterministic: runs with the same
seed and the same schedule of calls produce identical event orders.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_NORMAL, Event, EventQueue
from repro.units import Seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (seconds).

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(1.0, lambda: seen.append(sim.now))
    >>> _ = sim.schedule(0.5, lambda: seen.append(sim.now))
    >>> sim.run()
    >>> seen
    [0.5, 1.0]
    """

    def __init__(self, start_time: Seconds = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> Seconds:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled, not fired) events."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: Seconds,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        return self._queue.push(self._now + delay, callback, priority=priority, name=name)

    def at(
        self,
        time: Seconds,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        ``time`` may equal :attr:`now` (fires in the current instant,
        after already-queued same-time events of equal priority) but
        must not be in the past.
        """
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule at t={time!r}: clock is already at {self._now!r}"
            )
        return self._queue.push(time, callback, priority=priority, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.

        Returns ``True`` if an event was fired, ``False`` if the agenda
        was empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now:  # pragma: no cover - internal invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._events_processed += 1
        event._fire()
        return True

    def run(self, until: Optional[Seconds] = None) -> None:
        """Run until the agenda drains or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return (even if the last event fired earlier), so
        that time-integrated metrics cover the full horizon.  Events
        scheduled exactly at ``until`` are fired.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and not self._stopped:
            if until < self._now:
                raise SimulationError(
                    f"run(until={until!r}) but clock already at {self._now!r}"
                )
            self._now = float(until)

    def stop(self) -> None:
        """Request the current :meth:`run` to stop after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def process(self, generator: Iterable[Any], name: Optional[str] = None) -> "Process":
        """Start a generator coroutine as a simulation process.

        See :class:`repro.sim.process.Process` for the protocol.
        """
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def compact(self) -> None:
        """Drop cancelled events from the agenda (memory housekeeping)."""
        self._queue.discard_cancelled()
