"""Run-level metric collection.

:class:`MetricsCollector` receives every job settlement during a run
and, at the end, is combined with machine- and scheduler-level signals
into a :class:`RunResult` — the unit of data every figure in the paper
is built from (service quality, energy, AES-mode share, speed mean and
variance, outcome counts).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.units import Gigahertz, Joules, PerSecond, QualityFrac, Seconds, Volume
from repro.workload.job import Job, JobOutcome

__all__ = ["MetricsCollector", "RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Summary of one simulation run.

    Attributes
    ----------
    scheduler:
        Name of the policy that produced the run.
    arrival_rate:
        Workload λ in requests/second.
    quality:
        Final aggregate service quality ``Q`` in [0, 1].
    energy:
        Total dynamic energy in joules over the run.
    jobs:
        Number of jobs settled.
    outcomes:
        Count per :class:`JobOutcome` value name.
    aes_fraction:
        Fraction of time spent in AES mode (GE-family only, else None).
    mean_speed:
        Time-average per-core speed in GHz.
    speed_variance:
        Time-averaged across-core speed variance (Fig. 6b statistic).
    utilization:
        Fraction of core-time spent executing.
    completed_volume:
        Total processing units executed.
    duration:
        Measured horizon in seconds (energy integration window).
    """

    scheduler: str
    arrival_rate: PerSecond
    quality: QualityFrac
    energy: Joules
    jobs: int
    outcomes: Dict[str, int]
    aes_fraction: Optional[float]
    mean_speed: Gigahertz
    speed_variance: float
    utilization: float
    completed_volume: Volume
    duration: Seconds
    #: Static energy in joules (0 unless the config enables static power;
    #: the paper's accounting is dynamic-only, see §IV-B).
    static_energy: Joules = 0.0

    @property
    def total_energy(self) -> Joules:
        """Dynamic + static energy in joules."""
        return self.energy + self.static_energy

    @property
    def energy_per_job(self) -> Joules:
        """Average joules per settled job."""
        return self.energy / self.jobs if self.jobs else 0.0

    @property
    def completion_ratio(self) -> float:
        """Fraction of jobs that ran to full completion."""
        done = self.outcomes.get(JobOutcome.COMPLETED.value, 0)
        return done / self.jobs if self.jobs else 0.0

    def row(self) -> str:
        """One formatted report line (used by the CLI and benches)."""
        aes = f"{self.aes_fraction:6.3f}" if self.aes_fraction is not None else "   n/a"
        return (
            f"{self.scheduler:<8} λ={self.arrival_rate:7.1f}  Q={self.quality:6.4f}  "
            f"E={self.energy:12.1f} J  aes={aes}  s̄={self.mean_speed:5.3f} GHz  "
            f"var={self.speed_variance:6.4f}  jobs={self.jobs}"
        )


class MetricsCollector:
    """Accumulates job settlements during a simulation run."""

    def __init__(self) -> None:
        self._outcomes: Counter = Counter()
        self._jobs = 0
        self._processed_volume: Volume = 0.0
        self._demand_volume: Volume = 0.0

    # ------------------------------------------------------------------
    def record_settle(self, job: Job) -> None:
        """Record one settled job (called by the harness)."""
        if not job.settled:
            raise ValueError(f"job {job.jid} recorded before settlement")
        self._outcomes[job.outcome.value] += 1
        self._jobs += 1
        self._processed_volume += job.processed
        self._demand_volume += job.demand

    @property
    def jobs(self) -> int:
        """Number of settlements recorded so far."""
        return self._jobs

    @property
    def outcomes(self) -> Dict[str, int]:
        """Outcome-name → count mapping (copy)."""
        return dict(self._outcomes)

    @property
    def processed_volume(self) -> Volume:
        """Σ c_j over settled jobs."""
        return self._processed_volume

    @property
    def demand_volume(self) -> Volume:
        """Σ p_j over settled jobs."""
        return self._demand_volume

    @property
    def volume_ratio(self) -> float:
        """Fraction of offered demand actually processed."""
        return self._processed_volume / self._demand_volume if self._demand_volume else 1.0

    def reset(self) -> None:
        """Clear all accumulated state."""
        self._outcomes.clear()
        self._jobs = 0
        self._processed_volume: Volume = 0.0
        self._demand_volume: Volume = 0.0
