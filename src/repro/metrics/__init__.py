"""Measurement: per-run metric collection and summary statistics.

* :mod:`repro.metrics.collector` — accumulates job outcomes during a
  run and produces the :class:`repro.metrics.collector.RunResult`
  consumed by every experiment.
* :mod:`repro.metrics.stats` — small statistics helpers (confidence
  intervals, series utilities) shared by the experiment reports.
"""

from repro.metrics.collector import MetricsCollector, RunResult
from repro.metrics.stats import mean_confidence_interval, summarize

__all__ = ["MetricsCollector", "RunResult", "mean_confidence_interval", "summarize"]
