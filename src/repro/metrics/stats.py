"""Statistics helpers for experiment reports.

Small, dependency-light utilities: replication summaries and normal
confidence intervals.  Kept separate from the collector so experiment
code can aggregate :class:`repro.metrics.collector.RunResult` objects
without reaching into simulation internals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.units import Dimensionless

__all__ = ["SeriesSummary", "mean_confidence_interval", "summarize"]


@dataclass(frozen=True)
class SeriesSummary:
    """Mean/spread summary of a sample of replicated measurements."""

    mean: float
    std: float
    low: float
    high: float
    n: int


def mean_confidence_interval(
    values: Sequence[float], confidence: Dimensionless = 0.95
) -> tuple[float, float, float]:
    """Return ``(mean, lo, hi)`` under a normal approximation.

    Uses the z-quantile rather than Student-t to avoid a scipy
    dependency in the core path; with the ≥5 replications used by the
    experiments the difference is immaterial for shape comparisons.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    # Inverse normal CDF via Acklam-style rational approximation is
    # overkill; the experiments only use 90/95/99%.
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    z = z_table.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence!r}; use 0.90/0.95/0.99")
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, mean - z * sem, mean + z * sem


def summarize(values: Sequence[float], confidence: Dimensionless = 0.95) -> SeriesSummary:
    """Full :class:`SeriesSummary` of a sample."""
    arr = np.asarray(values, dtype=float)
    mean, lo, hi = mean_confidence_interval(arr, confidence)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SeriesSummary(mean=mean, std=std, low=lo, high=hi, n=int(arr.size))
