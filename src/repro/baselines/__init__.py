"""Baseline schedulers the paper compares against (§IV-A-1, §IV-F).

* :mod:`repro.baselines.queue_order` — FCFS, FDFS, LJF, SJF: one job
  per idle core, ES power split, slowest-feasible speed.
* :mod:`repro.baselines.control` — the BE-P (power control) and BE-S
  (speed control) policies: BE calibrated by bisection to the least
  budget / speed cap meeting the quality target.

The OQ and BE baselines are parameterizations of the GE machinery and
live in :mod:`repro.core.ge` (:func:`make_oq`, :func:`make_be`).
"""

from repro.baselines.clairvoyant import ClairvoyantGE, make_oracle
from repro.baselines.control import (
    CalibrationResult,
    calibrate_power_control,
    calibrate_speed_control,
)
from repro.baselines.queue_order import FCFS, FDFS, LJF, SJF, QueueOrderScheduler

__all__ = [
    "FCFS",
    "FDFS",
    "LJF",
    "SJF",
    "CalibrationResult",
    "ClairvoyantGE",
    "QueueOrderScheduler",
    "calibrate_power_control",
    "calibrate_speed_control",
    "make_oracle",
]
