"""Queue-order baselines: FCFS, FDFS, LJF, SJF (paper §IV-A-1).

These policies are "triggered whenever a core becomes idle, and a job
in the waiting queue ... is assigned to the core":

* **FCFS** — earliest release (arrival) time first;
* **FDFS** — earliest deadline first (only distinct from FCFS when
  deadlines are not agreeable, i.e. the Fig. 4 random-window variant);
* **LJF** — largest service demand first;
* **SJF** — smallest service demand first.

All four use the Equal-Sharing power split (every core capped at
``H/m``) and run each job "with the slowest possible speed to finish
before the deadline"; when even the cap speed cannot finish in time,
the job runs at the cap until its deadline and keeps the partial volume.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.server.core import Segment
from repro.server.scheduler import Scheduler
from repro.units import Seconds
from repro.workload.job import Job

__all__ = ["QueueOrderScheduler", "FCFS", "FDFS", "LJF", "SJF"]

#: Ignore leftovers below this volume (float-noise guard).
_WORK_EPS = 1e-9


class QueueOrderScheduler(Scheduler):
    """One-job-per-idle-core scheduling with a fixed queue order.

    Parameters
    ----------
    name:
        Reported policy name.
    key:
        Job sort key; the *minimum* is picked next (ties by jid, i.e.
        arrival order).
    """

    quantum = None  # idle-core triggered only

    def __init__(self, name: str, key: Callable[[Job], float]) -> None:
        super().__init__()
        self.name = name
        self._key = key
        self._cap_speeds: list = []

    def bind(self, harness: "SimulationHarness") -> None:
        super().bind(harness)
        cfg = harness.config
        share = cfg.budget / cfg.m
        self._cap_speeds = [
            scale.max_speed_at_power(share) for scale in harness.machine.scales
        ]
        if min(self._cap_speeds) <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "equal power share supports no DVFS level — raise the budget "
                "or lower the discrete ladder"
            )

    # ------------------------------------------------------------------
    def on_arrival(self, job: Job) -> None:
        self._dispatch()

    def on_core_idle(self, core_index: int) -> None:
        self._dispatch()

    # ------------------------------------------------------------------
    def _pick(self) -> Optional[Job]:
        queue = self.harness.queue
        if not queue:
            return None
        return min(queue, key=lambda j: (self._key(j), j.jid))

    def _dispatch(self) -> None:
        """Fill every idle core with the next job in policy order."""
        harness = self.harness
        now = harness.sim.now
        for core in harness.machine.cores:
            if core.has_work or core.failed:
                continue
            while True:
                job = self._pick()
                if job is None:
                    return
                harness.take_from_queue(job)
                window = job.deadline - now
                if window <= 0 or job.remaining <= _WORK_EPS:
                    # Expiring this instant; its deadline event settles it.
                    continue
                job.assign(core.index)
                core.enqueue(self._segment_for(job, window, core.index))
                break

    def _segment_for(self, job: Job, window: Seconds, core_index: int) -> Segment:
        machine = self.harness.machine
        model = machine.models[core_index]
        scale = machine.scales[core_index]
        cap = self._cap_speeds[core_index]
        needed = model.speed_for_throughput(job.remaining / window)
        if needed <= cap:
            # Slowest speed that exactly meets the deadline (rounded up
            # to the DVFS ladder when speeds are discrete).
            speed = scale.ceil(needed)
            if speed <= cap:
                return Segment(job=job, volume=job.remaining, speed=speed)
        # Cap-bound: run at the cap until the deadline (partial result);
        # the deadline event will credit the progress and settle EXPIRED.
        volume = min(job.remaining, model.throughput(cap) * window)
        return Segment(job=job, volume=volume, speed=cap, final=False)


def FCFS() -> QueueOrderScheduler:
    """First-Come First-Served: earliest release time next."""
    return QueueOrderScheduler("FCFS", key=lambda j: j.arrival)


def FDFS() -> QueueOrderScheduler:
    """First-Deadline First-Served: earliest deadline next."""
    return QueueOrderScheduler("FDFS", key=lambda j: j.deadline)


def LJF() -> QueueOrderScheduler:
    """Longest Job First: largest service demand next."""
    return QueueOrderScheduler("LJF", key=lambda j: -j.demand)


def SJF() -> QueueOrderScheduler:
    """Shortest Job First: smallest service demand next."""
    return QueueOrderScheduler("SJF", key=lambda j: j.demand)
