"""GE-Oracle: a clairvoyant reference for GE's online machinery.

GE's online loop pays for not knowing the future twice: the LF cut is
recomputed per batch (so targets wobble around the ideal waterline),
and quality dips must be repaired by switching to BQ mode (expensive
bursts).  This scheduler removes both costs by computing **one global
LF cut over the entire workload offline** and never compensating; the
per-round power distribution, Quality-OPT and Energy-OPT stages are
unchanged.

It is *not* the true offline optimum (assignment and speed planning
remain online heuristics), but it upper-bounds what better prediction
could buy GE — the gap it exposes is the price of online operation,
reported by ``benchmarks/test_oracle_gap.py``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.cutting import lf_cut_waterline
from repro.core.ge import GEScheduler
from repro.core.modes import ExecutionMode
from repro.units import Volume
from repro.workload.job import Job

__all__ = ["ClairvoyantGE", "make_oracle"]


class ClairvoyantGE(GEScheduler):
    """GE with an offline (whole-workload) LF cut and no compensation."""

    def __init__(self, **kwargs: object) -> None:
        kwargs.setdefault("name", "GE-Oracle")
        kwargs.setdefault("compensated", False)
        super().__init__(**kwargs)
        self._offline_targets: Dict[int, float] = {}

    def bind(self, harness: "SimulationHarness") -> None:
        super().bind(harness)
        jobs = harness.workload.materialize()
        if jobs:
            demands = np.array([j.demand for j in jobs])
            targets = lf_cut_waterline(
                harness.quality_function, demands, self._q_target
            )
            self._offline_targets = {
                job.jid: float(t) for job, t in zip(jobs, targets)
            }

    def _targets_for(
        self, all_jobs: List[Job], mode: ExecutionMode
    ) -> Dict[int, Volume]:
        # Mode is always AES here (compensation disabled); targets come
        # from the precomputed global cut.  Jobs outside the table (only
        # possible with a tampered workload) fall back to full demand.
        return {
            job.jid: self._offline_targets.get(job.jid, job.demand)
            for job in all_jobs
        }


def make_oracle(**kwargs: object) -> ClairvoyantGE:
    """The clairvoyant reference with default knobs."""
    return ClairvoyantGE(**kwargs)
