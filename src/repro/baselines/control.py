"""Power-control (BE-P) and speed-control (BE-S) policies (§IV-F).

The paper contrasts GE's *quality control* with two alternative knobs
applied to the Best-Effort scheduler:

* **BE-P** "allocates the power according to the users' quality
  demands": find the *least total power budget* with which BE still
  delivers the target quality.
* **BE-S** "sets the maximum core speed according to the users' quality
  demands": find the *least per-core speed cap* with which BE (at the
  full budget) delivers the target quality.

The paper does not specify how the least budget/speed is found; we
bisect over short calibration runs (documented substitution, DESIGN.md
§2).  Quality is monotone (up to simulation noise) in both knobs, so
bisection converges to the same operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.units import Gigahertz, QualityFrac, Seconds, Watts
from repro.core.ge import make_be
from repro.metrics.collector import RunResult
from repro.server.harness import SimulationHarness

__all__ = ["CalibrationResult", "calibrate_power_control", "calibrate_speed_control"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a bisection calibration.

    Attributes
    ----------
    value:
        The calibrated knob (watts for BE-P, GHz for BE-S).
    result:
        The final full-horizon run at the calibrated value.
    probes:
        Each bisection probe as ``(knob value, quality)``.
    """

    value: float  # watts for BE-P, GHz for BE-S
    result: RunResult
    probes: Tuple[Tuple[float, float], ...]


def _run_be(config: SimulationConfig, name: str) -> RunResult:
    scheduler = make_be()
    scheduler.name = name
    return SimulationHarness(config, scheduler).run()


def _bisect_least_knob(
    probe: Callable[[float], QualityFrac],
    lo: float,
    hi: float,
    target: QualityFrac,
    *,
    iterations: int,
) -> Tuple[float, List[Tuple[float, QualityFrac]]]:
    """Least knob value in [lo, hi] whose probed quality meets ``target``.

    Assumes quality is (noisily) non-decreasing in the knob.  If even
    ``hi`` misses the target, returns ``hi`` (the overloaded regime —
    the paper's three control policies coincide there).
    """
    probes: List[Tuple[float, QualityFrac]] = []
    q_hi = probe(hi)
    probes.append((hi, q_hi))
    if q_hi < target:
        return hi, probes
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        q_mid = probe(mid)
        probes.append((mid, q_mid))
        if q_mid >= target:
            hi = mid
        else:
            lo = mid
    return hi, probes


def calibrate_power_control(
    config: SimulationConfig,
    *,
    calibration_horizon: Optional[Seconds] = None,
    iterations: int = 7,
) -> CalibrationResult:
    """BE-P: least total power budget meeting ``config.q_ge``.

    ``calibration_horizon`` shortens the probe runs (default: a quarter
    of the full horizon, at least 30 s); the final measurement always
    uses the full horizon.
    """
    horizon = calibration_horizon or max(30.0, config.horizon / 4)
    probe_cfg = config.with_overrides(horizon=horizon)

    def probe(budget: Watts) -> QualityFrac:
        return _run_be(probe_cfg.with_overrides(budget=budget), "BE-P").quality

    least, probes = _bisect_least_knob(
        probe, lo=config.budget * 0.05, hi=config.budget,
        target=config.q_ge, iterations=iterations,
    )
    final = _run_be(config.with_overrides(budget=least), "BE-P")
    return CalibrationResult(value=least, result=final, probes=tuple(probes))


def calibrate_speed_control(
    config: SimulationConfig,
    *,
    calibration_horizon: Optional[Seconds] = None,
    iterations: int = 7,
) -> CalibrationResult:
    """BE-S: least per-core speed cap meeting ``config.q_ge``.

    The search upper bound is the speed a single core could sustain on
    the whole budget — above that the cap can never bind.
    """
    horizon = calibration_horizon or max(30.0, config.horizon / 4)
    probe_cfg = config.with_overrides(horizon=horizon)
    top = config.power_model().speed(config.budget)

    def probe(speed_cap: Gigahertz) -> QualityFrac:
        return _run_be(probe_cfg.with_overrides(top_speed=speed_cap), "BE-S").quality

    least, probes = _bisect_least_knob(
        probe, lo=top * 0.02, hi=top,
        target=config.q_ge, iterations=iterations,
    )
    final = _run_be(config.with_overrides(top_speed=least), "BE-S")
    return CalibrationResult(value=least, result=final, probes=tuple(probes))
