"""The job model (paper §II-A).

A job ``J_j`` has an arrival (start) time ``s_j``, a deadline ``d_j``
and a processing demand ``p_j``.  It may be *partially* processed; the
final processed volume ``c_j ≤ p_j`` determines its quality ``f(c_j)``.

:class:`Job` is a small mutable record with an explicit lifecycle::

    PENDING --assign--> ASSIGNED --run--> ... --settle--> COMPLETED
       |                                            |----> CUT
       '------------------- expire ----------------'----> EXPIRED / DROPPED

``COMPLETED`` means the full demand was processed; ``CUT`` means the
scheduler deliberately finished the job at a reduced volume (AES mode);
``EXPIRED`` means the deadline passed with work left; ``DROPPED`` means
the job never ran at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.units import Seconds, Volume

__all__ = ["Job", "JobOutcome"]

#: Volumes smaller than this are treated as zero to absorb float error.
_VOLUME_EPS = 1e-9


class JobOutcome(enum.Enum):
    """Final disposition of a job."""

    PENDING = "pending"
    COMPLETED = "completed"  # processed == demand
    CUT = "cut"  # deliberately finished at reduced volume
    EXPIRED = "expired"  # deadline passed mid-execution
    DROPPED = "dropped"  # never received any processing

    @property
    def is_final(self) -> bool:
        """Whether this outcome ends the job's lifecycle."""
        return self is not JobOutcome.PENDING


@dataclass
class Job:
    """One service request.

    Attributes
    ----------
    jid:
        Unique id, assigned in arrival order.
    arrival:
        Start time ``s_j`` (seconds).  The job cannot run earlier.
    deadline:
        Absolute deadline ``d_j`` (seconds).  No processing after it.
    demand:
        Full processing demand ``p_j`` (processing units; a core at
        1 GHz delivers 1000 units/second).
    processed:
        Volume processed so far, ``c_j``.
    core:
        Index of the core the job is pinned to once assigned (jobs
        never migrate, §II-B).
    """

    jid: int
    arrival: Seconds
    deadline: Seconds
    demand: Volume
    processed: Volume = 0.0
    core: Optional[int] = None
    #: Application-class index (0 in the paper's single-class model;
    #: the mixed-class extension maps it to a per-class quality function).
    klass: int = 0
    outcome: JobOutcome = field(default=JobOutcome.PENDING)

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"job {self.jid}: demand must be positive ({self.demand!r})")
        if self.deadline <= self.arrival:
            raise ValueError(
                f"job {self.jid}: deadline {self.deadline!r} precedes arrival {self.arrival!r}"
            )
        if self.processed < 0:
            raise ValueError(f"job {self.jid}: negative processed volume")

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> Volume:
        """Unprocessed demand ``p_j − c_j`` (never negative)."""
        return max(0.0, self.demand - self.processed)

    @property
    def window(self) -> Seconds:
        """Length of the execution window ``d_j − s_j``."""
        return self.deadline - self.arrival

    @property
    def settled(self) -> bool:
        """Whether the job's outcome is final."""
        return self.outcome.is_final

    def laxity(self, now: Seconds) -> Seconds:
        """Time left until the deadline (negative when expired)."""
        return self.deadline - now

    # ------------------------------------------------------------------
    def assign(self, core: int) -> None:
        """Pin the job to a core (one-shot; jobs never migrate)."""
        if self.core is not None and self.core != core:
            raise ValueError(
                f"job {self.jid} already pinned to core {self.core}, cannot move to {core}"
            )
        self.core = core

    def add_progress(self, volume: Volume) -> None:
        """Record ``volume`` processing units of execution."""
        if self.settled:
            raise ValueError(f"job {self.jid} is already settled ({self.outcome})")
        if volume < -_VOLUME_EPS:
            raise ValueError(f"job {self.jid}: negative progress {volume!r}")
        self.processed = min(self.demand, self.processed + max(0.0, volume))

    def settle(self, outcome: JobOutcome) -> None:
        """Fix the job's final outcome."""
        if self.settled:
            raise ValueError(f"job {self.jid} settled twice ({self.outcome} -> {outcome})")
        if outcome is JobOutcome.PENDING:
            raise ValueError("cannot settle to PENDING")
        self.outcome = outcome

    def settle_auto(self) -> JobOutcome:
        """Settle with the outcome implied by the processed volume.

        A relative tolerance absorbs float error from segments that end
        exactly at the deadline: a deficit below ``1e-7 × demand`` still
        counts as completion (the quality difference is ~1e-10).
        """
        if self.remaining <= max(_VOLUME_EPS, 1e-7 * self.demand):
            self.processed = self.demand
            self.settle(JobOutcome.COMPLETED)
        elif self.processed <= _VOLUME_EPS:
            self.settle(JobOutcome.DROPPED)
        else:
            self.settle(JobOutcome.EXPIRED)
        return self.outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(#{self.jid}, t={self.arrival:.4f}..{self.deadline:.4f}, "
            f"p={self.demand:.1f}, c={self.processed:.1f}, core={self.core}, "
            f"{self.outcome.value})"
        )
