"""Named application scenarios from the paper's motivation (§I).

The paper motivates "good enough" computing with several interactive
domains — web search, video rendering, financial data analysis, process
monitoring, GPS tracking — but evaluates only web search.  This module
provides parameter presets for each domain so users can run the same
study on workloads shaped like theirs.  The numbers are *stylized*
(order-of-magnitude choices documented per scenario), not measurements;
what matters is that they move the knobs that change scheduling
behaviour: deadline tightness, demand spread, and quality concavity.

>>> from repro.workload.scenarios import scenario_config
>>> cfg = scenario_config("video_rendering", arrival_rate=40.0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SimulationConfig
from repro.units import PerSecond

__all__ = ["SCENARIOS", "Scenario", "scenario_config"]


@dataclass(frozen=True)
class Scenario:
    """A named workload shape.

    Attributes
    ----------
    description:
        What the preset models and why the knobs are set as they are.
    overrides:
        Field overrides applied on top of the paper defaults.
    nominal_rate:
        A sensible default arrival rate (req/s) for this shape, chosen
        to land at ~60-80 % of the scenario's saturation.
    """

    name: str
    description: str
    overrides: Dict
    nominal_rate: PerSecond


SCENARIOS: Dict[str, Scenario] = {
    "web_search": Scenario(
        name="web_search",
        description=(
            "The paper's §IV-B evaluation workload: 150 ms deadlines, "
            "bounded-Pareto demands (mean 192 units), c=0.003 exponential "
            "quality — partial index scans lose only tail results."
        ),
        overrides={},
        nominal_rate=130.0,
    ),
    "video_rendering": Scenario(
        name="video_rendering",
        description=(
            "Frame/segment rendering: jobs an order of magnitude larger "
            "(1.3k-10k units) with second-scale deadlines; quality is "
            "strongly concave in refinement passes (early passes carry "
            "most of the perceptual quality), modelled with c=0.0009 on "
            "the larger x_max."
        ),
        overrides=dict(
            demand_min=1300.0,
            demand_max=10000.0,
            window_low=1.5,
            window_high=1.5,
            quality_c=0.0009,
        ),
        nominal_rate=13.0,
    ),
    "financial_analytics": Scenario(
        name="financial_analytics",
        description=(
            "Risk/quote analytics: tight 60 ms deadlines, moderately "
            "sized scans, log-shaped quality (each extra data source "
            "adds diminishing confidence).  Deadline-bound: a mean job "
            "alone needs 3.2 GHz, above the 2 GHz equal share, so the "
            "critical-load fraction is lowered to engage Water-Filling "
            "early — the knob the paper's §III-D flags as sensitive."
        ),
        overrides=dict(
            window_low=0.060,
            window_high=0.060,
            quality_shape="log",
            quality_c=0.02,
            critical_load_fraction=0.5,
        ),
        nominal_rate=120.0,
    ),
    "process_monitoring": Scenario(
        name="process_monitoring",
        description=(
            "Telemetry aggregation: small, homogeneous jobs (80-300 "
            "units), relaxed 400 ms deadlines, sqrt-shaped quality "
            "(sampling half the sensors already gives ~70 % confidence)."
        ),
        overrides=dict(
            demand_min=80.0,
            demand_max=300.0,
            window_low=0.400,
            window_high=0.400,
            quality_shape="power",
            quality_c=0.5,  # gamma for the power shape
        ),
        nominal_rate=180.0,
    ),
    "gps_tracking": Scenario(
        name="gps_tracking",
        description=(
            "Map-matching/position refinement: small jobs with variable "
            "freshness windows (100-600 ms, Fig. 4-style non-agreeable "
            "deadlines) and the default exponential quality."
        ),
        overrides=dict(
            demand_min=100.0,
            demand_max=500.0,
            window_low=0.100,
            window_high=0.600,
        ),
        nominal_rate=170.0,
    ),
}


def scenario_config(
    name: str,
    arrival_rate: Optional[PerSecond] = None,
    **extra_overrides: object,
) -> SimulationConfig:
    """A :class:`SimulationConfig` for a named scenario.

    Parameters
    ----------
    name:
        One of :data:`SCENARIOS`.
    arrival_rate:
        Defaults to the scenario's nominal rate.
    extra_overrides:
        Further config fields layered on top (e.g. ``horizon=...``).
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
    fields = dict(scenario.overrides)
    fields["arrival_rate"] = (
        arrival_rate if arrival_rate is not None else scenario.nominal_rate
    )
    fields.update(extra_overrides)
    return SimulationConfig(**fields)
