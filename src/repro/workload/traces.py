"""Save and load job traces as CSV.

Traces make experiments auditable: a workload can be materialized once,
written to disk, and replayed against different schedulers (or shared
between machines) with bit-identical job parameters.

Format: a header line followed by ``jid,arrival,deadline,demand`` rows.
Floats are written with ``repr`` precision so round-trips are exact.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Union

from repro.workload.job import Job

__all__ = ["save_trace", "load_trace"]

_HEADER = ["jid", "arrival", "deadline", "demand"]

PathLike = Union[str, Path]


def save_trace(jobs: Iterable[Job], path: PathLike) -> int:
    """Write jobs to ``path`` as CSV; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for job in jobs:
            writer.writerow([job.jid, repr(job.arrival), repr(job.deadline), repr(job.demand)])
            count += 1
    return count


def load_trace(path: PathLike) -> List[Job]:
    """Read a CSV trace back into fresh :class:`Job` objects."""
    path = Path(path)
    with path.open("r", newline="") as fh:
        return _parse(fh, str(path))


def loads_trace(text: str) -> List[Job]:
    """Parse a trace from a string (used by tests)."""
    return _parse(io.StringIO(text), "<string>")


def _parse(fh, origin: str) -> List[Job]:
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError(f"{origin}: empty trace file") from None
    if [h.strip() for h in header] != _HEADER:
        raise ValueError(f"{origin}: bad header {header!r}, expected {_HEADER!r}")
    jobs: List[Job] = []
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 4:
            raise ValueError(f"{origin}:{lineno}: expected 4 fields, got {len(row)}")
        try:
            jobs.append(
                Job(
                    jid=int(row[0]),
                    arrival=float(row[1]),
                    deadline=float(row[2]),
                    demand=float(row[3]),
                )
            )
        except ValueError as exc:
            raise ValueError(f"{origin}:{lineno}: {exc}") from None
    return jobs
