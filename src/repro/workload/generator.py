"""Workload generators (paper §IV-B).

:class:`PoissonWorkloadGenerator` drives the online simulation: it
pre-draws the whole arrival sequence for the horizon (vectorized, so a
10-minute 250 r/s run costs one NumPy call) and feeds jobs into the
simulator as arrival events.  :class:`StaticWorkload` wraps a fixed job
list (for unit tests, the Fig. 2 cutting demo, and trace replay).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_HIGH
from repro.sim.rng import RandomStreams
from repro.units import PerSecond, Seconds, Speed
from repro.workload.distributions import (
    BoundedPareto,
    ExponentialInterarrival,
    UniformDeadlineWindow,
)
from repro.workload.job import Job

__all__ = ["PoissonWorkloadGenerator", "StaticWorkload", "Workload"]

JobSink = Callable[[Job], None]


class Workload(Protocol):
    """What the harness needs from a workload (structural)."""

    def materialize(self) -> List[Job]:
        """Return the full job sequence this workload will emit."""
        ...

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule every arrival on ``sim``; return the job count."""
        ...


class PoissonWorkloadGenerator:
    """Poisson arrivals with bounded-Pareto demands and window deadlines.

    Parameters
    ----------
    arrival_rate:
        λ in requests/second.
    demand:
        Service-demand distribution (processing units).
    window:
        Deadline-window distribution (seconds).
    horizon:
        Arrivals are generated on [0, horizon) seconds.
    streams:
        Named RNG streams; "arrivals", "demands" and "windows" are used,
        so demand draws are identical across arrival-rate sweeps.
    """

    def __init__(
        self,
        arrival_rate: PerSecond,
        *,
        demand: Optional[BoundedPareto] = None,
        window: Optional[UniformDeadlineWindow] = None,
        horizon: Seconds = 600.0,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon!r}")
        self.interarrival = ExponentialInterarrival(arrival_rate)
        self.demand = demand or BoundedPareto()
        self.window = window or UniformDeadlineWindow()
        self.horizon = float(horizon)
        self.streams = streams or RandomStreams(seed=0)
        self._jobs: Optional[List[Job]] = None

    @property
    def arrival_rate(self) -> PerSecond:
        """λ in requests/second."""
        return self.interarrival.rate

    # ------------------------------------------------------------------
    def materialize(self) -> List[Job]:
        """Draw (once) and return the full arrival sequence as jobs."""
        if self._jobs is not None:
            return self._jobs
        rng_arrivals = self.streams.fresh("arrivals")
        rng_demands = self.streams.fresh("demands")
        rng_windows = self.streams.fresh("windows")

        # Draw interarrival gaps in growing chunks until the horizon is
        # covered; vectorized and exact.
        expected = max(16, int(self.arrival_rate * self.horizon * 1.1) + 64)
        gaps = self.interarrival.sample(rng_arrivals, expected)
        times = np.cumsum(gaps)
        while times.size == 0 or times[-1] < self.horizon:
            more = self.interarrival.sample(rng_arrivals, max(64, expected // 4))
            offset = times[-1] if times.size else 0.0
            times = np.concatenate([times, offset + np.cumsum(more)])
        arrivals = times[times < self.horizon]

        n = arrivals.size
        demands = np.atleast_1d(self.demand.sample(rng_demands, n))
        windows = np.atleast_1d(self.window.sample(rng_windows, n))
        self._jobs = [
            Job(
                jid=i,
                arrival=float(arrivals[i]),
                deadline=float(arrivals[i] + windows[i]),
                demand=float(demands[i]),
            )
            for i in range(n)
        ]
        return self._jobs

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule every arrival as a simulator event; returns job count.

        Arrival events use high priority so that a job arriving at the
        exact moment of a scheduler quantum is visible to that quantum.
        """
        jobs = self.materialize()
        for job in jobs:
            sim.at(job.arrival, _Arrival(sink, job), priority=PRIORITY_HIGH, name="arrival")
        return len(jobs)

    # -- analytical helpers ----------------------------------------------
    @property
    def offered_load(self) -> Speed:
        """Mean demand volume offered per second (units/s)."""
        return self.arrival_rate * self.demand.mean


class _Arrival:
    """Callable arrival event (cheaper and more debuggable than a lambda)."""

    __slots__ = ("sink", "job")

    def __init__(self, sink: JobSink, job: Job) -> None:
        self.sink = sink
        self.job = job

    def __call__(self) -> None:
        self.sink(self.job)


class StaticWorkload:
    """A fixed, pre-built list of jobs (unit tests and trace replay)."""

    def __init__(self, jobs: Sequence[Job]) -> None:
        self._jobs = sorted(jobs, key=lambda j: (j.arrival, j.jid))

    def materialize(self) -> List[Job]:
        """Return the job list (already sorted by arrival)."""
        return list(self._jobs)

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule the fixed arrivals into ``sim``."""
        for job in self._jobs:
            sim.at(job.arrival, _Arrival(sink, job), priority=PRIORITY_HIGH, name="arrival")
        return len(self._jobs)

    @property
    def offered_load(self) -> Speed:
        """Mean demand volume per second over the workload's span."""
        if not self._jobs:
            return 0.0
        span = max(j.deadline for j in self._jobs) - min(j.arrival for j in self._jobs)
        total = sum(j.demand for j in self._jobs)
        return total / span if span > 0 else float("inf")
