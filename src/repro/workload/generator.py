"""Workload generators (paper §IV-B).

:class:`PoissonWorkloadGenerator` drives the online simulation: it
pre-draws the whole arrival sequence for the horizon (vectorized, so a
10-minute 250 r/s run costs one NumPy call) and feeds jobs into the
simulator as arrival events.  :class:`StaticWorkload` wraps a fixed job
list (for unit tests, the Fig. 2 cutting demo, and trace replay).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_HIGH
from repro.sim.rng import RandomStreams
from repro.units import PerSecond, Seconds, Speed
from repro.workload.distributions import (
    BoundedPareto,
    ExponentialInterarrival,
    UniformDeadlineWindow,
)
from repro.workload.job import Job

__all__ = ["PoissonWorkloadGenerator", "StaticWorkload", "Workload"]

JobSink = Callable[[Job], None]


class Workload(Protocol):
    """What the harness needs from a workload (structural)."""

    def materialize(self) -> List[Job]:
        """Return the full job sequence this workload will emit."""
        ...

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule every arrival on ``sim``; return the job count."""
        ...


class PoissonWorkloadGenerator:
    """Poisson arrivals with bounded-Pareto demands and window deadlines.

    Parameters
    ----------
    arrival_rate:
        λ in requests/second.
    demand:
        Service-demand distribution (processing units).
    window:
        Deadline-window distribution (seconds).
    horizon:
        Arrivals are generated on [0, horizon) seconds.
    streams:
        Named RNG streams; "arrivals", "demands" and "windows" are used,
        so demand draws are identical across arrival-rate sweeps.
    rate_bursts:
        Flash-crowd windows ``(start, duration, factor)`` with
        ``factor > 1``: inside each window an *independent* Poisson
        stream at rate ``λ·(factor−1)`` is superposed on the base
        process (Poisson superposition), so the base draws — and hence
        every job of the undisturbed run — are untouched.  Each window
        uses its own named RNG streams (``burst<i>-*``); an empty tuple
        consumes no randomness at all.
    demand_inflations:
        Mis-estimation windows ``(start, duration, factor)``: jobs
        arriving inside a window carry ``factor`` × the drawn demand
        (capped at the demand distribution's ``x_max`` so quality stays
        within [0, 1]), modeling observed ``p_j`` above the planned one.
    """

    def __init__(
        self,
        arrival_rate: PerSecond,
        *,
        demand: Optional[BoundedPareto] = None,
        window: Optional[UniformDeadlineWindow] = None,
        horizon: Seconds = 600.0,
        streams: Optional[RandomStreams] = None,
        rate_bursts: Sequence[tuple] = (),
        demand_inflations: Sequence[tuple] = (),
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon!r}")
        self.interarrival = ExponentialInterarrival(arrival_rate)
        self.demand = demand or BoundedPareto()
        self.window = window or UniformDeadlineWindow()
        self.horizon = float(horizon)
        self.streams = streams or RandomStreams(seed=0)
        self.rate_bursts = tuple(rate_bursts)
        self.demand_inflations = tuple(demand_inflations)
        self._jobs: Optional[List[Job]] = None

    @property
    def arrival_rate(self) -> PerSecond:
        """λ in requests/second."""
        return self.interarrival.rate

    # ------------------------------------------------------------------
    def materialize(self) -> List[Job]:
        """Draw (once) and return the full arrival sequence as jobs."""
        if self._jobs is not None:
            return self._jobs
        rng_arrivals = self.streams.fresh("arrivals")
        rng_demands = self.streams.fresh("demands")
        rng_windows = self.streams.fresh("windows")

        # Draw interarrival gaps in growing chunks until the horizon is
        # covered; vectorized and exact.
        expected = max(16, int(self.arrival_rate * self.horizon * 1.1) + 64)
        gaps = self.interarrival.sample(rng_arrivals, expected)
        times = np.cumsum(gaps)
        while times.size == 0 or times[-1] < self.horizon:
            more = self.interarrival.sample(rng_arrivals, max(64, expected // 4))
            offset = times[-1] if times.size else 0.0
            times = np.concatenate([times, offset + np.cumsum(more)])
        arrivals = times[times < self.horizon]

        n = arrivals.size
        demands = np.atleast_1d(self.demand.sample(rng_demands, n))
        windows = np.atleast_1d(self.window.sample(rng_windows, n))
        if self.rate_bursts:
            arrivals, demands, windows = self._superpose_bursts(
                arrivals, demands, windows
            )
        if self.demand_inflations:
            demands = self._inflate_demands(arrivals, demands)
        n = arrivals.size
        self._jobs = [
            Job(
                jid=i,
                arrival=float(arrivals[i]),
                deadline=float(arrivals[i] + windows[i]),
                demand=float(demands[i]),
            )
            for i in range(n)
        ]
        return self._jobs

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule every arrival as a simulator event; returns job count.

        Arrival events use high priority so that a job arriving at the
        exact moment of a scheduler quantum is visible to that quantum.
        """
        jobs = self.materialize()
        for job in jobs:
            sim.at(job.arrival, _Arrival(sink, job), priority=PRIORITY_HIGH, name="arrival")
        return len(jobs)

    # -- disturbance modulation ------------------------------------------
    def _superpose_bursts(
        self,
        arrivals: np.ndarray,
        demands: np.ndarray,
        windows: np.ndarray,
    ) -> tuple:
        """Merge per-window superposed Poisson arrivals into the base draw.

        Each burst window draws from its own named streams, so the base
        sequence stays bit-identical and two schedules differing only in
        window ``i`` leave windows ``j ≠ i`` unchanged.  The merged
        sequence is re-sorted by arrival time (stable: base jobs first
        on exact ties) before jids are assigned.
        """
        all_t = [arrivals]
        all_d = [demands]
        all_w = [windows]
        for i, (start, duration, factor) in enumerate(self.rate_bursts):
            extra_rate = self.arrival_rate * (factor - 1.0)
            end = min(start + duration, self.horizon)
            span = end - start
            if extra_rate <= 0 or span <= 0:
                continue
            rng_t = self.streams.fresh(f"burst{i}-arrivals")
            inter = ExponentialInterarrival(extra_rate)
            expected = max(16, int(extra_rate * span * 1.1) + 64)
            gaps = inter.sample(rng_t, expected)
            times = start + np.cumsum(gaps)
            while times.size == 0 or times[-1] < end:
                more = inter.sample(rng_t, max(64, expected // 4))
                offset = times[-1] if times.size else start
                times = np.concatenate([times, offset + np.cumsum(more)])
            times = times[times < end]
            k = times.size
            if k == 0:
                continue
            all_t.append(times)
            all_d.append(
                np.atleast_1d(
                    self.demand.sample(self.streams.fresh(f"burst{i}-demands"), k)
                )
            )
            all_w.append(
                np.atleast_1d(
                    self.window.sample(self.streams.fresh(f"burst{i}-windows"), k)
                )
            )
        merged_t = np.concatenate(all_t)
        merged_d = np.concatenate(all_d)
        merged_w = np.concatenate(all_w)
        order = np.argsort(merged_t, kind="stable")
        return merged_t[order], merged_d[order], merged_w[order]

    def _inflate_demands(
        self, arrivals: np.ndarray, demands: np.ndarray
    ) -> np.ndarray:
        """Scale demands of jobs arriving inside mis-estimation windows."""
        demands = demands.copy()
        for start, duration, factor in self.demand_inflations:
            mask = (arrivals >= start) & (arrivals < start + duration)
            demands[mask] = np.minimum(demands[mask] * factor, self.demand.x_max)
        return demands

    # -- analytical helpers ----------------------------------------------
    @property
    def offered_load(self) -> Speed:
        """Mean demand volume offered per second (units/s)."""
        return self.arrival_rate * self.demand.mean


class _Arrival:
    """Callable arrival event (cheaper and more debuggable than a lambda)."""

    __slots__ = ("sink", "job")

    def __init__(self, sink: JobSink, job: Job) -> None:
        self.sink = sink
        self.job = job

    def __call__(self) -> None:
        self.sink(self.job)


class StaticWorkload:
    """A fixed, pre-built list of jobs (unit tests and trace replay)."""

    def __init__(self, jobs: Sequence[Job]) -> None:
        self._jobs = sorted(jobs, key=lambda j: (j.arrival, j.jid))

    def materialize(self) -> List[Job]:
        """Return the job list (already sorted by arrival)."""
        return list(self._jobs)

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule the fixed arrivals into ``sim``."""
        for job in self._jobs:
            sim.at(job.arrival, _Arrival(sink, job), priority=PRIORITY_HIGH, name="arrival")
        return len(self._jobs)

    @property
    def offered_load(self) -> Speed:
        """Mean demand volume per second over the workload's span."""
        if not self._jobs:
            return 0.0
        span = max(j.deadline for j in self._jobs) - min(j.arrival for j in self._jobs)
        total = sum(j.demand for j in self._jobs)
        return total / span if span > 0 else float("inf")
