"""Random distributions used by the workload model.

The paper's service demands follow a *bounded Pareto* distribution with
index α=3 on [130, 1000] (mean ≈ 192 processing units); arrivals are
Poisson (exponential interarrivals); the Fig. 4 deadline variant draws
the response window uniformly from [150 ms, 500 ms].

Each distribution takes a ``numpy.random.Generator`` per call so the
caller controls stream identity (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.units import PerSecond, Seconds, SecondsLike, Volume, VolumeLike

__all__ = ["BoundedPareto", "ExponentialInterarrival", "UniformDeadlineWindow"]

ArrayOrFloat = Union[float, np.ndarray]


@dataclass(frozen=True)
class BoundedPareto:
    """Bounded (truncated) Pareto distribution on [x_min, x_max].

    CDF on the support:
        F(x) = (1 − (x_min/x)^α) / (1 − (x_min/x_max)^α)

    Sampling is by inverse transform, which is exact and vectorizes.

    Parameters mirror the paper: ``alpha=3``, ``x_min=130``,
    ``x_max=1000``.
    """

    alpha: float = 3.0
    x_min: Volume = 130.0
    x_max: Volume = 1000.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha!r}")
        if not 0 < self.x_min < self.x_max:
            raise ConfigurationError(
                f"require 0 < x_min < x_max, got [{self.x_min!r}, {self.x_max!r}]"
            )

    # ------------------------------------------------------------------
    @property
    def mean(self) -> Volume:
        """Exact mean of the bounded Pareto.

        For α ≠ 1:
            E[X] = x_min^α / (1 − (x_min/x_max)^α) · α/(α−1) ·
                   (x_min^{1−α} − x_max^{1−α})
        """
        a, lo, hi = self.alpha, self.x_min, self.x_max
        trunc = 1.0 - (lo / hi) ** a
        if abs(a - 1.0) < 1e-12:
            return (lo * math.log(hi / lo)) / trunc + lo * 0  # pragma: no cover
        return (lo**a / trunc) * (a / (a - 1.0)) * (lo ** (1.0 - a) - hi ** (1.0 - a))

    def cdf(self, x: ArrayOrFloat) -> ArrayOrFloat:
        """Cumulative distribution function (clamped outside support)."""
        arr = np.asarray(x, dtype=float)
        a, lo, hi = self.alpha, self.x_min, self.x_max
        trunc = 1.0 - (lo / hi) ** a
        inside = (1.0 - (lo / np.clip(arr, lo, hi)) ** a) / trunc
        out = np.where(arr < lo, 0.0, np.where(arr > hi, 1.0, inside))
        return float(out) if np.isscalar(x) or arr.ndim == 0 else out

    def ppf(self, u: ArrayOrFloat) -> VolumeLike:
        """Inverse CDF; ``u`` in [0, 1)."""
        arr = np.asarray(u, dtype=float)
        if np.any((arr < 0) | (arr >= 1)):
            raise ValueError("quantile argument must lie in [0, 1)")
        a, lo, hi = self.alpha, self.x_min, self.x_max
        trunc = 1.0 - (lo / hi) ** a
        out = lo * (1.0 - arr * trunc) ** (-1.0 / a)
        return float(out) if np.isscalar(u) or arr.ndim == 0 else out

    def sample(self, rng: np.random.Generator, size: int | None = None) -> VolumeLike:
        """Draw one value (``size=None``) or an array of samples."""
        u = rng.random(size)
        return self.ppf(u)


@dataclass(frozen=True)
class ExponentialInterarrival:
    """Exponential interarrival times of a Poisson process.

    ``rate`` is in arrivals per second (the paper's λ axis).
    """

    rate: PerSecond

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {self.rate!r}")

    @property
    def mean(self) -> Seconds:
        """Mean gap between arrivals."""
        return 1.0 / self.rate

    def sample(self, rng: np.random.Generator, size: int | None = None) -> SecondsLike:
        """Draw interarrival gap(s)."""
        return rng.exponential(1.0 / self.rate, size)


@dataclass(frozen=True)
class UniformDeadlineWindow:
    """Response window (deadline − arrival), possibly degenerate.

    With ``low == high`` every job gets the same fixed window (the
    paper's default of 150 ms); otherwise the window is uniform on
    [low, high] (the Fig. 4 variant uses [0.15 s, 0.5 s]).
    """

    low: Seconds = 0.150
    high: Seconds = 0.150

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high < self.low:
            raise ConfigurationError(
                f"require 0 < low <= high, got [{self.low!r}, {self.high!r}]"
            )

    @property
    def fixed(self) -> bool:
        """Whether every window has the same length."""
        return self.low == self.high

    @property
    def mean(self) -> Seconds:
        """Mean window length."""
        return 0.5 * (self.low + self.high)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> SecondsLike:
        """Draw window length(s)."""
        if self.fixed:
            if size is None:
                return self.low
            return np.full(size, self.low)
        return rng.uniform(self.low, self.high, size)
