"""Non-stationary (piecewise-constant rate) Poisson workloads.

The paper evaluates at fixed arrival rates; real interactive services
see diurnal load.  :class:`PiecewiseRateWorkload` generates a Poisson
process whose rate follows a step profile — e.g. night → ramp → peak →
tail — so a *single* run exercises GE's compensation dynamics across a
load swing (see ``examples/diurnal_load.py``).

Generation is exact per segment: within each constant-rate piece the
arrivals are an ordinary homogeneous Poisson process, and segment
boundaries splice by memorylessness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import PerSecond, Seconds, Speed
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.distributions import BoundedPareto, UniformDeadlineWindow
from repro.workload.generator import JobSink, _Arrival
from repro.workload.job import Job

__all__ = ["PiecewiseRateWorkload"]


class PiecewiseRateWorkload:
    """Poisson arrivals with a piecewise-constant rate profile.

    Parameters
    ----------
    profile:
        ``(duration_seconds, rate_per_second)`` pieces, played in order.
    demand, window, streams:
        As for :class:`repro.workload.generator.PoissonWorkloadGenerator`.
    """

    def __init__(
        self,
        profile: Sequence[Tuple[Seconds, PerSecond]],
        *,
        demand: Optional[BoundedPareto] = None,
        window: Optional[UniformDeadlineWindow] = None,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        if not profile:
            raise ConfigurationError("profile must have at least one piece")
        for duration, rate in profile:
            if duration <= 0:
                raise ConfigurationError(f"piece duration must be positive: {duration!r}")
            if rate <= 0:
                raise ConfigurationError(f"piece rate must be positive: {rate!r}")
        self.profile = [(float(d), float(r)) for d, r in profile]
        self.demand = demand or BoundedPareto()
        self.window = window or UniformDeadlineWindow()
        self.streams = streams or RandomStreams(seed=0)
        self._jobs: Optional[List[Job]] = None

    @property
    def horizon(self) -> Seconds:
        """Total length of the profile in seconds."""
        return sum(d for d, _ in self.profile)

    def rate_at(self, time: Seconds) -> PerSecond:
        """The profile's rate at absolute ``time`` (0 past the end)."""
        t = 0.0
        for duration, rate in self.profile:
            t += duration
            if time < t:
                return rate
        return 0.0

    # ------------------------------------------------------------------
    def materialize(self) -> List[Job]:
        """Draw (once) the full arrival sequence."""
        if self._jobs is not None:
            return self._jobs
        rng_arrivals = self.streams.fresh("arrivals")
        rng_demands = self.streams.fresh("demands")
        rng_windows = self.streams.fresh("windows")

        times: List[float] = []
        start = 0.0
        for duration, rate in self.profile:
            end = start + duration
            t = start
            # Exponential gaps at this piece's rate; memorylessness lets
            # each piece restart the clock at its boundary.
            while True:
                t += rng_arrivals.exponential(1.0 / rate)
                if t >= end:
                    break
                times.append(t)
            start = end

        n = len(times)
        demands = np.atleast_1d(self.demand.sample(rng_demands, n))
        windows = np.atleast_1d(self.window.sample(rng_windows, n))
        self._jobs = [
            Job(
                jid=i,
                arrival=times[i],
                deadline=times[i] + float(windows[i]),
                demand=float(demands[i]),
            )
            for i in range(n)
        ]
        return self._jobs

    def install(self, sim: Simulator, sink: JobSink) -> int:
        """Schedule every arrival into ``sim``; returns the job count."""
        from repro.sim.events import PRIORITY_HIGH

        jobs = self.materialize()
        for job in jobs:
            sim.at(job.arrival, _Arrival(sink, job), priority=PRIORITY_HIGH, name="arrival")
        return len(jobs)

    @property
    def offered_load(self) -> Speed:
        """Mean offered demand volume per second over the whole profile."""
        total_arrivals = sum(d * r for d, r in self.profile)
        return total_arrivals * self.demand.mean / self.horizon
