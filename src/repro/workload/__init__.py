"""Workload model: jobs, arrival processes and demand distributions.

Reproduces the paper's §IV-B web-search workload: Poisson arrivals,
bounded-Pareto service demands (α=3, x_min=130, x_max=1000 processing
units, mean 192), and deadlines at arrival + 150 ms (or uniformly drawn
from [150 ms, 500 ms] for the Fig. 4 variant).
"""

from repro.workload.distributions import (
    BoundedPareto,
    ExponentialInterarrival,
    UniformDeadlineWindow,
)
from repro.workload.generator import PoissonWorkloadGenerator, StaticWorkload
from repro.workload.job import Job, JobOutcome
from repro.workload.nonstationary import PiecewiseRateWorkload
from repro.workload.traces import load_trace, save_trace

__all__ = [
    "BoundedPareto",
    "ExponentialInterarrival",
    "Job",
    "JobOutcome",
    "PiecewiseRateWorkload",
    "PoissonWorkloadGenerator",
    "StaticWorkload",
    "UniformDeadlineWindow",
    "load_trace",
    "save_trace",
]
