"""Command-line interface: regenerate paper figures and run single sims.

Examples
--------
List the reproducible figures::

    repro-cli list

Regenerate Fig. 3 at bench scale, or at the paper's full 10-minute
horizon::

    repro-cli fig 3
    repro-cli fig 3 --paper-scale

Run one scheduler once and print its summary row::

    repro-cli run --scheduler GE --rate 150 --horizon 30

Record a full trace (job spans, scheduler events, core timelines) of a
scenario run and export it as JSONL::

    repro-cli trace --scenario websearch --out trace.jsonl

Any ``run``/``scenario`` invocation can also dump a trace alongside its
summary row via ``--trace`` / ``--trace-out PATH``.

Snapshot the performance of the fixed bench suite, and gate a change
against a baseline snapshot::

    repro-cli bench --out BENCH_new.json
    repro-cli bench compare benchmarks/baseline.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines.clairvoyant import make_oracle
from repro.baselines.queue_order import FCFS, FDFS, LJF, SJF
from repro.config import SimulationConfig
from repro.core.ge import GEScheduler, make_be, make_ge, make_oq
from repro.experiments.registry import get_figure, list_figures
from repro.server.harness import SimulationHarness

__all__ = ["main"]

_SCHEDULERS = {
    "GE": make_ge,
    "BE": make_be,
    "OQ": make_oq,
    "GE-NOCOMP": lambda: GEScheduler(name="GE-NoComp", compensated=False),
    "GE-ORACLE": make_oracle,
    "GE-ES": lambda: GEScheduler(name="GE-ES", distribution="es"),
    "GE-WF": lambda: GEScheduler(name="GE-WF", distribution="wf"),
    "FCFS": FCFS,
    "FDFS": FDFS,
    "LJF": LJF,
    "SJF": SJF,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Reproduce 'When Good Enough Is Better' (IPDPSW 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    fig = sub.add_parser("fig", help="regenerate one paper figure")
    fig.add_argument("figure", help="figure id (e.g. 3 or fig03)")
    fig.add_argument("--scale", type=float, default=None,
                     help="horizon scale (1.0 = the paper's 10 minutes)")
    fig.add_argument("--paper-scale", action="store_true",
                     help="run at the paper's full scale (scale=1.0)")
    fig.add_argument("--seed", type=int, default=1)
    fig.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the figure's series as CSV")

    run = sub.add_parser("run", help="run one scheduler once")
    run.add_argument("--scheduler", default="GE", choices=sorted(_SCHEDULERS))
    run.add_argument("--rate", type=float, default=150.0, help="arrival rate (req/s)")
    run.add_argument("--horizon", type=float, default=60.0, help="seconds of arrivals")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--cores", type=int, default=16)
    run.add_argument("--budget", type=float, default=320.0, help="power budget (W)")
    run.add_argument("--q-ge", type=float, default=0.9, help="good-enough quality")
    _add_trace_flags(run)

    sweep = sub.add_parser("sweep", help="sweep schedulers across arrival rates")
    sweep.add_argument("--schedulers", default="GE,BE",
                       help="comma-separated scheduler names")
    sweep.add_argument("--rates", default="100,150,200,250",
                       help="comma-separated arrival rates (req/s)")
    sweep.add_argument("--horizon", type=float, default=20.0)
    sweep.add_argument("--seed", type=int, default=1)

    scen = sub.add_parser("scenario", help="run a named application scenario")
    scen.add_argument("name", nargs="?", default=None,
                      help="scenario name; omit to list the presets")
    scen.add_argument("--scheduler", default="GE", choices=sorted(_SCHEDULERS))
    scen.add_argument("--rate", type=float, default=None,
                      help="arrival rate (default: the scenario's nominal rate)")
    scen.add_argument("--horizon", type=float, default=30.0)
    scen.add_argument("--seed", type=int, default=1)
    _add_trace_flags(scen)

    report = sub.add_parser(
        "report",
        help="regenerate figures into a markdown report, or render an "
             "HTML dashboard for a run (--run / --trace)",
    )
    report.add_argument("--scale", type=float, default=None,
                        help="horizon scale for every figure (default: per-figure)")
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--out", metavar="PATH", default=None,
                        help="write to a file instead of stdout "
                             "(HTML mode default: report.html)")
    report.add_argument("--figures", nargs="*", default=None,
                        help="subset of figure ids (default: all twelve)")
    report.add_argument("--run", metavar="ID", default=None,
                        help="render the HTML dashboard of a stored run "
                             "(accepts unique id prefixes)")
    report.add_argument("--trace", metavar="PATH", default=None,
                        help="render the HTML dashboard of a JSONL trace file")
    _add_runs_dir_flag(report)

    runs = sub.add_parser("runs", help="inspect the stored run registry")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list stored runs, newest first")
    runs_list.add_argument("--format", default="table", choices=("table", "json"),
                           help="output format (json is machine-readable)")
    runs_show = runs_sub.add_parser("show", help="show one stored run summary")
    runs_show.add_argument("run_id", help="run id (unique prefixes accepted)")
    runs_diff = runs_sub.add_parser(
        "diff", help="diff two stored runs (results, SLOs, counters, phases)"
    )
    runs_diff.add_argument("a", help="baseline run id")
    runs_diff.add_argument("b", help="candidate run id")
    runs_delete = runs_sub.add_parser("delete", help="delete one stored run")
    runs_delete.add_argument("run_id", help="run id (unique prefixes accepted)")
    runs_gc = runs_sub.add_parser(
        "gc", help="prune old runs, keeping the newest N (--pin ids never die)"
    )
    runs_gc.add_argument("--keep", type=int, required=True,
                         help="number of newest runs to keep")
    runs_gc.add_argument("--pin", action="append", default=[], metavar="ID",
                         help="run id to protect from pruning "
                              "(repeatable; unique prefixes accepted)")
    for runs_parser in (runs_list, runs_show, runs_diff, runs_delete, runs_gc):
        _add_runs_dir_flag(runs_parser)

    fleet = sub.add_parser(
        "fleet",
        help="run an experiment grid across worker processes with a "
             "telemetry bus and fleet rollups",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="execute a scenario × seed × rate grid"
    )
    fleet_run.add_argument("--scenarios", default="ge_light,ge_nominal",
                           help="comma-separated bench scenario names "
                                "(see 'repro-cli bench --list')")
    fleet_run.add_argument("--seeds", default="1,2",
                           help="comma-separated seeds")
    fleet_run.add_argument("--rates", default=None,
                           help="comma-separated arrival-rate overrides "
                                "(optional third grid axis)")
    fleet_run.add_argument("--scale", type=float, default=None,
                           help="horizon scale per task (default 0.02 ≈ 12 s)")
    fleet_run.add_argument("--workers", type=int, default=2,
                           help="worker processes (spawn start method)")
    fleet_run.add_argument("--sequential", action="store_true",
                           help="run in-process, one task at a time "
                                "(the determinism reference)")
    fleet_run.add_argument("--no-store", action="store_true",
                           help="do not persist summaries into the run registry")
    fleet_run.add_argument("--report", metavar="PATH", default=None,
                           help="also write the fleet HTML dashboard")
    fleet_run.add_argument("--min-slo-compliance", type=float, default=None,
                           help="exit 1 unless the fleet-wide SLO compliance "
                                "fraction reaches this value (CI gate)")
    fleet_status = fleet_sub.add_parser(
        "status", help="show a stored fleet rollup as text"
    )
    fleet_status.add_argument("run_id", nargs="?", default=None,
                              help="fleet run id (default: the newest fleet)")
    fleet_report = fleet_sub.add_parser(
        "report", help="render a stored fleet rollup as an HTML dashboard"
    )
    fleet_report.add_argument("run_id", nargs="?", default=None,
                              help="fleet run id (default: the newest fleet)")
    fleet_report.add_argument("--out", metavar="PATH", default="fleet-report.html")
    for fleet_parser in (fleet_run, fleet_status, fleet_report):
        _add_runs_dir_flag(fleet_parser)

    chaos = sub.add_parser(
        "chaos",
        help="run deterministic disturbance scenarios (repro.chaos) and "
             "analyze degradation against the undisturbed twin",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_sub.add_parser("list", help="list the chaos scenario catalog")
    chaos_run = chaos_sub.add_parser(
        "run", help="run one scenario and its undisturbed twin"
    )
    chaos_run.add_argument("name", help="catalog scenario name (see 'chaos list')")
    chaos_run.add_argument("--scale", type=float, default=0.02,
                           help="horizon scale (default 0.02 ≈ 12 s)")
    chaos_run.add_argument("--seed", type=int, default=1)
    chaos_run.add_argument("--json", metavar="PATH", default=None,
                           help="write the annotated run summary as JSON")
    chaos_run.add_argument("--report", metavar="PATH", default=None,
                           help="write the HTML degradation report")
    chaos_run.add_argument("--max-recovery-s", type=float, default=None,
                           help="exit 1 if any disturbance's recovery time "
                                "exceeds this bound (CI gate)")
    chaos_run.add_argument("--min-post-compliance", type=float, default=None,
                           help="exit 1 unless the post-recovery quality-floor "
                                "compliance reaches this fraction (CI gate)")
    chaos_report = chaos_sub.add_parser(
        "report", help="render a saved chaos JSON summary as HTML"
    )
    chaos_report.add_argument("path", help="input JSON (from 'chaos run --json')")
    chaos_report.add_argument("--out", metavar="PATH", default="chaos-report.html")

    rep = sub.add_parser("replicate", help="replicate one scheduler across seeds")
    rep.add_argument("--scheduler", default="GE", choices=sorted(_SCHEDULERS))
    rep.add_argument("--rate", type=float, default=150.0)
    rep.add_argument("--horizon", type=float, default=30.0)
    rep.add_argument("--seed", type=int, default=1, help="first seed of the ladder")
    rep.add_argument("--n", type=int, default=5, help="number of replications")

    trace = sub.add_parser(
        "trace",
        help="run with tracing on and export the telemetry "
             "(or save/replay workload traces)",
    )
    trace.add_argument("--scenario", default=None,
                       help="named application scenario (e.g. websearch); "
                            "omit for the paper's default workload")
    trace.add_argument("--scheduler", default="GE", choices=sorted(_SCHEDULERS))
    trace.add_argument("--rate", type=float, default=None,
                       help="arrival rate (default: scenario nominal, else 150)")
    trace.add_argument("--horizon", type=float, default=30.0)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write the trace as JSONL")
    trace.add_argument("--timeline-csv", metavar="PATH", default=None,
                       help="also write the per-core timeline samples as CSV")
    trace.add_argument("--spans-csv", metavar="PATH", default=None,
                       help="also write the spans as CSV")
    trace.add_argument("--no-summary", action="store_true",
                       help="suppress the trace summary on stdout")
    _add_sanitize_flag(trace)
    _add_stream_flags(trace)
    trace_sub = trace.add_subparsers(dest="trace_command", required=False)
    trace_show = trace_sub.add_parser(
        "show", help="summarize a JSONL trace file (streaming, constant memory)"
    )
    trace_show.add_argument("path", help="input trace.jsonl")
    save = trace_sub.add_parser("save", help="materialize a workload to CSV")
    save.add_argument("path", help="output CSV file")
    save.add_argument("--rate", type=float, default=150.0)
    save.add_argument("--horizon", type=float, default=60.0)
    save.add_argument("--seed", type=int, default=1)
    replay = trace_sub.add_parser("replay", help="run a scheduler on a saved trace")
    replay.add_argument("path", help="input CSV file")
    replay.add_argument("--scheduler", default="GE", choices=sorted(_SCHEDULERS))
    replay.add_argument("--q-ge", type=float, default=0.9)

    bench = sub.add_parser(
        "bench",
        help="run the performance bench suite and write a snapshot "
             "(or compare two snapshots)",
    )
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="snapshot output path (default: BENCH_<label>.json)")
    bench.add_argument("--label", default="local",
                       help="snapshot label, embedded in the artifact")
    bench.add_argument("--scale", type=float, default=None,
                       help="horizon scale per scenario (default: 0.02 ≈ 12 s)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--repeats", type=int, default=1,
                       help="timed repeats per scenario; the fastest is kept")
    bench.add_argument("--scenarios", default=None,
                       help="comma-separated subset of the suite")
    bench.add_argument("--mem", action="store_true",
                       help="also record the tracemalloc allocation peak "
                            "(separate untimed run per scenario)")
    bench.add_argument("--tracer", default="full", choices=("full", "stream"),
                       help="telemetry sink under test: the buffering tracer "
                            "or the constant-memory streaming one")
    bench.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="fan scenarios across N worker processes "
                            "(results identical; wall times then measure a "
                            "contended host — do not compare against a "
                            "sequential baseline)")
    bench.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list the suite's scenarios and exit")
    bench_sub = bench.add_subparsers(dest="bench_command", required=False)
    cmp_p = bench_sub.add_parser(
        "compare", help="diff two snapshots; exits 1 on regression"
    )
    cmp_p.add_argument("old", help="baseline BENCH_*.json")
    cmp_p.add_argument("new", help="candidate BENCH_*.json")
    cmp_p.add_argument("--threshold", type=float, default=1.25,
                       help="wall-time regression ratio (default 1.25)")
    cmp_p.add_argument("--fidelity-tol", type=float, default=1e-6,
                       help="relative tolerance for quality/energy drift")
    cmp_p.add_argument("--no-fidelity", action="store_true",
                       help="skip the fidelity and determinism gates")
    cmp_p.add_argument("--scenarios", dest="cmp_scenarios", default=None,
                       metavar="NAMES",
                       help="comma-separated scenario names to compare "
                            "(default: all; scenarios outside the filter "
                            "are ignored rather than counted as missing)")
    return parser


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--trace-out`` options."""
    parser.add_argument("--trace", action="store_true",
                        help="record a trace and print its summary")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="record a trace and write it as JSONL (implies --trace)")
    _add_sanitize_flag(parser)
    _add_stream_flags(parser)


def _add_stream_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the streaming-telemetry options (``--stream``/``--store``)."""
    parser.add_argument("--stream", action="store_true",
                        help="use the constant-memory streaming tracer: "
                             "windowed aggregates + online SLO monitors "
                             "instead of buffered records")
    parser.add_argument("--store", action="store_true",
                        help="save the run summary into the run registry "
                             "(implies --stream; see 'repro-cli runs')")
    _add_runs_dir_flag(parser)


def _add_runs_dir_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--runs-dir", metavar="PATH", default=None,
                        help="run registry root (default: $REPRO_RUNS_DIR "
                             "or ./.repro-runs)")


def _add_sanitize_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sanitize", action="store_true",
                        help="assert simulation invariants while running "
                             "(also enabled by REPRO_SANITIZE=1)")


def _resolve_scenario(name: str) -> str:
    """Map a user-typed scenario name to its canonical key.

    Accepts separator-free aliases (``websearch`` → ``web_search``).
    """
    from repro.workload.scenarios import SCENARIOS

    if name in SCENARIOS:
        return name
    normalized = name.replace("-", "").replace("_", "").lower()
    for key in SCENARIOS:
        if key.replace("_", "").lower() == normalized:
            return key
    # Same contract as scenario_config for unknown names.
    raise KeyError(
        f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
    )


def _new_tracer_if(active: bool, *, sanitize: bool = False,
                   config: Optional[SimulationConfig] = None, scheduler=None,
                   stream: bool = False, spill: Optional[str] = None):
    """A fresh tracer when tracing/sanitizing was requested, else None.

    Sanitizing implies tracing: the invariant checks ride the trace
    stream (:class:`repro.check.SanitizingTracer`).  ``stream`` selects
    the constant-memory :class:`repro.obs.StreamingTracer` instead of
    the buffering one, spilling raw records to ``spill`` when given.
    """
    from repro.check.sanitizer import sanitize_requested

    if sanitize_requested(sanitize):
        if stream:
            print("--sanitize and --stream are mutually exclusive "
                  "(the sanitizer rides the buffering tracer)")
            raise SystemExit(2)
        from repro.check.sanitizer import SanitizingTracer

        return SanitizingTracer.for_run(config, scheduler)
    if stream:
        from repro.obs import StreamingTracer

        return StreamingTracer(spill_path=spill)
    if not active:
        return None
    from repro.obs import Tracer

    return Tracer()


def _report_sanitizer(tracer) -> None:
    """Print the clean-run summary line after a sanitized run."""
    from repro.check.sanitizer import SanitizingTracer

    if isinstance(tracer, SanitizingTracer):
        print(f"sanitizer: {tracer.checks_run} invariant checks passed")


def _emit_trace(tracer, *, out=None, timeline_csv=None, spans_csv=None,
                summary=True) -> None:
    """Print/export a finished tracer's telemetry."""
    from repro.obs import summarize, write_jsonl, write_spans_csv, write_timeline_csv

    trace = tracer.to_trace()
    # Files first: a broken stdout pipe must not lose the artifacts.
    if out:
        lines = write_jsonl(trace, out)
        print(f"wrote {lines} trace records to {out}")
    if timeline_csv:
        rows = write_timeline_csv(trace, timeline_csv)
        print(f"wrote {rows} timeline samples to {timeline_csv}")
    if spans_csv:
        rows = write_spans_csv(trace, spans_csv)
        print(f"wrote {rows} spans to {spans_csv}")
    if summary:
        print(summarize(trace))


def _emit_stream(tracer, *, result, out=None, store=False, runs_dir=None,
                 summary=True) -> None:
    """Print (and optionally store) a finished streaming run's telemetry."""
    from dataclasses import asdict

    from repro.obs.runs import RunStore, format_run, make_summary

    if out:
        print(f"wrote {tracer.spilled_records} trace records to {out}")
    doc = make_summary(tracer.summary(), result=asdict(result))
    if store:
        registry = RunStore(runs_dir)
        run_id = registry.save(doc, trace_path=out)
        print(f"stored run {run_id} in {registry.root}")
    if summary:
        print(format_run(doc))


def _interrupted(tracer, harness, *, out=None, store=False, runs_dir=None) -> int:
    """Wind down after Ctrl-C: flush partial telemetry, then exit 130.

    A :class:`~repro.obs.StreamingTracer` is closed at the interrupt's
    simulated time, so the JSONL spill ends on a complete line (every
    record is a single ``write``) with the final meta/metrics tail
    appended, and the partial summary can still land in the run
    registry — flagged ``interrupted`` so it is never mistaken for a
    finished run.  Buffered tracers simply drop their records.
    """
    from repro.obs import StreamingTracer

    now = float(getattr(harness.sim, "now", 0.0))
    print(f"interrupted at simulated t={now:g}s")
    if isinstance(tracer, StreamingTracer):
        tracer.meta["interrupted"] = True
        tracer.close(end=now)
        if out:
            print(f"flushed {tracer.spilled_records} trace records to {out}")
        if store:
            from repro.obs.runs import RunStore, make_summary

            doc = make_summary(tracer.summary(), result=None)
            registry = RunStore(runs_dir)
            run_id = registry.save(doc, trace_path=out)
            print(f"stored interrupted run {run_id} in {registry.root}")
    return 130


def _fold_trace_file(path: str):
    """Fold a JSONL trace file into a run-style summary (constant memory)."""
    from repro.obs import fold_records, iter_jsonl

    agg = fold_records(iter_jsonl(path))
    telemetry = agg.snapshot()
    meta = dict(agg.meta)
    telemetry["metrics"] = agg.registry.snapshot()
    return {
        "run_id": str(meta.get("config_fingerprint", path)),
        "meta": meta,
        "result": None,
        "telemetry": telemetry,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for spec in list_figures():
            print(f"{spec.figure_id}  (default scale {spec.default_scale:g})  {spec.title}")
        return 0

    if args.command == "fig":
        spec = get_figure(args.figure)
        scale = 1.0 if args.paper_scale else (args.scale or spec.default_scale)
        result = spec.run(scale=scale, seed=args.seed)
        print(result.to_text())
        if args.csv:
            from pathlib import Path

            Path(args.csv).write_text(result.to_csv())
            print(f"wrote CSV to {args.csv}")
        return 0

    if args.command == "run":
        config = SimulationConfig(
            arrival_rate=args.rate,
            horizon=args.horizon,
            seed=args.seed,
            m=args.cores,
            budget=args.budget,
            q_ge=args.q_ge,
        )
        scheduler = _SCHEDULERS[args.scheduler]()
        stream = args.stream or args.store
        tracer = _new_tracer_if(args.trace or bool(args.trace_out),
                                sanitize=args.sanitize, config=config,
                                scheduler=scheduler, stream=stream,
                                spill=args.trace_out)
        harness = SimulationHarness(config, scheduler, tracer=tracer)
        try:
            result = harness.run()
        except KeyboardInterrupt:
            return _interrupted(tracer, harness, out=args.trace_out,
                                store=args.store, runs_dir=args.runs_dir)
        print(result.row())
        _report_sanitizer(tracer)
        if stream:
            _emit_stream(tracer, result=result, out=args.trace_out,
                         store=args.store, runs_dir=args.runs_dir)
        elif tracer is not None and (args.trace or args.trace_out):
            _emit_trace(tracer, out=args.trace_out)
        return 0

    if args.command == "sweep":
        names = [n.strip().upper() for n in args.schedulers.split(",") if n.strip()]
        unknown = [n for n in names if n not in _SCHEDULERS]
        if unknown:
            print(f"unknown scheduler(s): {', '.join(unknown)}; "
                  f"available: {', '.join(sorted(_SCHEDULERS))}")
            return 2
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
        for rate in rates:
            config = SimulationConfig(
                arrival_rate=rate, horizon=args.horizon, seed=args.seed
            )
            for name in names:
                result = SimulationHarness(config, _SCHEDULERS[name]()).run()
                print(result.row())
        return 0

    if args.command == "scenario":
        from repro.workload.scenarios import SCENARIOS, scenario_config

        if args.name is None:
            for name in sorted(SCENARIOS):
                s = SCENARIOS[name]
                print(f"{name:<22} nominal λ={s.nominal_rate:g} r/s")
                print(f"    {s.description}")
            return 0
        config = scenario_config(
            _resolve_scenario(args.name),
            arrival_rate=args.rate, horizon=args.horizon, seed=args.seed,
        )
        scheduler = _SCHEDULERS[args.scheduler]()
        stream = args.stream or args.store
        tracer = _new_tracer_if(args.trace or bool(args.trace_out),
                                sanitize=args.sanitize, config=config,
                                scheduler=scheduler, stream=stream,
                                spill=args.trace_out)
        harness = SimulationHarness(config, scheduler, tracer=tracer)
        try:
            result = harness.run()
        except KeyboardInterrupt:
            return _interrupted(tracer, harness, out=args.trace_out,
                                store=args.store, runs_dir=args.runs_dir)
        print(result.row())
        _report_sanitizer(tracer)
        if stream:
            _emit_stream(tracer, result=result, out=args.trace_out,
                         store=args.store, runs_dir=args.runs_dir)
        elif tracer is not None and (args.trace or args.trace_out):
            _emit_trace(tracer, out=args.trace_out)
        return 0

    if args.command == "report":
        if args.run or args.trace:
            # HTML dashboard mode: a stored run or a raw JSONL trace.
            from repro.errors import ReproError
            from repro.obs import write_report

            if args.run and args.trace:
                print("report: give either --run or --trace, not both")
                return 2
            if args.run:
                from repro.obs.runs import RunStore

                try:
                    summary = RunStore(args.runs_dir).load(args.run)
                except ReproError as exc:
                    print(f"report: {exc}")
                    return 2
            else:
                summary = _fold_trace_file(args.trace)
            out = args.out or "report.html"
            nbytes = write_report(summary, out)
            print(f"wrote HTML report ({nbytes} bytes) to {out}")
            return 0
        from repro.experiments.paper_report import generate_report

        text = generate_report(scale=args.scale, seed=args.seed, figures=args.figures)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text)
            print(f"wrote report to {args.out}")
        else:
            print(text)
        return 0

    if args.command == "runs":
        from repro.errors import ReproError
        from repro.obs.runs import (
            RunStore,
            diff_runs,
            format_diff,
            format_run,
            format_runs_table,
        )

        registry = RunStore(args.runs_dir)
        try:
            if args.runs_command == "list":
                rows = registry.list()
                if args.format == "json":
                    import json

                    print(json.dumps(rows, indent=2, sort_keys=True))
                else:
                    print(format_runs_table(rows))
            elif args.runs_command == "show":
                print(format_run(registry.load(args.run_id)))
            elif args.runs_command == "diff":
                print(format_diff(diff_runs(registry.load(args.a),
                                            registry.load(args.b))))
            elif args.runs_command == "delete":
                run_id = registry.resolve(args.run_id)
                registry.delete(run_id)
                print(f"deleted run {run_id}")
            elif args.runs_command == "gc":
                deleted = registry.gc(args.keep, pin=args.pin)
                for run_id in deleted:
                    print(f"deleted run {run_id}")
                print(f"gc: kept {len(registry.ids())} run(s), "
                      f"deleted {len(deleted)}")
        except ReproError as exc:
            print(f"runs: {exc}")
            return 2
        return 0

    if args.command == "fleet":
        from repro.errors import ReproError
        from repro.obs.runs import FLEET_SCHEMA, RunStore, format_fleet

        if args.fleet_command == "run":
            from repro.experiments.bench import DEFAULT_SCALE
            from repro.experiments.fleet import (
                fleet_compliance,
                run_fleet,
                run_sequential,
            )
            from repro.experiments.registry import fleet_grid

            scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
            try:
                seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
                rates = ([float(r) for r in args.rates.split(",") if r.strip()]
                         if args.rates else None)
                tasks = fleet_grid(
                    scenarios, seeds, rates=rates,
                    scale=args.scale if args.scale is not None else DEFAULT_SCALE,
                )
            except (KeyError, ValueError) as exc:
                print(f"fleet: {exc.args[0] if exc.args else exc}")
                return 2
            store = not args.no_store
            try:
                if args.sequential or args.workers <= 1:
                    outcome = run_sequential(
                        tasks, runs_dir=args.runs_dir, store=store, progress=print
                    )
                else:
                    outcome = run_fleet(
                        tasks, workers=args.workers, runs_dir=args.runs_dir,
                        store=store, progress=print,
                    )
            except KeyboardInterrupt:
                print("fleet: interrupted")
                return 130
            except ReproError as exc:
                print(f"fleet: {exc}")
                return 2
            print(format_fleet(outcome.summary))
            if store:
                print(f"stored fleet {outcome.fleet_id} "
                      f"(+{len(outcome.run_ids)} run summaries) in "
                      f"{RunStore(args.runs_dir).root}")
            if args.report:
                from repro.obs import write_report

                nbytes = write_report(outcome.summary, args.report)
                print(f"wrote fleet dashboard ({nbytes} bytes) to {args.report}")
            if args.min_slo_compliance is not None:
                compliance = fleet_compliance(outcome.summary["rollup"])
                if compliance is None or compliance < args.min_slo_compliance:
                    shown = "n/a" if compliance is None else f"{compliance:.3f}"
                    print(f"fleet: SLO compliance {shown} below the "
                          f"{args.min_slo_compliance:g} gate")
                    return 1
                print(f"fleet: SLO compliance {compliance:.3f} >= "
                      f"{args.min_slo_compliance:g} gate")
            return outcome.exit_code

        registry = RunStore(args.runs_dir)
        try:
            fleet_id = args.run_id
            if fleet_id is None:
                fleet_id = next(
                    (row["run_id"] for row in registry.list()
                     if row.get("schema") == FLEET_SCHEMA),
                    None,
                )
                if fleet_id is None:
                    print(f"fleet: no stored fleet runs under {registry.root}")
                    return 2
            summary = registry.load(fleet_id)
        except ReproError as exc:
            print(f"fleet: {exc}")
            return 2
        if summary.get("schema") != FLEET_SCHEMA:
            print(f"fleet: {summary.get('run_id', fleet_id)} is not a fleet "
                  "rollup (see 'repro-cli runs show' for single runs)")
            return 2
        if args.fleet_command == "status":
            print(format_fleet(summary))
            return 0
        from repro.obs import write_report

        nbytes = write_report(summary, args.out)
        print(f"wrote fleet dashboard ({nbytes} bytes) to {args.out}")
        return 0

    if args.command == "chaos":
        from repro.experiments.registry import CHAOS_SCENARIOS

        if args.chaos_command == "list":
            for name in sorted(CHAOS_SCENARIOS):
                scenario = CHAOS_SCENARIOS[name]
                print(f"{name:<18} {scenario.description}")
            return 0
        if args.chaos_command == "report":
            import json

            from repro.obs import write_report

            try:
                summary = json.loads(open(args.path, encoding="utf-8").read())
            except (OSError, ValueError) as exc:
                print(f"chaos report: {exc}")
                return 2
            nbytes = write_report(summary, args.out)
            print(f"wrote chaos report ({nbytes} bytes) to {args.out}")
            return 0

        from repro.experiments.chaos import evaluate_gate, run_chaos_scenario

        try:
            summary = run_chaos_scenario(
                args.name, scale=args.scale, seed=args.seed
            )
        except KeyError as exc:
            print(f"chaos: {exc.args[0]}")
            return 2
        scenario_meta = summary["scenario"]
        degradation = summary["degradation"]
        print(f"scenario {scenario_meta['name']}: "
              f"{scenario_meta['description']}")
        for line in scenario_meta["disturbances"]:
            print(f"  - {line}")
        quality = degradation["quality"]
        energy = degradation["energy"]
        floor = degradation["floor"]
        post = degradation["post"]
        print(f"quality: disturbed {quality['disturbed']:.6f} vs twin "
              f"{quality['twin']:.6f} (delta {quality['delta']:+.6f})")
        print(f"energy:  disturbed {energy['disturbed']:.1f} J vs twin "
              f"{energy['twin']:.1f} J (overhead {energy['overhead_j']:+.1f} J)")
        print(f"floor:   {floor['disturbed_violation_s']:.3f} s below "
              f"Q_GE={degradation['q_floor']:g} "
              f"(twin {floor['twin_violation_s']:.3f} s, "
              f"degradation {floor['degradation_s']:+.3f} s)")
        for rec in degradation["recoveries"]:
            recovery = rec["recovery_s"]
            shown = "never" if recovery is None else f"{recovery:.3f} s"
            print(f"recovery: {rec['detail']} -> {shown}")
        if post["compliance"] is not None:
            print(f"post-recovery compliance: {post['compliance']:.3f} "
                  f"({post['compliant']}/{post['windows']} windows after "
                  f"t={post['after_s']:g}s)")
        if args.json:
            import json

            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote chaos summary to {args.json}")
        if args.report:
            from repro.obs import write_report

            nbytes = write_report(summary, args.report)
            print(f"wrote chaos report ({nbytes} bytes) to {args.report}")
        failures = evaluate_gate(
            degradation,
            max_recovery_s=args.max_recovery_s,
            min_post_compliance=args.min_post_compliance,
        )
        if failures:
            print(f"chaos gate FAILED ({len(failures)}):")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        if args.max_recovery_s is not None or args.min_post_compliance is not None:
            print("chaos gate passed")
        return 0

    if args.command == "replicate":
        from repro.experiments.replication import replicate

        config = SimulationConfig(
            arrival_rate=args.rate, horizon=args.horizon, seed=args.seed
        )
        summary = replicate(config, _SCHEDULERS[args.scheduler], n=args.n)
        print(summary.row())
        return 0

    if args.command == "bench":
        from repro.experiments import bench as bench_mod

        if args.bench_command == "compare":
            try:
                old = bench_mod.load_snapshot(args.old)
                new = bench_mod.load_snapshot(args.new)
            except (OSError, ValueError) as exc:
                print(f"bench compare: {exc}")
                return 2
            cmp_names = None
            if args.cmp_scenarios:
                cmp_names = [
                    n.strip() for n in args.cmp_scenarios.split(",") if n.strip()
                ]
            try:
                comparison = bench_mod.compare_snapshots(
                    old,
                    new,
                    threshold=args.threshold,
                    fidelity_tol=args.fidelity_tol,
                    check_fidelity=not args.no_fidelity,
                    scenarios=cmp_names,
                )
            except ValueError as exc:
                print(f"bench compare: {exc}")
                return 2
            print(comparison.render())
            return 0 if comparison.ok else 1
        if args.list_scenarios:
            for scenario in bench_mod.SUITE.values():
                print(f"{scenario.name:<14} {scenario.description}")
            return 0
        names = None
        if args.scenarios:
            names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        try:
            snapshot = bench_mod.collect_snapshot(
                args.label,
                scale=args.scale if args.scale is not None else bench_mod.DEFAULT_SCALE,
                seed=args.seed,
                repeats=args.repeats,
                scenarios=names,
                mem=args.mem,
                tracer=args.tracer,
                parallel=args.parallel,
                progress=print,
            )
        except KeyError as exc:
            print(f"bench: {exc.args[0]}")
            return 2
        except KeyboardInterrupt:
            print("bench: interrupted — no snapshot written")
            return 130
        out = args.out or f"BENCH_{args.label}.json"
        bench_mod.write_snapshot(snapshot, out)
        print(f"wrote bench snapshot ({len(snapshot['scenarios'])} scenarios) to {out}")
        return 0

    if args.command == "trace":
        from repro.workload.generator import StaticWorkload
        from repro.workload.traces import load_trace, save_trace

        if args.trace_command is None:
            # Telemetry mode: run one scenario with tracing on and
            # print/export the artifacts.
            from repro.workload.scenarios import scenario_config

            if args.scenario is not None:
                config = scenario_config(
                    _resolve_scenario(args.scenario),
                    arrival_rate=args.rate, horizon=args.horizon, seed=args.seed,
                )
            else:
                config = SimulationConfig(
                    arrival_rate=args.rate if args.rate is not None else 150.0,
                    horizon=args.horizon,
                    seed=args.seed,
                )
            scheduler = _SCHEDULERS[args.scheduler]()
            stream = args.stream or args.store
            if stream and (args.timeline_csv or args.spans_csv):
                print("--stream keeps no records to export as CSV; "
                      "drop --timeline-csv/--spans-csv or the stream flag")
                return 2
            tracer = _new_tracer_if(True, sanitize=args.sanitize,
                                    config=config, scheduler=scheduler,
                                    stream=stream, spill=args.out)
            harness = SimulationHarness(config, scheduler, tracer=tracer)
            try:
                result = harness.run()
            except KeyboardInterrupt:
                return _interrupted(tracer, harness, out=args.out,
                                    store=args.store, runs_dir=args.runs_dir)
            print(result.row())
            _report_sanitizer(tracer)
            if stream:
                _emit_stream(tracer, result=result, out=args.out,
                             store=args.store, runs_dir=args.runs_dir,
                             summary=not args.no_summary)
            else:
                _emit_trace(
                    tracer,
                    out=args.out,
                    timeline_csv=args.timeline_csv,
                    spans_csv=args.spans_csv,
                    summary=not args.no_summary,
                )
            return 0
        if args.trace_command == "show":
            from repro.obs.runs import format_run

            print(format_run(_fold_trace_file(args.path)))
            return 0
        if args.trace_command == "save":
            config = SimulationConfig(
                arrival_rate=args.rate, horizon=args.horizon, seed=args.seed
            )
            count = save_trace(config.workload().materialize(), args.path)
            print(f"wrote {count} jobs to {args.path}")
            return 0
        if args.trace_command == "replay":
            jobs = load_trace(args.path)
            horizon = max((j.deadline for j in jobs), default=1.0)
            config = SimulationConfig(horizon=horizon, q_ge=args.q_ge)
            harness = SimulationHarness(
                config, _SCHEDULERS[args.scheduler](), workload=StaticWorkload(jobs)
            )
            print(harness.run().row())
            return 0

    return 2  # pragma: no cover - argparse guards commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
