"""Deterministic disturbance injection (chaos engineering for the sim).

``repro.chaos`` perturbs a running simulation through first-class,
seeded, bit-reproducible events: core failures/recoveries, power-budget
dips, arrival bursts and demand mis-estimation.  The declarative spec
(:class:`DisturbanceSchedule`) lives on the simulation config and is
content-addressed into its fingerprint; the mechanics
(:class:`ChaosInjector`) ride the existing event heap.  See
``docs/robustness.md``.
"""

from repro.chaos.injector import (
    ChaosInjector,
    InjectorLike,
    NULL_INJECTOR,
    NullInjector,
)
from repro.chaos.schedule import (
    DISTURBANCE_KINDS,
    FAIL_POLICIES,
    Disturbance,
    DisturbanceSchedule,
    arrival_burst,
    budget_dip,
    core_fail,
    misestimate,
)

__all__ = [
    "DISTURBANCE_KINDS",
    "FAIL_POLICIES",
    "ChaosInjector",
    "Disturbance",
    "DisturbanceSchedule",
    "InjectorLike",
    "NULL_INJECTOR",
    "NullInjector",
    "arrival_burst",
    "budget_dip",
    "core_fail",
    "misestimate",
]
