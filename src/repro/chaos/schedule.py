"""Declarative disturbance schedules (the chaos spec).

A :class:`DisturbanceSchedule` is pure data: a validated tuple of
:class:`Disturbance` records describing *what* misbehaves and *when*.
It lives on :class:`repro.config.SimulationConfig` (the ``disturbances``
field) so it is content-addressed into the config fingerprint — two
runs that differ only in their schedule get different fingerprints and
are never conflated by the run store, bench snapshots or fleet rollups.

Four disturbance kinds are modeled (see ``docs/robustness.md``):

* ``core_fail`` — core ``core`` dies at ``time``; jobs on it are killed
  or re-queued per ``policy``; with a ``duration`` the core recovers.
* ``budget_dip`` — the dynamic power budget ``H`` is multiplied by
  ``factor`` (< 1) for ``duration`` seconds.  Overlapping dips compose
  multiplicatively.
* ``arrival_burst`` — the Poisson arrival rate is multiplied by
  ``factor`` (> 1) on ``[time, time+duration)`` via superposition of an
  independent Poisson stream (the base arrival draws are untouched).
* ``misestimate`` — jobs arriving in the window carry a true demand
  ``factor`` × the planned one (capped at the distribution's support
  maximum so quality stays in [0, 1]).

The schedule only *describes*; the mechanics live in
:mod:`repro.chaos.injector` (event-heap injection) and in the workload
generator (rate/demand modulation windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import Seconds

__all__ = [
    "DISTURBANCE_KINDS",
    "FAIL_POLICIES",
    "Disturbance",
    "DisturbanceSchedule",
    "arrival_burst",
    "budget_dip",
    "core_fail",
    "misestimate",
]

#: Every disturbance kind the injector understands.
DISTURBANCE_KINDS = ("core_fail", "budget_dip", "arrival_burst", "misestimate")

#: What happens to jobs on a failing core: re-enter the waiting queue
#: (to be re-pinned by the scheduler) or settle immediately with the
#: progress they have.
FAIL_POLICIES = ("requeue", "kill")

#: A window (start, duration, factor) — the generator-facing shape of
#: burst/misestimate disturbances.
Window = Tuple[float, float, float]


@dataclass(frozen=True)
class Disturbance:
    """One scheduled disturbance.

    Attributes
    ----------
    kind:
        One of :data:`DISTURBANCE_KINDS`.
    time:
        Simulation time (s) at which the disturbance takes effect.
    duration:
        Length of the disturbance window (s).  Required for
        ``budget_dip`` / ``arrival_burst`` / ``misestimate``; optional
        for ``core_fail`` (``None`` = the core never recovers).
    factor:
        Multiplier: budget factor in (0, 1) for ``budget_dip``, rate /
        demand factor > 1 for ``arrival_burst`` / ``misestimate``.
    core:
        Index of the failing core (``core_fail`` only).
    policy:
        Job disposition on core death (``core_fail`` only); one of
        :data:`FAIL_POLICIES`.
    """

    kind: str
    time: Seconds
    duration: Optional[Seconds] = None
    factor: Optional[float] = None
    core: Optional[int] = None
    policy: str = "requeue"

    def __post_init__(self) -> None:
        if self.kind not in DISTURBANCE_KINDS:
            raise ConfigurationError(
                f"unknown disturbance kind {self.kind!r}; "
                f"expected one of {DISTURBANCE_KINDS}"
            )
        if self.time < 0:
            raise ConfigurationError(
                f"disturbance time must be non-negative, got {self.time!r}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError(
                f"disturbance duration must be positive, got {self.duration!r}"
            )
        if self.kind == "core_fail":
            if self.core is None or self.core < 0:
                raise ConfigurationError(
                    f"core_fail needs a non-negative core index, got {self.core!r}"
                )
            if self.policy not in FAIL_POLICIES:
                raise ConfigurationError(
                    f"unknown core-fail policy {self.policy!r}; "
                    f"expected one of {FAIL_POLICIES}"
                )
        elif self.kind == "budget_dip":
            if self.duration is None:
                raise ConfigurationError("budget_dip needs a duration")
            if self.factor is None or not 0.0 < self.factor < 1.0:
                raise ConfigurationError(
                    f"budget_dip factor must be in (0, 1), got {self.factor!r}"
                )
        else:  # arrival_burst / misestimate
            if self.duration is None:
                raise ConfigurationError(f"{self.kind} needs a duration")
            if self.factor is None or self.factor <= 1.0:
                raise ConfigurationError(
                    f"{self.kind} factor must be > 1, got {self.factor!r}"
                )

    @property
    def end(self) -> Optional[Seconds]:
        """End of the disturbance window (``None`` when permanent)."""
        if self.duration is None:
            return None
        return self.time + self.duration

    def describe(self) -> str:
        """One-line human-readable form for reports and CLI listings."""
        if self.kind == "core_fail":
            until = f" for {self.duration:g}s" if self.duration is not None else ""
            return f"t={self.time:g}s core {self.core} fails ({self.policy}){until}"
        assert self.factor is not None and self.duration is not None
        return (
            f"t={self.time:g}s {self.kind} ×{self.factor:g} "
            f"for {self.duration:g}s"
        )


# -- convenience constructors ---------------------------------------------
def core_fail(
    time: Seconds,
    core: int,
    *,
    duration: Optional[Seconds] = None,
    policy: str = "requeue",
) -> Disturbance:
    """Core ``core`` fails at ``time`` (recovers after ``duration``)."""
    return Disturbance(
        kind="core_fail", time=time, core=core, duration=duration, policy=policy
    )


def budget_dip(time: Seconds, factor: float, duration: Seconds) -> Disturbance:
    """``H`` steps down to ``factor·H`` on ``[time, time+duration)``."""
    return Disturbance(kind="budget_dip", time=time, factor=factor, duration=duration)


def arrival_burst(time: Seconds, factor: float, duration: Seconds) -> Disturbance:
    """Arrival rate steps up to ``factor·λ`` on ``[time, time+duration)``."""
    return Disturbance(
        kind="arrival_burst", time=time, factor=factor, duration=duration
    )


def misestimate(time: Seconds, factor: float, duration: Seconds) -> Disturbance:
    """Jobs arriving in the window demand ``factor`` × the planned volume."""
    return Disturbance(kind="misestimate", time=time, factor=factor, duration=duration)


@dataclass(frozen=True)
class DisturbanceSchedule:
    """A validated, ordered collection of disturbances (pure data)."""

    disturbances: Tuple[Disturbance, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # A tuple is required (frozen + hash-stable); build from other
        # iterables with `DisturbanceSchedule.of(*items)`.
        if not isinstance(self.disturbances, tuple):
            raise ConfigurationError(
                "DisturbanceSchedule.disturbances must be a tuple; "
                "use DisturbanceSchedule.of(*disturbances)"
            )
        for d in self.disturbances:
            if not isinstance(d, Disturbance):
                raise ConfigurationError(
                    f"DisturbanceSchedule entries must be Disturbance, got {d!r}"
                )

    @classmethod
    def of(cls, *disturbances: Disturbance) -> "DisturbanceSchedule":
        """Build a schedule from positional disturbances."""
        return cls(disturbances=tuple(disturbances))

    def __len__(self) -> int:
        return len(self.disturbances)

    def __iter__(self) -> Iterable[Disturbance]:
        return iter(self.disturbances)

    @property
    def is_empty(self) -> bool:
        """True when armed but containing no disturbances."""
        return not self.disturbances

    def of_kind(self, kind: str) -> Tuple[Disturbance, ...]:
        """All disturbances of one kind, in declaration order."""
        return tuple(d for d in self.disturbances if d.kind == kind)

    def burst_windows(self) -> Tuple[Window, ...]:
        """(start, duration, factor) windows for the arrival generator."""
        return tuple(
            (float(d.time), float(d.duration or 0.0), float(d.factor or 1.0))
            for d in self.of_kind("arrival_burst")
        )

    def misestimate_windows(self) -> Tuple[Window, ...]:
        """(start, duration, factor) demand-inflation windows."""
        return tuple(
            (float(d.time), float(d.duration or 0.0), float(d.factor or 1.0))
            for d in self.of_kind("misestimate")
        )

    def last_effect_end(self) -> Optional[Seconds]:
        """Latest window end across all bounded disturbances.

        Used by the degradation analysis to locate the post-recovery
        tail; permanent core failures (no duration) contribute their
        onset time.
        """
        ends = [d.end if d.end is not None else d.time for d in self.disturbances]
        return max(ends) if ends else None

    def validate_for(self, *, m: int, horizon: Seconds) -> None:
        """Check the schedule against one machine/workload shape.

        Called from ``SimulationConfig.__post_init__`` so an impossible
        schedule (core index ≥ m, onset past the horizon) fails at
        config construction, not mid-run.
        """
        for d in self.disturbances:
            if d.kind == "core_fail" and d.core is not None and d.core >= m:
                raise ConfigurationError(
                    f"core_fail targets core {d.core} on an m={m} machine"
                )
            if d.time >= horizon:
                raise ConfigurationError(
                    f"disturbance at t={d.time!r} starts at/after the "
                    f"horizon ({horizon!r}s) and would never fire"
                )
