"""Deterministic disturbance injection via the simulation event heap.

:class:`ChaosInjector` turns a declarative
:class:`repro.chaos.schedule.DisturbanceSchedule` into first-class
simulator events: core failures/recoveries and budget dips/restores are
applied as state changes at their scheduled instants, while arrival
bursts and demand mis-estimation — which modulate the *workload
generator* before the run — get trace-only window markers so reports
and monitors can show the window.

Injection is bit-reproducible by construction: every event is placed on
the heap at install time (the heap's ``(time, priority, seq)`` order is
deterministic), the injector draws no randomness, and tracing is
observation-only.  Chaos events run at arrival priority
(``PRIORITY_HIGH``) so a disturbance at a quantum boundary is visible
to that quantum's scheduling round.

:data:`NULL_INJECTOR` is the zero-overhead twin used when a config has
no schedule, mirroring :data:`repro.obs.tracer.NULL_TRACER`: a run with
``disturbances=None`` takes the exact same code path as before the
chaos subsystem existed.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, List, Union

from repro.chaos.schedule import Disturbance, DisturbanceSchedule
from repro.sim.events import PRIORITY_HIGH

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.server.harness import SimulationHarness
    from repro.sim.engine import Simulator

__all__ = ["ChaosInjector", "InjectorLike", "NULL_INJECTOR", "NullInjector"]

#: Anything the harness accepts as its disturbance driver.
InjectorLike = Union["ChaosInjector", "NullInjector"]


class ChaosInjector:
    """Applies one schedule's disturbances to one running harness.

    Single-use, like the harness itself: construct with the bound
    harness, :meth:`install` onto its simulator before the run, and let
    the event loop do the rest.  Each applied disturbance is traced as
    a ``chaos`` event (kind-specific attributes documented in
    ``docs/robustness.md``); budget events carry the new ``budget_w``
    so the sanitizer's power bound follows the *current* ``H``.
    """

    armed = True

    def __init__(self, harness: "SimulationHarness", schedule: DisturbanceSchedule) -> None:
        self.harness = harness
        self.schedule = schedule
        self.base_budget = float(harness.machine.budget)
        #: Factors of the currently-active budget dips; the effective
        #: budget is their product times the base, so overlapping dips
        #: compose and restores revert exactly.
        self._dip_factors: List[float] = []
        #: Count of disturbance events actually applied (no-ops — e.g.
        #: failing an already-dead core — do not count).
        self.applied = 0

    # ------------------------------------------------------------------
    def install(self, sim: "Simulator") -> int:
        """Place every disturbance (and its paired restore) on the heap.

        Returns the number of events scheduled.  Events past the drain
        point simply never fire — a dip that outlives the run leaves the
        budget lowered until the end, which is the intended physics.
        """
        scheduled = 0
        for d in self.schedule.disturbances:
            if d.kind == "core_fail":
                sim.at(d.time, partial(self._core_fail, d), priority=PRIORITY_HIGH, name="chaos")
                scheduled += 1
                if d.duration is not None:
                    sim.at(
                        d.time + d.duration, partial(self._core_recover, d),
                        priority=PRIORITY_HIGH, name="chaos",
                    )
                    scheduled += 1
            elif d.kind == "budget_dip":
                assert d.duration is not None  # validated by Disturbance
                sim.at(d.time, partial(self._budget_dip, d), priority=PRIORITY_HIGH, name="chaos")
                sim.at(
                    d.time + d.duration, partial(self._budget_restore, d),
                    priority=PRIORITY_HIGH, name="chaos",
                )
                scheduled += 2
            else:
                # arrival_burst / misestimate act through the workload
                # generator; these events only mark the window in the
                # trace (they change no simulation state).
                assert d.duration is not None
                sim.at(
                    d.time, partial(self._window_marker, d, "start"),
                    priority=PRIORITY_HIGH, name="chaos",
                )
                sim.at(
                    d.time + d.duration, partial(self._window_marker, d, "end"),
                    priority=PRIORITY_HIGH, name="chaos",
                )
                scheduled += 2
        return scheduled

    # ------------------------------------------------------------------
    def _trace(self, kind: str, **attrs: Any) -> None:
        tracer = self.harness.tracer
        if tracer.enabled:
            tracer.scheduler_event(
                "chaos", self.harness.sim.now, disturbance=kind, **attrs
            )

    def _core_fail(self, d: Disturbance) -> None:
        harness = self.harness
        machine = harness.machine
        assert d.core is not None
        if machine.cores[d.core].failed:
            return  # overlapping schedules: failing a dead core is a no-op
        affected = machine.fail_core(d.core)
        live = [j for j in affected if not j.settled]
        self.applied += 1
        self._trace(
            "core_fail",
            core=d.core,
            policy=d.policy,
            jobs=len(live),
            alive=machine.alive_count,
        )
        now = harness.sim.now
        for job in live:
            if d.policy == "kill":
                harness.kill_job(job)
            elif job.deadline > now:
                harness.requeue_job(job)
            # else: its deadline event at this very instant settles it.
        harness.scheduler.on_core_failed(d.core)

    def _core_recover(self, d: Disturbance) -> None:
        machine = self.harness.machine
        assert d.core is not None
        if not machine.cores[d.core].failed:
            return
        machine.recover_core(d.core)
        self.applied += 1
        self._trace("core_recover", core=d.core, alive=machine.alive_count)
        self.harness.scheduler.on_core_recovered(d.core)

    def _budget_dip(self, d: Disturbance) -> None:
        assert d.factor is not None
        self._dip_factors.append(float(d.factor))
        new = self._apply_budget()
        self.applied += 1
        self._trace("budget_dip", factor=d.factor, budget_w=new)
        self.harness.scheduler.on_budget_change(new)

    def _budget_restore(self, d: Disturbance) -> None:
        assert d.factor is not None
        self._dip_factors.remove(float(d.factor))
        new = self._apply_budget()
        self.applied += 1
        self._trace("budget_restore", factor=d.factor, budget_w=new)
        self.harness.scheduler.on_budget_change(new)

    def _apply_budget(self) -> float:
        budget = self.base_budget
        for factor in self._dip_factors:
            budget *= factor
        self.harness.machine.set_budget(budget)
        return budget

    def _window_marker(self, d: Disturbance, edge: str) -> None:
        self.applied += 1
        self._trace(
            d.kind, edge=edge, factor=d.factor, start=d.time, duration=d.duration
        )


class NullInjector:
    """Disturbances disabled: installing is a no-op.

    Mirrors :class:`repro.obs.tracer.NullTracer` — a config without a
    schedule pays exactly one method call at run start and nothing else,
    which is what keeps undisturbed runs bit-identical to the
    pre-chaos simulator.
    """

    __slots__ = ()

    armed = False

    def install(self, sim: "Simulator") -> int:
        return 0


#: Shared process-wide null injector (stateless, safe to share).
NULL_INJECTOR = NullInjector()
