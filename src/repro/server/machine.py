"""The multicore server (paper §II-B).

:class:`MulticoreServer` bundles ``m`` :class:`repro.server.core.Core`
objects with the shared power model, the speed scale (continuous or
discrete DVFS) and the dynamic power budget ``H``.  It provides the
machine-level measurements the evaluation needs:

* total energy ``E = ∫ Σ_i P(s_i(t)) dt`` (exact, from the per-core
  piecewise-constant speed timelines);
* time-average speed and time-weighted speed variance across cores
  (Fig. 6);
* capacity figures used to place the critical-load and overload points.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.tracer import TracerLike
from repro.power.dvfs import ContinuousSpeedScale, SpeedScale
from repro.power.models import PowerModel
from repro.server.core import Core
from repro.sim.engine import Simulator
from repro.units import Gigahertz, Joules, PowerBudget, Seconds, Speed, Volume, Watts
from repro.workload.job import Job

__all__ = ["MulticoreServer"]


class MulticoreServer:
    """An ``m``-core DVFS server with a shared dynamic power budget.

    Parameters
    ----------
    sim:
        The driving simulator.
    m:
        Number of cores (paper default 16).
    budget:
        Total dynamic power budget ``H`` in watts (paper default 320).
    model:
        The speed→power model (paper default ``5·s²``).
    scale:
        Speed scale; continuous by default, or a
        :class:`repro.power.dvfs.DiscreteSpeedScale` for Fig. 12.
    """

    def __init__(
        self,
        sim: Simulator,
        m: int = 16,
        budget: PowerBudget = 320.0,
        model: Optional[PowerModel] = None,
        scale: Optional[SpeedScale] = None,
        on_idle: Optional[Callable[[int], None]] = None,
        on_settle: Optional[Callable[[Job], None]] = None,
        models: Optional[List[PowerModel]] = None,
        scales: Optional[List[SpeedScale]] = None,
        tracer: Optional[TracerLike] = None,
    ) -> None:
        if m <= 0:
            raise ConfigurationError(f"core count must be positive, got {m!r}")
        if budget <= 0:
            raise ConfigurationError(f"power budget must be positive, got {budget!r}")
        self.sim = sim
        self.m = int(m)
        self.budget = float(budget)
        self.model = model or PowerModel()
        self.scale = scale or ContinuousSpeedScale(self.model)
        # Per-core models/scales: identical to the reference pair unless
        # the machine is heterogeneous (config.core_power_scales).
        if models is not None and len(models) != self.m:
            raise ConfigurationError(f"need {self.m} per-core models, got {len(models)}")
        if scales is not None and len(scales) != self.m:
            raise ConfigurationError(f"need {self.m} per-core scales, got {len(scales)}")
        self.models: List[PowerModel] = list(models) if models else [self.model] * self.m
        self.scales: List[SpeedScale] = list(scales) if scales else [self.scale] * self.m
        self.cores: List[Core] = [
            Core(
                i,
                sim,
                units_per_ghz_second=self.models[i].units_per_ghz_second,
                on_idle=on_idle,
                on_settle=on_settle,
                tracer=tracer,
            )
            for i in range(self.m)
        ]

    # ------------------------------------------------------------------
    # Chaos: failures and budget changes (repro.chaos)
    # ------------------------------------------------------------------
    @property
    def alive_count(self) -> int:
        """Number of non-failed cores (== ``m`` in an undisturbed run)."""
        return sum(1 for core in self.cores if not core.failed)

    def fail_core(self, index: int) -> List[Job]:
        """Fail one core; returns the jobs that were planned on it."""
        return self.cores[index].fail()

    def recover_core(self, index: int) -> None:
        """Recover a previously failed core (idle, empty plan)."""
        self.cores[index].recover()

    def set_budget(self, budget: PowerBudget) -> None:
        """Change the dynamic power budget ``H`` mid-run (chaos dips).

        The new value takes effect at the next power distribution; the
        caller (the chaos injector) is responsible for triggering a
        reschedule so caps shrink at the same instant.
        """
        if budget <= 0:
            raise ConfigurationError(f"power budget must be positive, got {budget!r}")
        self.budget = float(budget)

    # ------------------------------------------------------------------
    # Capacity figures
    # ------------------------------------------------------------------
    @property
    def equal_share_speed(self) -> Gigahertz:
        """Mean core speed at an equal budget share (GHz).

        Paper defaults: 320 W / 16 cores = 20 W → 2 GHz.  On a
        heterogeneous machine this is the across-core mean.
        """
        share = self.budget / self.m
        return float(
            np.mean([scale.max_speed_at_power(share) for scale in self.scales])
        )

    @property
    def equal_share_capacity(self) -> Speed:
        """Total units/second with the budget split equally."""
        share = self.budget / self.m
        return float(
            sum(
                model.throughput(scale.max_speed_at_power(share))
                for model, scale in zip(self.models, self.scales)
            )
        )

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def energy(self, until: Optional[Seconds] = None) -> Joules:
        """Total dynamic energy (J) consumed up to ``until`` (default now)."""
        end = self.sim.now if until is None else until
        return sum(
            core.speed_timeline.integral(end, transform=model.power)
            for core, model in zip(self.cores, self.models)
        )

    def instantaneous_power(self) -> Watts:
        """Total dynamic power draw right now (W)."""
        return float(
            sum(model.power(core.speed) for core, model in zip(self.cores, self.models))
        )

    def mean_speed(self, until: Optional[Seconds] = None) -> Gigahertz:
        """Time-average of the across-core mean speed (GHz)."""
        end = self.sim.now if until is None else until
        return float(
            np.mean([core.speed_timeline.time_average(end) for core in self.cores])
        )

    def speed_variance(self, until: Optional[Seconds] = None) -> float:
        """Time-averaged across-core variance of core speeds.

        This is the Fig. 6b statistic: at each instant compute the
        variance of the m core speeds, then average over time.  By the
        law of total variance it equals
        E_t[ E_i[s²] ] − E_t[ (E_i[s])² ], evaluated exactly from the
        step timelines.
        """
        end = self.sim.now if until is None else until
        start = min(core.speed_timeline.start_time for core in self.cores)
        span = end - start
        if span <= 0:
            return 0.0
        # Merge all breakpoints; between consecutive breakpoints every
        # core speed is constant, so the instantaneous variance is too.
        # Vectorized: one searchsorted per core over the merged axis
        # (paper-scale runs have millions of breakpoints).
        merged = np.unique(
            np.concatenate(
                [
                    np.asarray(core.speed_timeline._times)
                    for core in self.cores
                ]
                + [np.array([start, end])]
            )
        )
        merged = merged[merged <= end]
        lefts = merged[:-1]
        widths = np.diff(merged)
        speeds = np.empty((self.m, lefts.size))
        for i, core in enumerate(self.cores):
            times = np.asarray(core.speed_timeline._times)
            values = np.asarray(core.speed_timeline._values)
            idx = np.searchsorted(times, lefts, side="right") - 1
            speeds[i] = values[np.clip(idx, 0, values.size - 1)]
        inst_var = np.var(speeds, axis=0)
        return float(np.sum(inst_var * widths)) / span

    def utilization(self, until: Optional[Seconds] = None) -> float:
        """Fraction of core-time spent executing (speed > 0)."""
        end = self.sim.now if until is None else until
        start = min(core.speed_timeline.start_time for core in self.cores)
        span = end - start
        if span <= 0:
            return 0.0
        busy = sum(
            core.speed_timeline.integral(end, transform=lambda v: (np.asarray(v) > 0).astype(float))
            for core in self.cores
        )
        return busy / (span * self.m)

    def total_completed_volume(self) -> Volume:
        """Processing units executed across all cores."""
        return sum(core.completed_volume for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MulticoreServer(m={self.m}, H={self.budget}W, {self.model!r})"
