"""Abstract scheduler interface.

Every policy in this library — GE and all baselines — implements
:class:`Scheduler`.  The :class:`repro.server.harness.SimulationHarness`
owns the mechanics every policy shares (waiting queue, deadline expiry,
settlement bookkeeping) and calls back into the scheduler at the three
kinds of moments the paper names (§III-E):

* :meth:`on_arrival` — a job was appended to the waiting queue
  (the *counter trigger* is implemented here by policies that batch);
* :meth:`on_core_idle` — a core ran out of planned work
  (*idle-core trigger*);
* :meth:`on_quantum` — the periodic *quantum trigger* (only wired when
  :attr:`quantum` is not ``None``).

Schedulers act exclusively by planning segments on
``self.harness.machine.cores`` — they never touch the clock directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.server.harness import SimulationHarness
    from repro.workload.job import Job

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Base class for all scheduling policies.

    Attributes
    ----------
    name:
        Short identifier used in results tables ("GE", "BE", "FCFS"...).
    quantum:
        Period of the quantum trigger in seconds, or ``None`` to
        disable it.  GE uses 0.5 s (paper §IV-B).
    """

    name: str = "?"
    quantum: Optional[float] = None

    def __init__(self) -> None:
        self.harness: Optional["SimulationHarness"] = None

    # ------------------------------------------------------------------
    def bind(self, harness: "SimulationHarness") -> None:
        """Attach the scheduler to a harness before the run starts.

        Subclasses that pre-compute state from the configuration should
        extend this (and call ``super().bind(harness)``).
        """
        self.harness = harness

    # -- trigger hooks -----------------------------------------------------
    @abstractmethod
    def on_arrival(self, job: "Job") -> None:
        """A job entered the waiting queue at the current instant."""

    @abstractmethod
    def on_core_idle(self, core_index: int) -> None:
        """Core ``core_index`` drained its plan and is now idle."""

    def on_quantum(self) -> None:
        """Periodic trigger; only called when :attr:`quantum` is set."""

    # -- disturbance hooks (repro.chaos) -----------------------------------
    # Default no-ops: a policy that ignores them keeps working in an
    # undisturbed run; under chaos the harness/injector has already
    # killed or re-queued the affected jobs, so reacting is optional
    # (GE re-plans; see docs/robustness.md for each hook's contract).
    def on_core_failed(self, core_index: int) -> None:
        """Core ``core_index`` failed; its jobs were killed/re-queued."""

    def on_core_recovered(self, core_index: int) -> None:
        """Core ``core_index`` recovered and is idle again."""

    def on_budget_change(self, budget: float) -> None:
        """The power budget ``H`` changed to ``budget`` watts."""

    # -- lifecycle ---------------------------------------------------------
    def on_run_end(self) -> None:
        """Called once after the simulation drains (optional hook)."""

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
