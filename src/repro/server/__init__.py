"""Multicore server substrate: cores, machine, and the simulation harness.

* :mod:`repro.server.core` — a single DVFS core executing planned
  *segments* (job, volume, speed) with exact speed/energy timelines.
* :mod:`repro.server.machine` — the m-core server with a shared dynamic
  power budget and machine-level energy/speed metrics.
* :mod:`repro.server.scheduler` — the abstract scheduler interface all
  policies (GE and baselines) implement.
* :mod:`repro.server.harness` — glue binding simulator + machine +
  workload + scheduler + metrics into one runnable experiment.
"""

from repro.server.core import Core, Segment
from repro.server.harness import SimulationHarness
from repro.server.machine import MulticoreServer
from repro.server.scheduler import Scheduler

__all__ = ["Core", "MulticoreServer", "Scheduler", "Segment", "SimulationHarness"]
