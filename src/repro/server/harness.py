"""The simulation harness: one runnable experiment.

:class:`SimulationHarness` wires together the simulator, the multicore
server, the workload, the quality monitor, the metrics collector and a
:class:`repro.server.scheduler.Scheduler`.  It owns the mechanics every
policy shares, so schedulers stay pure policy code:

* the **waiting queue** of arrived-but-unassigned jobs;
* **deadline events** — at each job's deadline, unfinished work is
  aborted, partial progress credited, and the job settled;
* **settlement bookkeeping** — every settled job updates the quality
  monitor and the metrics collector exactly once;
* the **quantum timer** (if the scheduler requests one).

Event priorities at one instant: arrivals first (a job arriving exactly
at a quantum boundary is visible to that quantum), then completions
(a job finishing exactly at its deadline counts as finished), then
deadline expiries and the quantum trigger.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

from repro.chaos.injector import ChaosInjector, InjectorLike, NULL_INJECTOR
from repro.config import SimulationConfig
from repro.errors import SchedulingError
from repro.metrics.collector import MetricsCollector, RunResult
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.quality.monitor import QualityMonitor
from repro.server.machine import MulticoreServer
from repro.server.scheduler import Scheduler
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_LOW, PRIORITY_NORMAL
from repro.workload.generator import Workload
from repro.workload.job import Job, JobOutcome

__all__ = ["SimulationHarness"]


class SimulationHarness:
    """Bind a scheduler to the paper's simulation environment and run it.

    Parameters
    ----------
    config:
        The full simulation configuration (workload, machine, quality).
    scheduler:
        The policy under test.  The harness calls :meth:`Scheduler.bind`
        immediately, so the scheduler may inspect the machine/config.
    workload:
        Optional workload override (must expose ``install(sim, sink)``);
        defaults to ``config.workload()``.  Passing the same
        materialized workload to several harnesses compares policies on
        identical arrivals.
    monitor:
        Optional quality-monitor override (e.g. the class-aware monitor
        of :mod:`repro.mixed`); defaults to a cumulative
        :class:`QualityMonitor` on the config's quality function.
    tracer:
        Optional :class:`repro.obs.Tracer` recording job spans, core
        timelines and scheduler events for this run.  Defaults to the
        zero-overhead null tracer (tracing off).  Tracing only observes
        state — it never schedules events — so a traced run's
        :class:`RunResult` is bit-identical to an untraced one.
    """

    def __init__(
        self,
        config: SimulationConfig,
        scheduler: Scheduler,
        workload: Optional[Workload] = None,
        monitor: Optional[QualityMonitor] = None,
        tracer: Optional[TracerLike] = None,
    ) -> None:
        self.config = config
        self.scheduler = scheduler
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.sim = Simulator()
        self.model = config.power_model()
        self.scale = config.speed_scale(self.model)
        core_models = list(config.core_models())
        core_scales = [config.speed_scale(m) for m in core_models]
        self.machine = MulticoreServer(
            self.sim,
            m=config.m,
            budget=config.budget,
            model=self.model,
            scale=self.scale,
            models=core_models,
            scales=core_scales,
            on_idle=self._core_became_idle,
            on_settle=self._job_settled_by_core,
            tracer=self.tracer,
        )
        self.quality_function = config.quality_function()
        self.monitor = monitor if monitor is not None else QualityMonitor(self.quality_function)
        self.metrics = MetricsCollector()
        self.queue: List[Job] = []
        self._queued_ids: set[int] = set()
        self._workload = workload if workload is not None else config.workload()
        self._total_jobs = 0
        self._recorded: set[int] = set()
        self._drain_until = 0.0
        self._running = False
        # Disturbance injection (repro.chaos): armed only when the
        # config carries a schedule; otherwise the shared null injector
        # keeps the run on the exact pre-chaos code path.
        self.injector: InjectorLike = (
            NULL_INJECTOR
            if config.disturbances is None
            else ChaosInjector(self, config.disturbances)
        )
        scheduler.bind(self)

    @property
    def workload(self) -> Workload:
        """The workload driving this run (clairvoyant schedulers may
        materialize it to see the future; online ones must not)."""
        return self._workload

    # ------------------------------------------------------------------
    # Queue primitives for schedulers
    # ------------------------------------------------------------------
    def take_from_queue(self, job: Job) -> None:
        """Remove one job from the waiting queue (scheduler assigned it)."""
        if job.jid not in self._queued_ids:
            raise SchedulingError(f"job {job.jid} is not in the waiting queue")
        self._queued_ids.discard(job.jid)
        self.queue.remove(job)

    def take_all_queued(self) -> List[Job]:
        """Drain the whole waiting queue (batch assignment)."""
        jobs, self.queue = self.queue, []
        self._queued_ids.clear()
        return jobs

    def settle_job(self, job: Job, outcome: JobOutcome) -> None:
        """Settle a job on the scheduler's behalf and record it.

        Used for deliberate discards: LF-cut targets already reached
        and Quality-OPT second-cut victims.
        """
        job.settle(outcome)
        self._record(job)

    def requeue_job(self, job: Job) -> None:
        """Return an unsettled job to the waiting queue (chaos requeue).

        The core pin is released so the next scheduling round may
        re-assign the job anywhere; progress already credited is kept
        (the work was done before the disturbance).
        """
        job.core = None
        self.queue.append(job)
        self._queued_ids.add(job.jid)

    def kill_job(self, job: Job) -> None:
        """Settle a job immediately with its progress-implied outcome.

        The chaos ``kill`` core-failure policy: whatever volume the dead
        core had credited decides COMPLETED/CUT/DROPPED exactly like a
        deadline expiry would.
        """
        job.settle_auto()
        self._record(job)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _job_arrived(self, job: Job) -> None:
        if self.tracer.enabled:
            self.tracer.job_arrived(job, self.sim.now)
        self.queue.append(job)
        self._queued_ids.add(job.jid)
        # Deadline expiry fires after completions at the same instant.
        # partial() beats a per-job lambda closure on this per-arrival
        # hot path (one fewer frame to build and to call through).
        self.sim.at(
            job.deadline, partial(self._deadline_expired, job),
            priority=PRIORITY_LOW, name="deadline",
        )
        self.scheduler.on_arrival(job)

    def _deadline_expired(self, job: Job) -> None:
        if job.settled:
            return
        idle_core = None
        if job.jid in self._queued_ids:
            self.take_from_queue(job)
        elif job.core is not None:
            core = self.machine.cores[job.core]
            core.abort_job(job)
            if not core.has_work:
                # The abort drained the core; surface the idle-core
                # trigger (Core only notifies on natural completion).
                idle_core = job.core
        job.settle_auto()
        self._record(job)
        if idle_core is not None:
            self.scheduler.on_core_idle(idle_core)

    def _job_settled_by_core(self, job: Job) -> None:
        self._record(job)

    def _record(self, job: Job) -> None:
        if job.jid in self._recorded:  # pragma: no cover - double-settle guard
            raise SchedulingError(f"job {job.jid} recorded twice")
        self._recorded.add(job.jid)
        self.monitor.record_job(job, time=self.sim.now)
        self.metrics.record_settle(job)
        if self.tracer.enabled:
            self.tracer.job_settled(job, self.sim.now)

    def _core_became_idle(self, core_index: int) -> None:
        self.scheduler.on_core_idle(core_index)

    def _quantum_tick(self) -> None:
        self.scheduler.on_quantum()
        if self.tracer.enabled:
            # Sample after the scheduler acted, so the speeds reflect
            # the plan installed at this quantum boundary.
            self.tracer.sample_cores(self.machine, self.sim.now)
        if self.sim.now + self.scheduler.quantum <= self._drain_until:
            self.sim.schedule(
                self.scheduler.quantum, self._quantum_tick,
                priority=PRIORITY_LOW, name="quantum",
            )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the full simulation and return its summary.

        Arrivals stop at ``config.horizon``; the run then drains until
        every job has settled (at most one deadline window later).
        Energy and speed statistics are integrated over the drained
        span, matching the paper's ``E = ∫_{s_1}^{d_n} P(t) dt``.
        """
        if self._running:
            raise SchedulingError("harness cannot be run twice")
        self._running = True
        cfg = self.config
        if self.tracer.enabled:
            self.tracer.run_started(
                self.sim.now,
                scheduler=self.scheduler.name,
                arrival_rate=cfg.arrival_rate,
                horizon=cfg.horizon,
                seed=cfg.seed,
                cores=cfg.m,
                budget=cfg.budget,
                q_ge=cfg.q_ge,
                quantum=self.scheduler.quantum,
                config_fingerprint=cfg.fingerprint(),
                **(
                    {"disturbances": len(cfg.disturbances)}
                    if cfg.disturbances is not None
                    else {}
                ),
            )
            self.tracer.sample_cores(self.machine, self.sim.now)
        # Drain until the last deadline so every job settles, even when
        # a custom workload's deadlines exceed horizon + window_high.
        all_jobs = self._workload.materialize()
        last_deadline = max((j.deadline for j in all_jobs), default=cfg.horizon)
        self._drain_until = max(cfg.horizon, last_deadline)
        self._total_jobs = self._workload.install(self.sim, self._job_arrived)
        self.injector.install(self.sim)
        if self.scheduler.quantum is not None:
            self.sim.schedule(
                self.scheduler.quantum, self._quantum_tick,
                priority=PRIORITY_LOW, name="quantum",
            )
        # The phase covers the whole event loop (dispatch + scheduler
        # work, which nests its own prof.* phases inside); divide by
        # ``sim.events_processed`` for the events/sec rate.
        with self.tracer.profiler.phase("sim.run"):
            self.sim.run(until=self._drain_until)
        self.scheduler.on_run_end()
        if self.tracer.enabled:
            self.tracer.metrics.gauge("sim.events_processed").set(
                self.sim.events_processed
            )
            self.tracer.run_finished(
                self.machine, self.sim.now, events=self.sim.events_processed
            )
        if self.metrics.jobs != self._total_jobs:  # pragma: no cover - invariant
            raise SchedulingError(
                f"settled {self.metrics.jobs} of {self._total_jobs} jobs — "
                "some jobs were lost by the scheduler"
            )
        return self._result()

    def _result(self) -> RunResult:
        end = self.sim.now
        aes_fraction = getattr(self.scheduler, "aes_fraction", None)
        if callable(aes_fraction):
            aes_fraction = aes_fraction()
        return RunResult(
            scheduler=self.scheduler.name,
            arrival_rate=self.config.arrival_rate,
            quality=self.monitor.quality,
            energy=self.machine.energy(end),
            static_energy=self.config.static_power_per_core * self.config.m * end,
            jobs=self.metrics.jobs,
            outcomes=self.metrics.outcomes,
            aes_fraction=aes_fraction,
            mean_speed=self.machine.mean_speed(end),
            speed_variance=self.machine.speed_variance(end),
            utilization=self.machine.utilization(end),
            completed_volume=self.machine.total_completed_volume(),
            duration=end,
        )
