"""A single DVFS core executing planned segments.

The schedulers in this library express per-core work as an ordered list
of :class:`Segment` objects — "process ``volume`` units of ``job`` at
``speed`` GHz".  The :class:`Core` executes segments back-to-back,
records its speed as a piecewise-constant timeline (for exact energy
integration and Fig. 6's speed statistics), and supports the two
asynchronous edits online scheduling needs:

* :meth:`set_plan` — replace all queued work (re-planning at a trigger);
  the in-flight segment is charged for the volume it has processed.
* :meth:`abort_job` — remove one job mid-plan (deadline expiry).

A segment marked ``final`` settles its job on completion: ``COMPLETED``
if the full demand was processed, else ``CUT`` (the deliberate AES
outcome).  Non-final segments leave the job live (used when a plan
intentionally processes a prefix now and decides the tail later).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import SchedulingError
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_LOW, Event
from repro.sim.timeline import StepTimeline
from repro.units import Gigahertz, Seconds, UnitsPerGhzSecond, Volume
from repro.workload.job import Job, JobOutcome

__all__ = ["Core", "Segment"]

#: Volumes below this are considered already done (float-noise guard).
_VOLUME_EPS = 1e-9


@dataclass
class Segment:
    """An execution order: run ``job`` for ``volume`` units at ``speed``.

    Attributes
    ----------
    job:
        The job to advance.
    volume:
        Processing units to execute in this segment (> 0).
    speed:
        Core speed in GHz while the segment runs (> 0).
    final:
        Whether the job should be settled when the segment completes.
    """

    job: Job
    volume: Volume
    speed: Gigahertz
    final: bool = True

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise SchedulingError(
                f"segment for job {self.job.jid} has non-positive volume {self.volume!r}"
            )
        if self.speed <= 0:
            raise SchedulingError(
                f"segment for job {self.job.jid} has non-positive speed {self.speed!r}"
            )

    def duration(self, units_per_ghz_second: UnitsPerGhzSecond) -> Seconds:
        """Wall-clock length of the segment."""
        return self.volume / (self.speed * units_per_ghz_second)


class Core:
    """One core of the multicore server.

    Parameters
    ----------
    index:
        Core id within the machine.
    sim:
        The simulator driving completion events.
    units_per_ghz_second:
        Throughput of this core at 1 GHz (paper: 1000 units/s).
    on_idle:
        Callback invoked (with the core index) whenever the core runs
        out of planned work — this is the paper's "idle-core" trigger.
    on_settle:
        Callback invoked with each job the core settles (completion or
        cut), so the harness can record quality.
    tracer:
        Observability sink (``repro.obs``); every segment start/stop is
        recorded as an ``exec`` span when tracing is enabled.  Defaults
        to the zero-overhead null tracer.
    """

    def __init__(
        self,
        index: int,
        sim: Simulator,
        units_per_ghz_second: UnitsPerGhzSecond = 1000.0,
        on_idle: Optional[Callable[[int], None]] = None,
        on_settle: Optional[Callable[[Job], None]] = None,
        tracer: Optional[TracerLike] = None,
    ) -> None:
        self.index = index
        self.sim = sim
        self.units_per_ghz_second = float(units_per_ghz_second)
        self.on_idle = on_idle
        self.on_settle = on_settle
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.speed_timeline = StepTimeline(start_time=sim.now, initial_value=0.0)
        #: Chaos state: a failed core executes nothing and rejects plans
        #: until :meth:`recover` (see repro.chaos).
        self.failed = False
        self._pending: List[Segment] = []
        self._current: Optional[Segment] = None
        self._current_started: Seconds = 0.0
        self._completion: Optional[Event] = None
        self._completed_volume: Volume = 0.0
        self._exec_span = None

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a segment is currently executing."""
        return self._current is not None

    @property
    def has_work(self) -> bool:
        """Whether any segment is executing or queued."""
        return self._current is not None or bool(self._pending)

    @property
    def current_job(self) -> Optional[Job]:
        """The job executing right now, if any."""
        return self._current.job if self._current else None

    @property
    def speed(self) -> Gigahertz:
        """Current speed in GHz (0 when idle)."""
        return self._current.speed if self._current else 0.0

    @property
    def completed_volume(self) -> Volume:
        """Total processing units this core has executed."""
        return self._completed_volume

    def pending_jobs(self) -> List[Job]:
        """Jobs with planned-but-unstarted segments (deduplicated, in order)."""
        seen: dict[int, Job] = {}
        for seg in self._pending:
            seen.setdefault(seg.job.jid, seg.job)
        return list(seen.values())

    def planned_volume(self, job: Job) -> Volume:
        """Total volume still planned (queued + in-flight remainder) for ``job``."""
        total = sum(s.volume for s in self._pending if s.job.jid == job.jid)
        if self._current is not None and self._current.job.jid == job.jid:
            total += self._current.volume - self._progress_so_far()
        return total

    # ------------------------------------------------------------------
    # Plan management
    # ------------------------------------------------------------------
    def set_plan(self, segments: List[Segment], *, notify_idle_if_empty: bool = False) -> None:
        """Replace every queued segment with ``segments``.

        Any in-flight segment is interrupted *now*: the volume executed
        so far is credited to its job, and the job's continuation (if
        any) must be included in the new plan by the scheduler — this is
        exactly the paper's "consider a running job as a new one upon a
        new schedule".
        """
        if self.failed and segments:
            raise SchedulingError(
                f"core {self.index} is failed and cannot accept a plan"
            )
        self._interrupt_current()
        self._pending = list(segments)
        self._start_next(notify_idle_if_empty=notify_idle_if_empty)

    def checkpoint(self) -> None:
        """Pause the core, crediting in-flight progress to its job.

        Used at the start of a batch replan so that "processed volume"
        is up to date while the scheduler recomputes targets; the core
        stays paused (pending segments intact) until :meth:`set_plan`.
        """
        self._interrupt_current()

    def enqueue(self, segment: Segment) -> None:
        """Append one segment to the plan (used by one-job-at-a-time baselines)."""
        if self.failed:
            raise SchedulingError(
                f"core {self.index} is failed and cannot accept work"
            )
        self._pending.append(segment)
        if not self.busy:
            self._start_next(notify_idle_if_empty=False)

    # ------------------------------------------------------------------
    # Chaos: failure and recovery (repro.chaos)
    # ------------------------------------------------------------------
    def fail(self) -> List[Job]:
        """Fail the core: stop execution, drop the plan, reject new work.

        The in-flight segment's progress is credited to its job (the
        work was done before the fault), then every planned job is
        returned — deduplicated, running job first — so the caller can
        kill or re-queue them per the disturbance policy.  The core
        does *not* fire its idle callback: a dead core is not a
        scheduling opportunity.
        """
        if self.failed:
            return []
        affected: List[Job] = []
        running = self._current.job if self._current is not None else None
        self._interrupt_current()
        if running is not None:
            affected.append(running)
        seen = {job.jid for job in affected}
        for job in self.pending_jobs():
            if job.jid not in seen:
                affected.append(job)
        self._pending = []
        self.failed = True
        self.speed_timeline.set_value(self.sim.now, 0.0)
        return affected

    def recover(self) -> None:
        """Bring a failed core back (idle, empty plan)."""
        self.failed = False

    def abort_job(self, job: Job) -> Volume:
        """Remove ``job`` from the plan; returns the volume it had executed.

        Called on deadline expiry.  Progress of an in-flight segment is
        credited before removal.  The job is *not* settled here — the
        harness owns settlement.
        """
        credited = 0.0
        if self._current is not None and self._current.job.jid == job.jid:
            credited = self._interrupt_current()
        self._pending = [s for s in self._pending if s.job.jid != job.jid]
        if not self.busy:
            self._start_next(notify_idle_if_empty=False)
        return credited

    # ------------------------------------------------------------------
    # Internal execution machinery
    # ------------------------------------------------------------------
    def _progress_so_far(self) -> Volume:
        """Units processed by the in-flight segment up to now."""
        assert self._current is not None
        elapsed = self.sim.now - self._current_started
        return min(
            self._current.volume,
            elapsed * self._current.speed * self.units_per_ghz_second,
        )

    def _interrupt_current(self) -> Volume:
        """Stop the in-flight segment, crediting its progress; return it."""
        if self._current is None:
            return 0.0
        done = self._progress_so_far()
        if done > _VOLUME_EPS:
            self._current.job.add_progress(done)
            self._completed_volume += done
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self._current = None
        if self._exec_span is not None:
            self.tracer.exec_end(self._exec_span, self.sim.now, done)
            self._exec_span = None
        self.speed_timeline.set_value(self.sim.now, 0.0)
        return done

    def _start_next(self, *, notify_idle_if_empty: bool) -> None:
        while self._pending:
            seg = self._pending.pop(0)
            if seg.job.settled:
                continue  # job expired/settled while waiting in the plan
            remaining_window = seg.job.deadline - self.sim.now
            if remaining_window <= 0:
                continue  # cannot run past the deadline; expiry event settles it
            self._current = seg
            self._current_started = self.sim.now
            if self.tracer.enabled:
                self._exec_span = self.tracer.exec_start(
                    seg.job, self.index, seg.speed, seg.volume, self.sim.now
                )
            self.speed_timeline.set_value(self.sim.now, seg.speed)
            duration = seg.duration(self.units_per_ghz_second)
            # Completion events run at low priority so that deadline
            # expiries and arrivals at the same instant are seen first.
            self._completion = self.sim.schedule(
                duration, self._complete, priority=PRIORITY_LOW, name=f"core{self.index}-done"
            )
            return
        # Out of work.
        self.speed_timeline.set_value(self.sim.now, 0.0)
        if notify_idle_if_empty and self.on_idle is not None:
            self.on_idle(self.index)

    def _complete(self) -> None:
        seg = self._current
        assert seg is not None, "completion fired with no in-flight segment"
        self._completion = None
        self._current = None
        if self._exec_span is not None:
            self.tracer.exec_end(self._exec_span, self.sim.now, seg.volume)
            self._exec_span = None
        seg.job.add_progress(seg.volume)
        self._completed_volume += seg.volume
        if seg.final and not seg.job.settled:
            outcome = (
                JobOutcome.COMPLETED if seg.job.remaining <= _VOLUME_EPS else JobOutcome.CUT
            )
            seg.job.settle(outcome)
            if self.on_settle is not None:
                self.on_settle(seg.job)
        self._start_next(notify_idle_if_empty=True)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"running {self._current.job.jid}@{self._current.speed:.2f}GHz" if self._current else "idle"
        return f"Core({self.index}, {state}, queued={len(self._pending)})"
