"""Simulation configuration (paper §IV-B defaults).

:class:`SimulationConfig` is the single source of truth for every knob
the evaluation sweeps.  The defaults reproduce the paper's setup:

* web-search server with m=16 cores, dynamic power budget H=320 W;
* power model ``P = 5·s²`` (so the equal-share speed is 2 GHz and one
  core at 1 GHz processes 1000 units/s);
* Poisson arrivals, bounded-Pareto demands (α=3, 130..1000, mean 192);
* deadline = arrival + 150 ms (Fig. 4 uses a 150–500 ms window);
* good-enough quality Q_GE = 0.9, quality concavity c = 0.003;
* quantum trigger 500 ms, counter trigger 8 requests, 10-min horizon;
* critical load at 154 requests/s at these defaults.

On the critical load: the paper states 154 r/s "consumes 77.8 % of the
server's total processing capacity".  Relative to the equal-share
capacity (16 cores × 2000 units/s = 32 000 units/s ≈ 166.7 r/s of mean
demand), 154 r/s is a fraction 0.924; we store that fraction so the
threshold scales when m, H or the demand distribution change.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.chaos.schedule import DisturbanceSchedule
from repro.errors import ConfigurationError
from repro.power.dvfs import ContinuousSpeedScale, DiscreteSpeedScale, SpeedScale
from repro.power.models import PowerModel
from repro.quality.functions import ExponentialQuality, QualityFunction
from repro.sim.rng import RandomStreams
from repro.units import (
    Dimensionless,
    Gigahertz,
    PerSecond,
    PowerBudget,
    QualityFrac,
    Seconds,
    Speed,
    UnitsPerGhzSecond,
    Volume,
    Watts,
)
from repro.workload.distributions import BoundedPareto, UniformDeadlineWindow
from repro.workload.generator import PoissonWorkloadGenerator

__all__ = ["SimulationConfig", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulation run.  Frozen: derive variants via
    :meth:`with_overrides`."""

    # Workload ---------------------------------------------------------
    arrival_rate: PerSecond = 150.0  # λ, requests/second
    horizon: Seconds = 600.0  # seconds of arrivals (paper: 10 minutes)
    demand_alpha: float = 3.0
    demand_min: Volume = 130.0
    demand_max: Volume = 1000.0
    window_low: Seconds = 0.150  # deadline window (s)
    window_high: Seconds = 0.150

    # Machine ------------------------------------------------------------
    m: int = 16
    budget: PowerBudget = 320.0  # H, watts
    power_a: float = 5.0
    power_beta: float = 2.0
    units_per_ghz_second: UnitsPerGhzSecond = 1000.0
    discrete_levels: Optional[Tuple[float, ...]] = None  # None = continuous DVFS
    top_speed: Optional[Gigahertz] = None  # per-core speed cap (BE-S policy)

    # Quality --------------------------------------------------------------
    quality_c: float = 0.003
    quality_shape: str = "exponential"  # or "log" / "power" / "linear"
    q_ge: QualityFrac = 0.9

    # Extension: static power (the paper excludes it, §IV-B).  When
    # non-zero, every core draws this many watts for the whole run and
    # RunResult.static_energy/total_energy report the consequence —
    # used by the static-power ablation of the Fig. 11 caveat.
    static_power_per_core: Watts = 0.0

    # Extension: heterogeneous cores (the paper's many-core future-work
    # direction).  When set, entry i multiplies ``power_a`` for core i
    # (length must equal ``m``); e.g. 8×0.6 + 8×1.0 models a
    # big.LITTLE-style mix of efficient and performance cores.  None =
    # the paper's homogeneous machine.
    core_power_scales: Optional[Tuple[float, ...]] = None

    # GE scheduler ----------------------------------------------------------
    quantum: Seconds = 0.5  # seconds
    counter_threshold: int = 8  # queued requests
    critical_load_fraction: Dimensionless = 0.924  # × equal-share capacity (≈154 r/s)

    # Robustness: deterministic disturbance injection (repro.chaos).
    # None (the default) means an undisturbed run on the exact pre-chaos
    # code path; a schedule perturbs the run via seeded event-heap
    # injection and is content-addressed into the fingerprint.
    disturbances: Optional[DisturbanceSchedule] = None

    # Reproducibility ---------------------------------------------------------
    seed: int = 1

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(f"arrival_rate must be positive: {self.arrival_rate!r}")
        if not 0.0 < self.q_ge <= 1.0:
            raise ConfigurationError(f"q_ge must be in (0, 1]: {self.q_ge!r}")
        if self.quantum <= 0:
            raise ConfigurationError(f"quantum must be positive: {self.quantum!r}")
        if self.counter_threshold < 1:
            raise ConfigurationError("counter_threshold must be >= 1")
        if not 0.0 < self.critical_load_fraction:
            raise ConfigurationError("critical_load_fraction must be positive")
        if self.static_power_per_core < 0:
            raise ConfigurationError("static_power_per_core must be non-negative")
        if self.quality_shape not in ("exponential", "log", "power", "linear"):
            raise ConfigurationError(f"unknown quality_shape {self.quality_shape!r}")
        if self.core_power_scales is not None:
            if len(self.core_power_scales) != self.m:
                raise ConfigurationError(
                    f"core_power_scales has {len(self.core_power_scales)} entries "
                    f"for m={self.m} cores"
                )
            if any(s <= 0 for s in self.core_power_scales):
                raise ConfigurationError("core_power_scales entries must be positive")
        if self.disturbances is not None:
            self.disturbances.validate_for(m=self.m, horizon=self.horizon)

    # -- factories --------------------------------------------------------
    def with_overrides(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Short stable digest of every field of this configuration.

        Two configs share a fingerprint iff all their fields are equal,
        so an artifact stamped with the fingerprint (a trace header, a
        bench snapshot) identifies the exact run setup without embedding
        the whole config.  The digest is the first 12 hex chars of the
        SHA-256 of the canonical (sorted-key, repr-exact) JSON of the
        dataclass fields.

        A ``disturbances`` schedule is part of the payload — two runs
        differing only in their chaos schedule must never be conflated
        by the run store or bench/fleet rollups — but the key is dropped
        entirely when no schedule is set, so every pre-chaos fingerprint
        is preserved verbatim.
        """
        import hashlib
        import json
        from dataclasses import asdict

        fields = asdict(self)
        if fields.get("disturbances") is None:
            del fields["disturbances"]
        payload = json.dumps(fields, sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def power_model(self) -> PowerModel:
        """The speed→power model of this configuration."""
        return PowerModel(
            a=self.power_a,
            beta=self.power_beta,
            units_per_ghz_second=self.units_per_ghz_second,
        )

    def core_models(self) -> Tuple[PowerModel, ...]:
        """Per-core power models (all identical unless heterogeneous)."""
        base = self.power_model()
        if self.core_power_scales is None:
            return tuple(base for _ in range(self.m))
        return tuple(
            PowerModel(
                a=self.power_a * s,
                beta=self.power_beta,
                units_per_ghz_second=self.units_per_ghz_second,
            )
            for s in self.core_power_scales
        )

    def speed_scale(self, model: Optional[PowerModel] = None) -> SpeedScale:
        """Continuous or discrete speed scale per ``discrete_levels``."""
        model = model or self.power_model()
        if self.discrete_levels is None:
            top = self.top_speed if self.top_speed is not None else float("inf")
            return ContinuousSpeedScale(model, top_speed=top)
        if self.top_speed is not None:
            levels = tuple(v for v in self.discrete_levels if v <= self.top_speed)
            return DiscreteSpeedScale(model, levels=levels)
        return DiscreteSpeedScale(model, levels=self.discrete_levels)

    def quality_function(self) -> QualityFunction:
        """The quality function of this configuration.

        "exponential" is the paper's Eq. (1) with this config's
        concavity and x_max; the alternative concave shapes model other
        error-tolerant applications (the paper's future-work direction).
        For shapes without a ``c`` parameter, ``quality_c`` is reused as
        the shape parameter where one exists.
        """
        from repro.quality.functions import LinearQuality, LogQuality, PowerQuality

        if self.quality_shape == "exponential":
            return ExponentialQuality(c=self.quality_c, x_max=self.demand_max)
        if self.quality_shape == "log":
            return LogQuality(k=self.quality_c, x_max=self.demand_max)
        if self.quality_shape == "power":
            gamma = min(1.0, max(self.quality_c, 1e-6))
            return PowerQuality(gamma=gamma, x_max=self.demand_max)
        if self.quality_shape == "linear":
            return LinearQuality(x_max=self.demand_max)
        raise ConfigurationError(f"unknown quality_shape {self.quality_shape!r}")

    def demand_distribution(self) -> BoundedPareto:
        """Bounded-Pareto service demand distribution."""
        return BoundedPareto(
            alpha=self.demand_alpha, x_min=self.demand_min, x_max=self.demand_max
        )

    def deadline_window(self) -> UniformDeadlineWindow:
        """Response-window distribution."""
        return UniformDeadlineWindow(low=self.window_low, high=self.window_high)

    def workload(self) -> PoissonWorkloadGenerator:
        """The arrival process for this configuration (seeded).

        Arrival-burst and mis-estimation disturbances modulate the
        generator (superposed Poisson streams / demand inflation
        windows); with no schedule the generator is parameterized
        exactly as before, drawing the identical arrival sequence.
        """
        sched = self.disturbances
        return PoissonWorkloadGenerator(
            self.arrival_rate,
            demand=self.demand_distribution(),
            window=self.deadline_window(),
            horizon=self.horizon,
            streams=RandomStreams(seed=self.seed),
            rate_bursts=sched.burst_windows() if sched is not None else (),
            demand_inflations=sched.misestimate_windows() if sched is not None else (),
        )

    # -- derived operating points ---------------------------------------------
    def equal_share_speed(self) -> Gigahertz:
        """Per-core speed at an equal budget split (GHz); 2.0 at defaults."""
        model = self.power_model()
        return self.speed_scale(model).max_speed_at_power(self.budget / self.m)

    def equal_share_capacity(self) -> Speed:
        """Server throughput at equal split (units/s); 32 000 at defaults."""
        model = self.power_model()
        return self.m * model.throughput(self.equal_share_speed())

    def saturation_rate(self) -> PerSecond:
        """Arrival rate (r/s) at which mean offered demand equals the
        equal-share capacity; ≈166.7 at defaults."""
        return self.equal_share_capacity() / self.demand_distribution().mean

    def critical_load_rate(self) -> PerSecond:
        """Arrival rate of the light/heavy switch; 154 r/s at defaults."""
        return self.critical_load_fraction * self.saturation_rate()


#: The exact configuration of §IV-B.
PAPER_DEFAULTS = SimulationConfig()
