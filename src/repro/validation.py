"""Post-hoc validation of a finished simulation run.

:func:`validate_run` re-derives the physical invariants of a completed
:class:`repro.server.harness.SimulationHarness` from raw artefacts (the
per-core speed timelines and the job records), independently of the
bookkeeping the run itself maintained:

1. **Power budget** — at *every instant*, Σ_i P_i(s_i(t)) ≤ H.
2. **Speed legality** — every executed speed is allowed by the core's
   speed scale (on the DVFS ladder when discrete).
3. **Volume conservation** — Σ processed volumes equals the volume the
   cores executed (within float tolerance).
4. **Settlement** — every job settled exactly once with a final
   outcome; processed ≤ demand.
5. **Quality accounting** — the monitor's aggregate equals direct
   recomputation from the jobs.

Integration tests run every scheduler through this; it is also public
API so downstream policy authors can check their own schedulers
(see ``examples/custom_policy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.power.dvfs import DiscreteSpeedScale
from repro.server.harness import SimulationHarness
from repro.workload.job import Job

__all__ = ["ValidationReport", "validate_run"]

#: Relative tolerance on power-budget excursions (float noise).
_POWER_TOL = 1e-6
#: Absolute tolerance on volume conservation, per job.
_VOLUME_TOL = 1e-5


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_run`."""

    violations: List[str] = field(default_factory=list)
    peak_power: float = 0.0
    checked_jobs: int = 0
    checked_segments: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` listing all violations."""
        if self.violations:
            raise AssertionError(
                "run validation failed:\n  " + "\n  ".join(self.violations)
            )


def validate_run(
    harness: SimulationHarness, jobs: Optional[Sequence[Job]] = None
) -> ValidationReport:
    """Check all physical invariants of a finished harness.

    Parameters
    ----------
    harness:
        A harness whose :meth:`run` has completed.
    jobs:
        The job list to audit; defaults to the harness workload's
        materialized jobs.
    """
    report = ValidationReport()
    machine = harness.machine
    end = harness.sim.now

    # 1-2. Power budget at every instant + speed legality -----------------
    # Vectorized over the merged breakpoints (paper-scale runs have
    # millions; one searchsorted per core instead of a Python loop).
    merged = np.unique(
        np.concatenate(
            [np.asarray(core.speed_timeline._times) for core in machine.cores]
            + [np.array([0.0])]
        )
    )
    merged = merged[merged < end]
    power_at = np.zeros(merged.size)
    for core, model in zip(machine.cores, machine.models):
        times = np.asarray(core.speed_timeline._times)
        values = np.asarray(core.speed_timeline._values)
        idx = np.clip(np.searchsorted(times, merged, side="right") - 1, 0, values.size - 1)
        power_at += np.asarray(model.power(values[idx]), dtype=float)
    if power_at.size:
        report.peak_power = float(np.max(power_at))
        over = np.nonzero(power_at > machine.budget * (1.0 + _POWER_TOL))[0]
        for i in over[:20]:  # cap the report length
            report.violations.append(
                f"power {power_at[i]:.3f} W exceeds budget {machine.budget} W "
                f"at t={merged[i]:.6f}"
            )
    for core, scale in zip(machine.cores, machine.scales):
        _, values = core.speed_timeline.as_arrays(end)
        report.checked_segments += len(values)
        for v in values:
            if v == 0.0:
                continue
            if isinstance(scale, DiscreteSpeedScale):
                on_ladder = any(abs(v - level) < 1e-9 for level in scale.levels)
                if not on_ladder:
                    report.violations.append(
                        f"core {core.index} ran at {v:.6f} GHz, not on the DVFS ladder"
                    )
            elif v > scale.top_speed * (1.0 + 1e-9):
                report.violations.append(
                    f"core {core.index} ran at {v:.6f} GHz above the top speed"
                )

    # 3. Volume conservation -------------------------------------------------
    jobs = jobs if jobs is not None else harness._workload.materialize()
    processed_total = sum(j.processed for j in jobs)
    executed_total = machine.total_completed_volume()
    if abs(processed_total - executed_total) > _VOLUME_TOL * max(1.0, len(jobs)):
        report.violations.append(
            f"volume mismatch: jobs record {processed_total:.4f} units, "
            f"cores executed {executed_total:.4f}"
        )

    # 4. Settlement -----------------------------------------------------------
    for job in jobs:
        report.checked_jobs += 1
        if not job.settled:
            report.violations.append(f"job {job.jid} never settled")
        if job.processed > job.demand * (1.0 + 1e-9) + 1e-9:
            report.violations.append(
                f"job {job.jid} processed {job.processed} > demand {job.demand}"
            )

    # 5. Quality accounting ----------------------------------------------------
    # The monitor recomputes from first principles (class-aware monitors
    # apply each job's own quality function).
    expected = harness.monitor.expected_quality(jobs)
    if abs(harness.monitor.quality - expected) > 1e-9:
        report.violations.append(
            f"monitor quality {harness.monitor.quality:.9f} differs from "
            f"recomputed {expected:.9f}"
        )
    return report
