"""Figure 10: GE quality and energy under different power budgets.

Budgets H ∈ {80, 160, 320, 480} W.  Paper shape: a small budget caps
quality early and hard; larger budgets keep the quality stable to
higher loads; energy grows with load until the budget saturates, after
which more load cannot raise it further.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.core.ge import make_ge
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import default_rates, run_single, scaled_config

__all__ = ["run", "BUDGETS"]

BUDGETS = (80.0, 160.0, 320.0, 480.0)


def run(scale: float = 0.05, seed: int = 1, rates: Optional[Sequence[float]] = None,
    budgets: Sequence[float] = BUDGETS,) -> FigureResult:
    """Regenerate Fig. 10 (quality + energy per budget)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    fig = FigureResult(
        figure_id="fig10",
        title="GE with different power budgets",
        x_label="arrival rate (req/s)",
    )
    for budget in budgets:
        q = Series(label=f"budget={budget:g}")
        e = Series(label=f"budget={budget:g}")
        for rate in rates:
            cfg = scaled_config(scale, seed, arrival_rate=rate, budget=budget)
            result = run_single(cfg, make_ge)
            q.add(rate, result.quality)
            e.add(rate, result.energy)
        fig.add_series("quality", q)
        fig.add_series("energy", e)
    fig.notes.append("paper: energy grows with load until the budget saturates")
    return fig
