"""The fleet executor: one task grid, many worker processes, one rollup.

The paper's evaluation is a grid — schedulers × arrival rates × seeds —
and this module runs that grid as a *fleet* instead of a for-loop.  A
:class:`~repro.experiments.registry.FleetTask` names one grid cell
(bench scenario × seed × optional rate override); :func:`run_fleet`
fans a task list across spawn-context worker processes, each of which
runs its cell under a :class:`~repro.obs.stream.StreamingTracer` and
ships ``repro.bus/1`` telemetry (see :mod:`repro.obs.bus`) back over a
bounded queue.  A central aggregator thread folds the stream into
fleet-level rollups and the finished fleet lands in the
:class:`~repro.obs.runs.RunStore` — one ``repro.run/1`` summary per
task plus one ``repro.fleet/1`` rollup document.

Two guarantees make the fleet load-bearing rather than decorative:

**Determinism.**  :func:`execute_task` is the single execution path
for both the parallel and the sequential mode, and a simulation run is
a pure function of (config, seed) — workers share nothing and the bus
only carries results *out*.  Per-task ``RunResult`` payloads from a
parallel fleet are therefore bit-identical to :func:`run_sequential`
on the same grid (pickling a float preserves its bits), pinned by
``tests/experiments/test_fleet.py``.

**Crash isolation.**  A worker that raises ships a structured
``error`` message (exception, traceback, task spec); a worker that
*dies* (killed, ``os._exit``) is detected by the parent's process
watch and synthesized into an error record naming the task it was
running — either way the rest of the fleet completes and the fleet's
exit code reflects the failures.

This module is, with :mod:`repro.obs.bus`, the sanctioned home for
``multiprocessing`` (and host wall-clock reads for worker liveness):
sim-lint's SIM004 fleet-confinement check keeps both out of the
deterministic layers.  Worker entry points (:func:`_worker_main`,
:func:`_sweep_cell` …) are module-level functions because the spawn
start method pickles them by qualified name.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field
from queue import Empty, Full, Queue
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.errors import ReproError
from repro.experiments.bench import SUITE
from repro.experiments.registry import FleetTask
from repro.obs.bus import BusSender, FleetAggregator
from repro.obs.runs import FLEET_SCHEMA, RunStore, make_summary
from repro.obs.stream import StreamingTracer
from repro.server.harness import SimulationHarness
from repro.units import Seconds

__all__ = [
    "DEFAULT_QUEUE_SIZE",
    "SNAPSHOT_EVERY",
    "FleetResult",
    "execute_task",
    "fleet_compliance",
    "fleet_run_id",
    "parallel_map",
    "run_fleet",
    "run_sequential",
]

#: Bound on the telemetry queue.  Small enough that a runaway worker
#: cannot exhaust parent memory; drops past it are counted, not silent.
DEFAULT_QUEUE_SIZE = 1024

#: A droppable windowed-snapshot message every this many sample batches
#: (quantum boundaries) — the live view's refresh cadence.
SNAPSHOT_EVERY = 50

#: Wall seconds without any message from a live worker before the
#: heartbeat watchdog reports it as stale (slow, not yet dead).
DEFAULT_HEARTBEAT_TIMEOUT_S = 30.0

#: Grace before ``os._exit`` on an ``inject="exit"`` task: lets the
#: queue's feeder thread flush the reliable task-start message, so the
#: parent can attribute the death to the task that was running.
_EXIT_FLUSH_S = 0.5

_T = TypeVar("_T")
_U = TypeVar("_U")


# ----------------------------------------------------------------------
# Task execution (shared by every mode — the determinism anchor)
# ----------------------------------------------------------------------
class _BusTracer(StreamingTracer):
    """A streaming tracer that additionally ships live telemetry.

    Pure observer on top of :class:`StreamingTracer`: every override
    calls through to the aggregation path first and only then *reads*
    state to ship droppable bus messages, so the folded telemetry —
    and the RunResult — stay bit-identical to an un-bussed run.
    """

    def __init__(
        self, sender: BusSender, task_key: str, *, snapshot_every: int = SNAPSHOT_EVERY
    ) -> None:
        super().__init__()
        self._sender = sender
        self._task_key = task_key
        self._snapshot_every = snapshot_every
        self._batches = 0

    def sample_cores(self, machine: Any, time: Seconds) -> None:
        super().sample_cores(machine, time)
        self._batches += 1
        if self._snapshot_every > 0 and self._batches % self._snapshot_every == 0:
            windows: Dict[str, Any] = {}
            for name in ("quality", "power_total_w"):
                series = self.aggregator.series.get(name)
                if series is not None and series.rows:
                    windows[name] = dict(series.rows[-1])
            self._sender.send(
                "snapshot",
                task=self._task_key,
                payload={
                    "t": float(time),
                    "windows": windows,
                    "record_counts": dict(self.aggregator.record_counts),
                },
            )

    def _emit_violation(
        self, name: str, time: Seconds, value: float, threshold: float
    ) -> None:
        super()._emit_violation(name, time, value, threshold)
        self._sender.send(
            "slo_violation",
            task=self._task_key,
            payload={
                "slo": name, "time": float(time),
                "value": float(value), "threshold": float(threshold),
            },
        )


def execute_task(
    task: FleetTask,
    *,
    sender: Optional[BusSender] = None,
    snapshot_every: int = SNAPSHOT_EVERY,
) -> Dict[str, Any]:
    """Run one grid cell; returns its result payload.

    This is the one execution path shared by workers and the
    sequential mode, which is what makes parallel-vs-sequential
    bit-identity hold by construction.  With a ``sender`` the run
    ships live snapshot/violation telemetry (droppable, observation
    only); without one it runs under a plain streaming tracer.

    The payload is JSON-native: the task spec, the ``RunResult`` as a
    dict, the full streaming summary (windows, SLOs, utilization,
    metrics, meta), the simulator event count and the host wall time.
    Only ``wall_s`` is host-dependent; everything else is a pure
    function of (config, seed).
    """
    scenario = SUITE.get(task.scenario)
    if scenario is None:
        raise ReproError(
            f"unknown fleet scenario {task.scenario!r}; "
            f"available: {', '.join(SUITE)}"
        )
    if task.inject == "raise":
        raise RuntimeError(f"injected failure in task {task.key}")
    if task.inject == "exit":
        # The hard-death injection only makes sense where there is a
        # worker process to kill; _worker_main intercepts it earlier.
        raise ReproError(
            f"task {task.key}: inject='exit' requires a fleet worker process"
        )
    config = scenario.config(task.scale, task.seed)
    if task.rate is not None:
        config = config.with_overrides(arrival_rate=float(task.rate))
    tracer: StreamingTracer
    if sender is None:
        tracer = StreamingTracer()
    else:
        tracer = _BusTracer(sender, task.key, snapshot_every=snapshot_every)
    harness = SimulationHarness(config, scenario.factory(), tracer=tracer)
    wall_start = time.perf_counter()
    result = harness.run()
    wall = time.perf_counter() - wall_start
    return {
        "task": asdict(task),
        "result": asdict(result),
        "summary": tracer.summary(),
        "events": harness.sim.events_processed,
        "wall_s": wall,
    }


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int, task_queue: Any, bus_queue: Any, snapshot_every: int
) -> None:
    """Worker entry point: drain tasks, ship telemetry, say bye.

    Module-level because the spawn start method pickles the target by
    qualified name.  Every task is isolated: an exception becomes a
    reliable ``error`` message and the worker moves on to the next
    task; only a hard death (``inject="exit"``, a kill) ends the loop
    without a ``bye``, which the parent's process watch turns into a
    synthesized error record.
    """
    sender = BusSender(bus_queue, worker=worker_id)
    sender.send("hello", payload={"pid": os.getpid()})
    try:
        while True:
            task: Optional[FleetTask] = task_queue.get()
            if task is None:
                break
            # Reliable start marker: crash attribution needs to know
            # which task this worker was holding when it died.
            sender.send(
                "progress", task=task.key, payload={"phase": "start"}, reliable=True
            )
            if task.inject == "exit":
                time.sleep(_EXIT_FLUSH_S)
                os._exit(43)
            try:
                payload = execute_task(
                    task, sender=sender, snapshot_every=snapshot_every
                )
            except Exception as exc:
                sender.send("error", task=task.key, payload={
                    "exception": repr(exc),
                    "traceback": traceback.format_exc(),
                    "task": asdict(task),
                })
            else:
                sender.send("result", task=task.key, payload=payload)
    finally:
        sender.send("bye", payload={"dropped": sender.drop_counts()})


# ----------------------------------------------------------------------
# Fleet summary assembly / persistence (shared by both modes)
# ----------------------------------------------------------------------
def fleet_run_id(tasks: Sequence[FleetTask]) -> str:
    """Content address of a fleet: hash of the sorted task keys.

    Same grid ⇒ same id ⇒ re-running overwrites (the registry's usual
    idempotent content addressing); task order does not matter.
    """
    digest = hashlib.sha256(
        "\n".join(sorted(task.key for task in tasks)).encode("utf-8")
    ).hexdigest()[:12]
    return f"fleet-{digest}"


def fleet_compliance(rollup: Dict[str, Any]) -> Optional[float]:
    """Fleet-wide SLO compliance: compliant runs / evaluated runs.

    ``None`` when no run carried an SLO summary (nothing to gate on —
    CI gates treat that as a failure, not a pass).
    """
    compliant = 0
    evaluated = 0
    for row in (rollup.get("scenarios") or {}).values():
        compliant += int(row.get("slo_compliant", 0))
        evaluated += int(row.get("slo_evaluated", 0))
    if evaluated == 0:
        return None
    return compliant / evaluated


def _validate_tasks(tasks: Sequence[FleetTask]) -> None:
    if not tasks:
        raise ReproError("fleet has no tasks (empty grid)")
    keys = [task.key for task in tasks]
    duplicates = sorted({k for k in keys if keys.count(k) > 1})
    if duplicates:
        raise ReproError(f"duplicate fleet task keys: {', '.join(duplicates)}")
    unknown = sorted({t.scenario for t in tasks if t.scenario not in SUITE})
    if unknown:
        raise ReproError(
            f"unknown fleet scenario(s): {', '.join(unknown)}; "
            f"available: {', '.join(SUITE)}"
        )


def _fleet_summary(
    tasks: Sequence[FleetTask],
    aggregator: FleetAggregator,
    run_ids: Dict[str, str],
    *,
    workers: int,
    mode: str,
) -> Dict[str, Any]:
    """Assemble the storable ``repro.fleet/1`` document."""
    rollup = aggregator.rollup()
    task_rows: List[Dict[str, Any]] = []
    for task in tasks:
        payload = aggregator.results.get(task.key)
        slo = None
        if payload is not None:
            slo = ((payload.get("summary") or {}).get("slo") or {}).get("compliant")
        task_rows.append({
            "key": task.key,
            "scenario": task.scenario,
            "seed": task.seed,
            "rate": task.rate,
            "scale": task.scale,
            "ok": payload is not None,
            "run_id": run_ids.get(task.key),
            "worker": payload.get("worker") if payload is not None else None,
            "quality": (payload["result"].get("quality")
                        if payload is not None else None),
            "energy": (payload["result"].get("energy")
                       if payload is not None else None),
            "slo_compliant": slo,
            "wall_s": payload.get("wall_s") if payload is not None else None,
        })
    run_id = fleet_run_id(tasks)
    return {
        "schema": FLEET_SCHEMA,
        "run_id": run_id,
        "meta": {
            "scheduler": "fleet",
            "mode": mode,
            "workers": workers,
            "tasks": len(tasks),
            "succeeded": len(aggregator.results),
            "failed": len(aggregator.errors),
            "config_fingerprint": run_id.split("-", 1)[1],
        },
        "result": None,
        "rollup": rollup,
        "tasks": task_rows,
        "errors": [dict(e) for e in aggregator.errors],
    }


def _persist(
    aggregator: FleetAggregator,
    store: Optional[RunStore],
) -> Dict[str, str]:
    """Save every per-task ``repro.run/1`` summary; returns key → run id."""
    run_ids: Dict[str, str] = {}
    for key in sorted(aggregator.results):
        payload = aggregator.results[key]
        doc = make_summary(dict(payload["summary"]), result=payload["result"])
        if store is not None:
            run_ids[key] = store.save(doc)
        else:
            run_ids[key] = str(doc["run_id"])
    return run_ids


@dataclass
class FleetResult:
    """Outcome of one fleet execution (either mode)."""

    fleet_id: str
    summary: Dict[str, Any]
    results: Dict[str, Dict[str, Any]]
    errors: List[Dict[str, Any]] = field(default_factory=list)
    run_ids: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every task produced a result."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit code the CLI propagates: 0 clean, 1 with failures."""
        return 0 if self.ok else 1


# ----------------------------------------------------------------------
# Sequential mode (the determinism reference)
# ----------------------------------------------------------------------
def _drain_into(local_queue: "Queue[Dict[str, Any]]", aggregator: FleetAggregator) -> None:
    while True:
        try:
            message = local_queue.get_nowait()
        except Empty:
            return
        aggregator.on_message(message)


def run_sequential(
    tasks: Sequence[FleetTask],
    *,
    runs_dir: Optional[str] = None,
    store: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FleetResult:
    """Run the grid in-process, one task at a time.

    The reference execution the parallel fleet is compared against:
    the very same :func:`execute_task` path and the very same message
    fold (a :class:`BusSender` over a local queue feeding the same
    :class:`FleetAggregator`), minus the processes.  Task failures are
    isolated exactly like a worker's: an exception becomes an error
    record and the remaining tasks still run.
    """
    _validate_tasks(tasks)
    aggregator = FleetAggregator()
    local_queue: "Queue[Dict[str, Any]]" = Queue()
    sender = BusSender(local_queue, worker=0)
    sender.send("hello", payload={"pid": os.getpid()})
    for task in tasks:
        sender.send(
            "progress", task=task.key, payload={"phase": "start"}, reliable=True
        )
        try:
            payload = execute_task(task, sender=sender)
        except Exception as exc:
            sender.send("error", task=task.key, payload={
                "exception": repr(exc),
                "traceback": traceback.format_exc(),
                "task": asdict(task),
            })
        else:
            sender.send("result", task=task.key, payload=payload)
        _drain_into(local_queue, aggregator)
        if progress is not None:
            progress(_task_line(aggregator, task.key))
    sender.send("bye", payload={"dropped": sender.drop_counts()})
    _drain_into(local_queue, aggregator)

    run_store = RunStore(runs_dir) if store else None
    run_ids = _persist(aggregator, run_store)
    summary = _fleet_summary(tasks, aggregator, run_ids, workers=1, mode="sequential")
    fleet_id = run_store.save(summary) if run_store is not None else str(summary["run_id"])
    return FleetResult(
        fleet_id=fleet_id,
        summary=summary,
        results=dict(aggregator.results),
        errors=[dict(e) for e in aggregator.errors],
        run_ids=run_ids,
    )


def _task_line(aggregator: FleetAggregator, key: str) -> str:
    """One progress line for a just-finished task."""
    payload = aggregator.results.get(key)
    if payload is None:
        return f"{key:<28} FAILED"
    result = payload.get("result") or {}
    slo = ((payload.get("summary") or {}).get("slo") or {})
    verdict = "-"
    if "compliant" in slo:
        verdict = "ok" if slo["compliant"] else f"{slo.get('violations')}!"
    return (
        f"{key:<28} worker={payload.get('worker', 0)}  "
        f"Q={result.get('quality', 0.0):.4f}  "
        f"E={result.get('energy', 0.0):.1f} J  "
        f"wall={payload.get('wall_s', 0.0):.2f} s  slo={verdict}"
    )


# ----------------------------------------------------------------------
# Parallel mode
# ----------------------------------------------------------------------
def run_fleet(
    tasks: Sequence[FleetTask],
    *,
    workers: int = 2,
    runs_dir: Optional[str] = None,
    store: bool = True,
    queue_size: int = DEFAULT_QUEUE_SIZE,
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
    snapshot_every: int = SNAPSHOT_EVERY,
    progress: Optional[Callable[[str], None]] = None,
) -> FleetResult:
    """Fan the grid across spawn-context worker processes.

    Tasks are pulled from a shared queue (idle workers take the next
    cell, so a slow cell never blocks the rest); telemetry flows back
    over one bounded bus queue drained by the aggregator thread.  The
    main thread watches the worker processes: a worker that exits
    without its ``bye`` is marked dead and its in-flight task becomes
    a structured error record, and a worker silent past
    ``heartbeat_timeout`` wall seconds is reported as stale via
    ``progress`` (slow is not dead — only process exit is).  Tasks no
    worker ever picked up (every worker died first) are recorded as
    unrun errors, so the grid is always fully accounted: every task
    ends in exactly one of ``results`` or ``errors``.
    """
    import multiprocessing as mp

    _validate_tasks(tasks)
    if workers < 1:
        raise ReproError(f"fleet needs at least one worker, got {workers!r}")
    workers = min(workers, len(tasks))
    ctx = mp.get_context("spawn")
    task_queue = ctx.Queue()
    bus_queue = ctx.Queue(maxsize=queue_size)
    for task in tasks:
        task_queue.put(task)
    for _ in range(workers):
        task_queue.put(None)  # one shutdown sentinel per worker

    aggregator = FleetAggregator()
    lock = threading.Lock()
    stop = threading.Event()

    def _drain() -> None:
        while True:
            try:
                message = bus_queue.get(timeout=0.1)
            except Empty:
                if stop.is_set():
                    return
                continue
            with lock:
                aggregator.on_message(message)
            if progress is not None and message.get("type") == "result":
                with lock:
                    line = _task_line(aggregator, str(message.get("task")))
                progress(line)
            elif progress is not None and message.get("type") == "error":
                progress(f"{message.get('task')!s:<28} ERROR "
                         f"{message['payload'].get('exception')}")

    drainer = threading.Thread(target=_drain, name="fleet-aggregator", daemon=True)
    drainer.start()
    processes = [
        ctx.Process(
            target=_worker_main,
            args=(i, task_queue, bus_queue, snapshot_every),
            daemon=True,
        )
        for i in range(workers)
    ]
    for process in processes:
        process.start()

    handled: set = set()
    reported_stale: set = set()
    while any(p.is_alive() for p in processes):
        for i, process in enumerate(processes):
            if process.is_alive() or i in handled:
                continue
            process.join()
            handled.add(i)
            with lock:
                record = aggregator.mark_worker_dead(i, exitcode=process.exitcode)
            if record is not None and progress is not None:
                progress(
                    f"worker {i} died (exitcode {process.exitcode}) while "
                    f"running {record['task']}"
                )
        with lock:
            stale = aggregator.stale_workers(
                now=time.time(), timeout=heartbeat_timeout
            )
        for worker in stale:
            if worker not in reported_stale and progress is not None:
                reported_stale.add(worker)
                progress(
                    f"watchdog: no telemetry from worker {worker} for "
                    f"{heartbeat_timeout:g}s (still alive — slow task?)"
                )
        time.sleep(0.05)
    for i, process in enumerate(processes):
        process.join()
        if i not in handled:
            with lock:
                aggregator.mark_worker_dead(i, exitcode=process.exitcode)

    # Give the queue's feeder-flushed tail a moment, then stop the
    # drainer and sweep any straggler messages ourselves.
    deadline = time.time() + 5.0
    while time.time() < deadline and not bus_queue.empty():
        time.sleep(0.05)
    stop.set()
    drainer.join()
    while True:
        try:
            message = bus_queue.get_nowait()
        except Empty:
            break
        aggregator.on_message(message)

    # Tasks nobody ran (e.g. every worker died before reaching them).
    accounted = set(aggregator.results)
    accounted.update(str(e["task"]) for e in aggregator.errors if e.get("task"))
    for task in tasks:
        if task.key not in accounted:
            aggregator.mark_task_unrun(
                task.key, "no worker picked this task up (fleet died early)"
            )
            if progress is not None:
                progress(f"{task.key:<28} UNRUN (no surviving worker)")

    # Drop the queues' feeder threads without blocking interpreter exit
    # on unconsumed sentinels left behind by dead workers.
    for q in (task_queue, bus_queue):
        q.close()
        q.cancel_join_thread()

    run_store = RunStore(runs_dir) if store else None
    run_ids = _persist(aggregator, run_store)
    summary = _fleet_summary(
        tasks, aggregator, run_ids, workers=workers, mode="parallel"
    )
    fleet_id = run_store.save(summary) if run_store is not None else str(summary["run_id"])
    return FleetResult(
        fleet_id=fleet_id,
        summary=summary,
        results=dict(aggregator.results),
        errors=[dict(e) for e in aggregator.errors],
        run_ids=run_ids,
    )


# ----------------------------------------------------------------------
# Generic spawn-pool map (``repro bench --parallel``, sweep_rates)
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable[[_T], _U], items: Sequence[_T], *, workers: int
) -> List[_U]:
    """Order-preserving map over a spawn-context process pool.

    ``fn`` and every item must be picklable (module-level functions,
    plain dataclasses).  ``workers <= 1`` degrades to an in-process
    loop, so callers can thread a ``--parallel N`` flag straight
    through.  Note the pool has no crash isolation — a dying worker
    aborts the whole map; use :func:`run_fleet` when tasks may fail.
    """
    if workers <= 1:
        return [fn(item) for item in items]
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    with ctx.Pool(processes=min(workers, len(items) or 1)) as pool:
        return pool.map(fn, list(items))
