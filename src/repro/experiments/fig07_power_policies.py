"""Figure 7: quality and energy under WF vs ES power distribution.

Same two arms as Fig. 6, measuring service quality and energy.  Paper
shape: under light load ES matches WF's quality while consuming less
energy (it suppresses the compensation-driven speed thrashing); under
heavy load WF achieves higher quality because it shifts unused power to
overloaded cores.  This pair of observations is exactly what justifies
the hybrid policy.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.experiments.fig06_speed_stats import FACTORIES
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    default_rates,
    quality_energy_series,
    scaled_config,
    sweep_rates,
)

__all__ = ["run", "FACTORIES"]


def run(scale: float = 0.05, seed: int = 1, rates: Optional[Sequence[float]] = None) -> FigureResult:
    """Regenerate Fig. 7 (quality + energy for WF vs ES)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    cfg = scaled_config(scale, seed)
    results = sweep_rates(cfg, FACTORIES, rates)

    fig = FigureResult(
        figure_id="fig07",
        title="Quality and energy under WF vs ES power distribution",
        x_label="arrival rate (req/s)",
    )
    quality_energy_series(fig, results, rates)
    fig.notes.append(
        "paper: ES saves energy at light load at equal quality; WF wins quality "
        "under heavy load"
    )
    fig.notes.append(f"critical (light-load) rate: {cfg.critical_load_rate():.1f} req/s")
    return fig
