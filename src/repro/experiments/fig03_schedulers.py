"""Figure 3: quality and energy of six schedulers vs arrival rate.

Fixed 150 ms deadlines.  Paper shape: GE holds ≈Q_GE with the least
energy among the quality-meeting policies (headline: up to 23.9 % less
energy than BE); BE has the best quality at the highest energy; OQ sits
slightly above GE until heavy load; FCFS is the best of the
one-at-a-time baselines; LJF and SJF are the worst, with SJF's energy
*decreasing* under overload as it abandons long jobs.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.baselines.queue_order import FCFS, LJF, SJF
from repro.core.ge import make_be, make_ge, make_oq
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    default_rates,
    quality_energy_series,
    scaled_config,
    sweep_rates,
)

__all__ = ["run", "FACTORIES"]

FACTORIES = {
    "GE": make_ge,
    "OQ": make_oq,
    "BE": make_be,
    "FCFS": FCFS,
    "LJF": LJF,
    "SJF": SJF,
}


def run(scale: float = 0.05, seed: int = 1, rates: Optional[Sequence[float]] = None) -> FigureResult:
    """Regenerate Fig. 3 (quality + energy panels)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    cfg = scaled_config(scale, seed)
    results = sweep_rates(cfg, FACTORIES, rates)

    fig = FigureResult(
        figure_id="fig03",
        title="Quality and energy comparison of scheduling algorithms",
        x_label="arrival rate (req/s)",
    )
    quality_energy_series(fig, results, rates)

    # Headline statistic: GE's best-case energy saving vs BE among the
    # rates where GE still meets the quality target.
    best_saving = 0.0
    for i, rate in enumerate(rates):
        ge = results["GE"][i]
        be = results["BE"][i]
        if ge.quality >= cfg.q_ge - 0.02 and be.energy > 0:
            best_saving = max(best_saving, 1.0 - ge.energy / be.energy)
    fig.notes.append(f"best GE-vs-BE energy saving at satisfied quality: {best_saving:.1%}")
    fig.notes.append("paper reports up to 23.9% saving at Q_GE=0.9")
    fig.notes.append(f"saturation (overload) rate of this config: {cfg.saturation_rate():.1f} req/s")
    return fig
