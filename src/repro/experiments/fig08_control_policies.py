"""Figure 8: quality control (GE) vs power control (BE-P) vs speed
control (BE-S).

BE-P runs Best-Effort at the least total power budget that still meets
the quality target; BE-S runs Best-Effort with the least per-core speed
cap that does.  Both knobs are calibrated per arrival rate by bisection
(see :mod:`repro.baselines.control`).  Paper shape: GE meets the target
everywhere it is feasible while BE-P and BE-S undershoot under load;
GE pays a little more energy than the two starved BE variants; all
three converge when the system is overloaded.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.baselines.control import calibrate_power_control, calibrate_speed_control
from repro.core.ge import make_ge
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import default_rates, run_single, scaled_config

__all__ = ["run"]


def run(scale: float = 0.03, seed: int = 1, rates: Optional[Sequence[float]] = None, iterations: int = 5) -> FigureResult:
    """Regenerate Fig. 8 (per-rate calibrated BE-P / BE-S vs GE).

    ``iterations`` bounds each bisection; 5 locates the knob within
    ~3 % of its range, plenty for the shape comparison.
    """
    rates = list(rates) if rates is not None else default_rates(scale)
    fig = FigureResult(
        figure_id="fig08",
        title="Quality control (GE) vs power control (BE-P) vs speed control (BE-S)",
        x_label="arrival rate (req/s)",
    )
    series = {
        name: (Series(label=name), Series(label=name))
        for name in ("GE", "BE-P", "BE-S")
    }
    for rate in rates:
        cfg = scaled_config(scale, seed, arrival_rate=rate)
        ge = run_single(cfg, make_ge)
        bep = calibrate_power_control(
            cfg, calibration_horizon=cfg.horizon, iterations=iterations
        )
        bes = calibrate_speed_control(
            cfg, calibration_horizon=cfg.horizon, iterations=iterations
        )
        for name, result in (("GE", ge), ("BE-P", bep.result), ("BE-S", bes.result)):
            series[name][0].add(rate, result.quality)
            series[name][1].add(rate, result.energy)
        fig.notes.append(
            f"λ={rate:g}: calibrated budget {bep.value:.1f} W, speed cap {bes.value:.3f} GHz"
        )
    for name in ("GE", "BE-P", "BE-S"):
        fig.add_series("quality", series[name][0])
        fig.add_series("energy", series[name][1])
    return fig
