"""The ``repro bench`` performance harness: snapshots and regression gates.

A *bench snapshot* (``BENCH_<label>.json``) is one measured point of the
project's performance trajectory: a fixed suite of scenarios (the GE
scheduler and its baselines at reduced horizon, reusing
:mod:`repro.experiments.runner` machinery) is run with tracing and the
hot-path profiler on, and for every scenario the snapshot records

* host wall time (best of ``repeats``) and the derived **events/sec**
  and **µs/reschedule** rates, so perf is normalised to work done;
* the per-phase wall-time profile from :mod:`repro.obs.prof`
  (``scheduler.round``, ``cut.lf``, ``power.distribute``,
  ``planner.quality_opt``, ``planner.energy_opt``, ``sim.run``);
* the deterministic simulator counters (events processed, reschedules,
  AES↔BQ mode switches, per-outcome job counts) — these must be
  bit-identical across hosts for the same config+seed, so a mismatch in
  ``compare`` flags a determinism break, not noise;
* the paper-fidelity metrics **Q** (service quality) and **E** (energy),
  so performance work cannot silently change results;
* peak RSS (and optionally the tracemalloc peak from a second, untimed
  run) plus enough metadata — git revision, python/platform, RNG seed,
  config fingerprints, schema version — to reproduce the snapshot from
  the artifact alone.

``compare_snapshots`` renders a per-scenario / per-phase delta table
and reports regressions: wall time past a configurable threshold,
fidelity drift, counter mismatches, and scenarios that disappeared.
CI runs the reduced suite and compares against
``benchmarks/baseline.json`` with a generous threshold so the gate
catches crashes and step-change regressions, not host jitter.
"""

from __future__ import annotations

import gc
import json
import platform
import subprocess
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.queue_order import FCFS
from repro.config import SimulationConfig
from repro.core.ge import make_be, make_ge, make_oq
from repro.experiments.fig12_discrete_speed import DEFAULT_LADDER
from repro.experiments.runner import SchedulerFactory, scaled_config
from repro.obs import StreamingTracer, Tracer, fold_records
from repro.server.harness import SimulationHarness

__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchScenario",
    "SUITE",
    "TRACERS",
    "collect_snapshot",
    "compare_snapshots",
    "load_snapshot",
    "run_scenario",
    "write_snapshot",
]

#: Version tag of the snapshot layout.  Bump on incompatible changes so
#: ``compare`` can refuse to diff artifacts it does not understand.
BENCH_SCHEMA = "repro.bench/1"

#: Default horizon scale (fraction of the paper's 600 s) — ~12 s of
#: simulated arrivals per scenario keeps the full suite under a minute.
DEFAULT_SCALE = 0.02

#: Phases cheaper than this (old-snapshot total seconds) are exempt from
#: the per-phase regression gate; their ratios are pure noise.
_PHASE_FLOOR_S = 0.010

#: Tracer sinks the bench can drive (``repro bench --tracer``): the
#: buffering tracer (the historical default) or the constant-memory
#: streaming sink of :mod:`repro.obs.stream`.
TRACERS: Dict[str, Callable[[], Tracer]] = {
    "full": Tracer,
    "stream": StreamingTracer,
}


@dataclass(frozen=True)
class BenchScenario:
    """One named benchmark scenario of the fixed suite.

    Attributes
    ----------
    name:
        Stable snapshot key (``compare`` matches scenarios by it).
    description:
        What the scenario exercises (shown by ``repro bench --list``).
    factory:
        Zero-argument scheduler factory (fresh instance per run).
    config:
        ``(scale, seed) -> SimulationConfig`` builder.
    """

    name: str
    description: str
    factory: SchedulerFactory
    config: Callable[[float, int], SimulationConfig]


def _cfg(**overrides: Any) -> Callable[[float, int], SimulationConfig]:
    def build(scale: float, seed: int) -> SimulationConfig:
        return scaled_config(scale, seed, **overrides)

    return build


#: The fixed bench suite.  Scenarios are chosen to cover the distinct
#: hot paths: ES vs WF power distribution (light vs heavy load), AES
#: cutting vs permanent BQ (GE vs BE), compensation off (OQ), the
#: discrete-DVFS planner arm, and the non-GE harness path (FCFS).
SUITE: Dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            name="ge_light",
            description="GE below the critical load (λ=100/s): ES distribution path",
            factory=make_ge,
            config=_cfg(arrival_rate=100.0),
        ),
        BenchScenario(
            name="ge_nominal",
            description="GE at the paper's nominal λ=150/s (web-search defaults)",
            factory=make_ge,
            config=_cfg(arrival_rate=150.0),
        ),
        BenchScenario(
            name="ge_heavy",
            description="GE overloaded (λ=250/s): WF distribution + deep cutting",
            factory=make_ge,
            config=_cfg(arrival_rate=250.0),
        ),
        BenchScenario(
            name="be_nominal",
            description="BE baseline (permanent BQ, water-filling) at λ=150/s",
            factory=make_be,
            config=_cfg(arrival_rate=150.0),
        ),
        BenchScenario(
            name="oq_nominal",
            description="OQ baseline (no compensation, Q_GE+2%) at λ=150/s",
            factory=make_oq,
            config=_cfg(arrival_rate=150.0),
        ),
        BenchScenario(
            name="ge_discrete",
            description="GE on the 0.25 GHz DVFS ladder: discrete Energy-OPT path",
            factory=make_ge,
            config=_cfg(arrival_rate=150.0, discrete_levels=DEFAULT_LADDER),
        ),
        BenchScenario(
            name="fcfs_nominal",
            description="FCFS queue-order baseline at λ=150/s: harness fast path",
            factory=FCFS,
            config=_cfg(arrival_rate=150.0),
        ),
    )
}


def _git_rev() -> Optional[str]:
    """Short git revision of the working tree, if available."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _peak_rss_kb() -> Optional[float]:
    """Process peak RSS in KiB (monotone high-water mark), if available."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _slo_summary(tracer: Tracer) -> Dict[str, Any]:
    """The run's SLO compliance summary, whichever sink recorded it.

    A :class:`StreamingTracer` evaluated the SLOs online; a buffering
    :class:`Tracer` recorded the raw streams, which fold to the
    bit-identical summary offline.
    """
    if isinstance(tracer, StreamingTracer):
        slo = tracer.summary().get("slo", {})
    else:
        slo = fold_records(tracer.to_trace()).snapshot().get("slo", {})
    return dict(slo)


def run_scenario(
    scenario: BenchScenario,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 1,
    repeats: int = 1,
    mem: bool = False,
    tracer_factory: Callable[[], Tracer] = Tracer,
) -> Dict[str, Any]:
    """Measure one scenario; returns its snapshot record.

    Each repeat builds a fresh config/scheduler/harness with tracing and
    profiling enabled; the reported wall time and phase profile come
    from the fastest repeat (the one least disturbed by the host).
    Simulated results are asserted identical across repeats — the run is
    deterministic, so any divergence is a real bug.  ``tracer_factory``
    selects the telemetry sink under test (see :data:`TRACERS`); every
    record carries the run's SLO compliance summary either way.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    config = scenario.config(scale, seed)
    best: Optional[Dict[str, Any]] = None
    reference: Optional[Tuple[float, float, int, int]] = None
    for _ in range(repeats):
        tracer = tracer_factory()
        harness = SimulationHarness(config, scenario.factory(), tracer=tracer)
        wall_start = time.perf_counter()
        result = harness.run()
        wall = time.perf_counter() - wall_start

        events = harness.sim.events_processed
        fidelity = (result.quality, result.energy, result.jobs, events)
        if reference is None:
            reference = fidelity
        elif fidelity != reference:
            raise RuntimeError(
                f"bench scenario {scenario.name!r} is non-deterministic across "
                f"repeats: {reference} != {fidelity}"
            )
        if best is not None and wall >= best["wall_s"]:
            continue

        scheduler = harness.scheduler
        reschedules = int(getattr(scheduler, "reschedules", 0))
        controller = getattr(scheduler, "controller", None)
        mode_switches = int(getattr(controller, "switches", 0))
        best = {
            "name": scenario.name,
            "scheduler": scheduler.name,
            "arrival_rate": config.arrival_rate,
            "horizon": config.horizon,
            "seed": config.seed,
            "config_fingerprint": config.fingerprint(),
            "wall_s": wall,
            "events": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "us_per_reschedule": (
                wall / reschedules * 1e6 if reschedules else None
            ),
            "counters": {
                "events": events,
                "reschedules": reschedules,
                "mode_switches": mode_switches,
                "jobs": result.jobs,
                "outcomes": dict(sorted(result.outcomes.items())),
            },
            "quality": result.quality,
            "energy": result.energy,
            "phases": tracer.profiler.snapshot(),
            "slo": _slo_summary(tracer),
            "peak_rss_kb": _peak_rss_kb(),
            "tracemalloc_peak_kb": None,
            "telemetry_kb": None,
        }

    assert best is not None
    if mem:
        # Separate, untimed run: tracemalloc roughly doubles wall time,
        # so the allocation peak must never contaminate the timings.
        tracemalloc.start()
        try:
            mem_tracer = tracer_factory()
            SimulationHarness(config, scenario.factory(), tracer=mem_tracer).run()
            _, peak = tracemalloc.get_traced_memory()
            # Telemetry memory in isolation: live allocations made by
            # repro.obs code at run end, while the tracer still holds
            # its buffers/aggregates.  The global peak is dominated by
            # the materialized workload (linear in the horizon for any
            # sink); this filtered view is what the flat-vs-horizon
            # memory test pins for the streaming sink.  Collect first:
            # dropped records awaiting cycle collection are not
            # retained memory.
            gc.collect()
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_traces = snapshot.filter_traces(
            [tracemalloc.Filter(True, "*/repro/obs/*")]
        )
        telemetry = sum(stat.size for stat in obs_traces.statistics("filename"))
        del mem_tracer  # keep the buffers alive through take_snapshot
        best["tracemalloc_peak_kb"] = peak / 1024.0
        best["telemetry_kb"] = telemetry / 1024.0
    return best


def _progress_line(record: Dict[str, Any]) -> str:
    """One status line per finished scenario (shared by both paths)."""
    slo = record.get("slo", {})
    verdict = "-"
    if "compliant" in slo:
        verdict = "ok" if slo["compliant"] else f"{slo['violations']}!"
    return (
        f"{record['name']:<14} wall={record['wall_s']:8.3f} s  "
        f"{record['events_per_sec']:10.0f} ev/s  "
        f"Q={record['quality']:.4f}  E={record['energy']:.1f} J  "
        f"slo={verdict}"
    )


def _scenario_cell(args: Tuple[str, float, int, int, bool, str]) -> Dict[str, Any]:
    """One scenario run for the parallel path.

    Module-level and keyed by scenario *name* (the suite's config
    builders are closures and do not pickle) so the spawn start method
    can ship it to a pool worker.
    """
    name, scale, seed, repeats, mem, tracer = args
    return run_scenario(
        SUITE[name], scale=scale, seed=seed, repeats=repeats, mem=mem,
        tracer_factory=TRACERS[tracer],
    )


def collect_snapshot(
    label: str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 1,
    repeats: int = 1,
    scenarios: Optional[Sequence[str]] = None,
    mem: bool = False,
    tracer: str = "full",
    parallel: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the bench suite and assemble the snapshot dict.

    ``scenarios`` selects a subset of :data:`SUITE` by name (default:
    all); ``tracer`` selects the telemetry sink (see :data:`TRACERS`);
    ``progress`` is called with a one-line status per scenario (the CLI
    passes ``print``).  ``parallel > 1`` fans scenarios across a
    spawn-context process pool — simulated results and counters are
    unchanged (each scenario is a pure function of config + seed), but
    wall times then measure *contended* hosts: never compare a parallel
    snapshot against a sequential baseline.
    """
    names = list(scenarios) if scenarios is not None else list(SUITE)
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        raise KeyError(
            f"unknown bench scenario(s): {', '.join(unknown)}; "
            f"available: {', '.join(SUITE)}"
        )
    if tracer not in TRACERS:
        raise KeyError(
            f"unknown tracer {tracer!r}; available: {', '.join(TRACERS)}"
        )
    records: List[Dict[str, Any]] = []
    if parallel > 1:
        from repro.experiments.fleet import parallel_map  # local: avoid cycle

        cells = [(name, scale, seed, repeats, mem, tracer) for name in names]
        records = parallel_map(_scenario_cell, cells, workers=parallel)
        if progress is not None:
            for record in records:
                progress(_progress_line(record))
    else:
        for name in names:
            record = _scenario_cell((name, scale, seed, repeats, mem, tracer))
            records.append(record)
            if progress is not None:
                progress(_progress_line(record))
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "created_unix": time.time(),
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "tracer": tracer,
        "parallel": parallel,
        "scenarios": records,
    }


_PathLike = Union[str, Path]


def write_snapshot(snapshot: Dict[str, Any], path: _PathLike) -> None:
    """Write a snapshot as stable, diff-friendly JSON."""
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    Path(path).write_text(text + "\n", encoding="utf-8")


def load_snapshot(path: _PathLike) -> Dict[str, Any]:
    """Load and schema-check one ``BENCH_*.json`` snapshot."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(this reader understands {BENCH_SCHEMA!r})"
        )
    return data


@dataclass
class BenchComparison:
    """Outcome of ``compare_snapshots``: the report and the verdict."""

    lines: List[str]
    regressions: List[str]

    @property
    def ok(self) -> bool:
        """True when no regression was detected."""
        return not self.regressions

    def render(self) -> str:
        """The full report, regressions summarised at the end."""
        out = list(self.lines)
        if self.regressions:
            out.append("")
            out.append(f"REGRESSIONS ({len(self.regressions)}):")
            out.extend(f"  - {r}" for r in self.regressions)
        else:
            out.append("")
            out.append("no regressions")
        return "\n".join(out)


def _by_name(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {s["name"]: s for s in snapshot.get("scenarios", [])}


def _ratio(old: float, new: float) -> Optional[float]:
    return new / old if old > 0 else None


def compare_snapshots(
    old: Dict[str, Any],
    new: Dict[str, Any],
    *,
    threshold: float = 1.25,
    fidelity_tol: float = 1e-6,
    check_fidelity: bool = True,
    scenarios: Optional[Sequence[str]] = None,
) -> BenchComparison:
    """Diff two snapshots; regressions gate the CLI exit code.

    A scenario regresses when its wall time grows past ``threshold``×
    the old value, when an individually expensive phase does (phases
    cheaper than 10 ms are noise-exempt), when quality/energy drift
    beyond ``fidelity_tol`` (relative) under an identical config
    fingerprint, when deterministic counters diverge (a determinism
    break), or when it vanished from the new snapshot (a crash gate).
    Comparing a snapshot to itself always passes.

    ``scenarios`` restricts the comparison to the named scenarios — the
    smoke-bench CI job records a one-scenario snapshot, and without the
    filter every other baseline scenario would count as "missing".
    Unknown names raise ``ValueError``.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold!r}")
    lines: List[str] = []
    regressions: List[str] = []
    old_s, new_s = _by_name(old), _by_name(new)
    if scenarios is not None:
        wanted = list(dict.fromkeys(scenarios))
        unknown = [n for n in wanted if n not in old_s and n not in new_s]
        if unknown:
            raise ValueError(f"unknown scenario(s): {', '.join(unknown)}")
        old_s = {n: s for n, s in old_s.items() if n in wanted}
        new_s = {n: s for n, s in new_s.items() if n in wanted}

    lines.append(
        f"old: {old.get('label', '?')} ({old.get('git_rev') or 'no rev'}, "
        f"python {old.get('python', '?')})"
    )
    lines.append(
        f"new: {new.get('label', '?')} ({new.get('git_rev') or 'no rev'}, "
        f"python {new.get('python', '?')})"
    )
    lines.append(f"wall-time regression threshold: x{threshold:g}")
    lines.append("")

    for name, o in old_s.items():
        n = new_s.get(name)
        if n is None:
            regressions.append(f"{name}: missing from the new snapshot")
            lines.append(f"{name}: MISSING from new snapshot")
            continue
        ratio = _ratio(float(o["wall_s"]), float(n["wall_s"]))
        ratio_txt = f"x{ratio:.2f}" if ratio is not None else "n/a"
        lines.append(
            f"{name}: wall {o['wall_s']:.3f} s -> {n['wall_s']:.3f} s "
            f"({ratio_txt})  events/s {o['events_per_sec']:.0f} -> "
            f"{n['events_per_sec']:.0f}"
        )
        if ratio is not None and ratio > threshold:
            regressions.append(
                f"{name}: wall time x{ratio:.2f} (threshold x{threshold:g})"
            )

        same_setup = o.get("config_fingerprint") == n.get("config_fingerprint")
        if check_fidelity and same_setup:
            for key in ("quality", "energy"):
                ov, nv = float(o[key]), float(n[key])
                if abs(nv - ov) > fidelity_tol * max(1.0, abs(ov)):
                    regressions.append(
                        f"{name}: {key} drifted {ov!r} -> {nv!r} "
                        "(perf change altered simulated results)"
                    )
            oc, nc = o.get("counters", {}), n.get("counters", {})
            for key in ("events", "reschedules", "jobs"):
                if key in oc and key in nc and oc[key] != nc[key]:
                    regressions.append(
                        f"{name}: deterministic counter {key} changed "
                        f"{oc[key]} -> {nc[key]} (determinism break)"
                    )
        elif check_fidelity and not same_setup:
            lines.append(
                "  (config fingerprints differ — fidelity/counters not compared)"
            )

        # Per-phase delta table (inclusive wall time).
        phases = sorted(set(o.get("phases", {})) | set(n.get("phases", {})))
        for phase in phases:
            op = o.get("phases", {}).get(phase)
            np_ = n.get("phases", {}).get(phase)
            o_total = float(op["total_s"]) if op else 0.0
            n_total = float(np_["total_s"]) if np_ else 0.0
            p_ratio = _ratio(o_total, n_total)
            p_txt = f"x{p_ratio:.2f}" if p_ratio is not None else "  new"
            lines.append(
                f"    {phase:<22} {o_total * 1e3:9.2f} ms -> "
                f"{n_total * 1e3:9.2f} ms  ({p_txt})"
            )
            if (
                p_ratio is not None
                and p_ratio > threshold
                and o_total >= _PHASE_FLOOR_S
            ):
                regressions.append(
                    f"{name}: phase {phase} x{p_ratio:.2f} "
                    f"({o_total * 1e3:.1f} ms -> {n_total * 1e3:.1f} ms)"
                )

    for name in new_s:
        if name not in old_s:
            lines.append(f"{name}: new scenario (no baseline)")

    return BenchComparison(lines=lines, regressions=regressions)
