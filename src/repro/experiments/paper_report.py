"""One-command reproduction report.

:func:`generate_report` regenerates a set of paper figures and renders
them into a single markdown document (text tables + notes), suitable
for committing next to EXPERIMENTS.md as evidence of a run.  Exposed on
the CLI as ``repro-cli report``.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.experiments.registry import FigureSpec, get_figure, list_figures

__all__ = ["generate_report"]


def generate_report(
    scale: Optional[float] = None,
    seed: int = 1,
    figures: Optional[Iterable[str]] = None,
) -> str:
    """Run figures and return a markdown report.

    Parameters
    ----------
    scale:
        Horizon scale applied to every figure; ``None`` uses each
        figure's registered default.
    figures:
        Figure ids to include (default: all twelve).
    """
    specs: list[FigureSpec] = (
        [get_figure(f) for f in figures] if figures is not None else list_figures()
    )
    lines = [
        "# Reproduction report",
        "",
        f"- seed: {seed}",
        f"- scale: {'per-figure default' if scale is None else scale}"
        " (1.0 = the paper's 10-minute horizon)",
        "",
    ]
    for spec in specs:
        started = time.perf_counter()
        result = spec.run(scale=scale or spec.default_scale, seed=seed)
        elapsed = time.perf_counter() - started
        lines.append(f"## {spec.figure_id}: {spec.title}")
        lines.append("")
        lines.append(f"_generated in {elapsed:.1f} s_")
        lines.append("")
        lines.append("```")
        lines.append(result.to_text())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
