"""Figure 5: quality and energy with and without compensation.

The "No-Compensation" arm never switches to BQ mode regardless of the
monitored quality (§IV-A-2).  Paper shape: compensation keeps the
quality pinned at Q_GE where the uncompensated arm undershoots, at the
cost of slightly more energy.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.core.ge import GEScheduler, make_ge
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    default_rates,
    quality_energy_series,
    scaled_config,
    sweep_rates,
)

__all__ = ["run", "FACTORIES"]


def _no_compensation() -> GEScheduler:
    return GEScheduler(name="No-Comp", compensated=False)


FACTORIES = {
    "Compensation": make_ge,
    "No-Compensation": _no_compensation,
}


def run(scale: float = 0.05, seed: int = 1, rates: Optional[Sequence[float]] = None) -> FigureResult:
    """Regenerate Fig. 5 (compensation ablation)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    cfg = scaled_config(scale, seed)
    results = sweep_rates(cfg, FACTORIES, rates)

    fig = FigureResult(
        figure_id="fig05",
        title="Impact of the quality compensation policy",
        x_label="arrival rate (req/s)",
    )
    quality_energy_series(fig, results, rates)
    fig.notes.append(
        "paper: compensation holds Q at ~Q_GE where the uncompensated arm dips, "
        "for slightly more energy"
    )
    return fig
