"""Figure 6: core-speed statistics under WF vs ES power distribution.

GE is pinned to a single power-distribution policy (no hybrid switch)
and the machine's time-average core speed (panel a) and time-averaged
across-core speed variance (panel b) are measured.  Paper shape: mean
speeds are nearly equal under light load, while WF's speed variance is
much larger than ES's — the core-speed-thrashing signature; under heavy
load WF's mean and variance both exceed ES's because WF exploits the
whole budget.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.core.ge import GEScheduler
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import default_rates, scaled_config, sweep_rates

__all__ = ["run", "FACTORIES"]


def _wf() -> GEScheduler:
    return GEScheduler(name="Water-Filling", distribution="wf")


def _es() -> GEScheduler:
    return GEScheduler(name="Equal-Sharing", distribution="es")


FACTORIES = {"Water-Filling": _wf, "Equal-Sharing": _es}


def run(scale: float = 0.05, seed: int = 1, rates: Optional[Sequence[float]] = None) -> FigureResult:
    """Regenerate Fig. 6 (mean speed + speed variance panels)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    cfg = scaled_config(scale, seed)
    results = sweep_rates(cfg, FACTORIES, rates)

    fig = FigureResult(
        figure_id="fig06",
        title="Speed statistics under WF vs ES power distribution",
        x_label="arrival rate (req/s)",
    )
    for name, runs in results.items():
        mean_s = Series(label=name)
        var_s = Series(label=name)
        for rate, run_result in zip(rates, runs):
            mean_s.add(rate, run_result.mean_speed)
            var_s.add(rate, run_result.speed_variance)
        fig.add_series("average_speed", mean_s)
        fig.add_series("speed_variance", var_s)
    fig.notes.append("paper: WF variance >> ES variance under light load")
    fig.notes.append(f"critical (light-load) rate: {cfg.critical_load_rate():.1f} req/s")
    return fig
