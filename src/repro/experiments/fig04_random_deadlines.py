"""Figure 4: scheduler comparison with random deadline windows.

The service interval is drawn uniformly from [150 ms, 500 ms] instead
of being fixed, so deadlines are no longer agreeable with arrivals and
**FDFS** (First-Deadline First-Served) becomes a distinct policy.
Paper shape: GE/OQ/BE behave as in Fig. 3 (batch policies see all
jobs); FCFS degrades badly (early arrivals with late deadlines starve
urgent jobs); FDFS is the best of the one-at-a-time baselines because
it respects deadline order.
"""

from __future__ import annotations

from typing import Optional, Sequence
from repro.baselines.queue_order import FCFS, FDFS, LJF, SJF
from repro.core.ge import make_be, make_ge, make_oq
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    default_rates,
    quality_energy_series,
    scaled_config,
    sweep_rates,
)

__all__ = ["run", "FACTORIES"]

FACTORIES = {
    "GE": make_ge,
    "OQ": make_oq,
    "BE": make_be,
    "FCFS": FCFS,
    "FDFS": FDFS,
    "LJF": LJF,
    "SJF": SJF,
}


def run(scale: float = 0.05, seed: int = 1, rates: Optional[Sequence[float]] = None) -> FigureResult:
    """Regenerate Fig. 4 (random 150–500 ms deadline windows)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    cfg = scaled_config(scale, seed, window_low=0.150, window_high=0.500)
    results = sweep_rates(cfg, FACTORIES, rates)

    fig = FigureResult(
        figure_id="fig04",
        title="Scheduler comparison with random deadline intervals (150-500 ms)",
        x_label="arrival rate (req/s)",
    )
    quality_energy_series(fig, results, rates)
    fig.notes.append("paper: FDFS beats FCFS/LJF/SJF; GE stays at ~Q_GE with least energy")
    return fig
