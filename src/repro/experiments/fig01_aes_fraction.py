"""Figure 1: execution-time percentage of the AES mode vs arrival rate.

Paper shape: the AES share is high (~0.7–0.8) at light load and falls
towards zero as the load approaches the overload point — GE can only
afford aggressive cutting while the compensation policy rarely fires.
"""

from __future__ import annotations

from typing import Sequence
from repro.core.ge import make_ge
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import run_single, scaled_config

__all__ = ["run"]

RATES = (100.0, 120.0, 140.0, 160.0, 180.0, 200.0)


def run(scale: float = 0.05, seed: int = 1, rates: Sequence[float] = RATES) -> FigureResult:
    """Regenerate Fig. 1 at the given horizon scale."""
    fig = FigureResult(
        figure_id="fig01",
        title="Execution time percentage of the AES mode",
        x_label="arrival rate (req/s)",
    )
    series = Series(label="GE")
    for rate in rates:
        cfg = scaled_config(scale, seed, arrival_rate=rate)
        result = run_single(cfg, make_ge)
        series.add(rate, result.aes_fraction if result.aes_fraction is not None else 0.0)
    fig.add_series("aes_fraction", series)
    fig.notes.append(
        "Paper: AES share decreases with arrival rate (approx. 0.8 -> 0 by overload)."
    )
    return fig
