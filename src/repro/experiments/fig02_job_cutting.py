"""Figure 2: the Longest-First job-cutting illustration.

The paper's Fig. 2 is a schematic of four jobs being levelled from the
longest down until the target quality is reached.  This module runs the
actual LF-cut implementation on a four-job example and reports the
before/after volumes and the quality accounting, making the schematic
reproducible (and checkable) rather than hand-drawn.
"""

from __future__ import annotations

import numpy as np

from repro.core.cutting import lf_cut_stepwise, lf_cut_waterline
from repro.experiments.report import FigureResult, Series
from repro.quality.functions import ExponentialQuality

__all__ = ["run", "DEMO_DEMANDS"]

#: Four jobs "of various lengths" as in the paper's schematic.
DEMO_DEMANDS = (900.0, 620.0, 380.0, 180.0)


def run(scale: float = 1.0, seed: int = 1, q_target: float = 0.9) -> FigureResult:
    """Cut the four demo jobs to ``q_target`` and report the levels.

    ``scale``/``seed`` are accepted for interface uniformity; the
    figure is deterministic and ignores them.
    """
    f = ExponentialQuality(c=0.003, x_max=1000.0)
    demands = np.asarray(DEMO_DEMANDS)
    targets = lf_cut_waterline(f, demands, q_target)
    stepwise = lf_cut_stepwise(f, demands, q_target)

    fig = FigureResult(
        figure_id="fig02",
        title=f"LF job cutting of four jobs to Q_GE={q_target}",
        x_label="job index",
    )
    before = Series(label="demand p_j")
    after = Series(label="cut target c_j")
    for i, (p, c) in enumerate(zip(demands, targets), start=1):
        before.add(i, p)
        after.add(i, c)
    fig.add_series("volumes", before)
    fig.add_series("volumes", after)

    achieved = float(np.sum(f(targets))) / float(np.sum(f(demands)))
    saved = 1.0 - float(np.sum(targets)) / float(np.sum(demands))
    fig.notes.append(f"aggregate quality after cut: {achieved:.4f} (target {q_target})")
    fig.notes.append(f"workload removed by the cut: {saved:.1%}")
    fig.notes.append(
        "stepwise (paper-literal) and waterline cuts agree to "
        f"{float(np.max(np.abs(stepwise - targets))):.3g} units"
    )
    return fig
