"""Replication: run a policy across seeds and summarize with CIs.

The paper reports single runs; for a reproduction it is useful to know
how much of any gap is noise.  :func:`replicate` runs one configuration
under ``n`` different seeds (same workload *law*, independent draws)
and returns per-metric summaries with normal confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import SimulationConfig
from repro.experiments.runner import SchedulerFactory, run_single
from repro.metrics.collector import RunResult
from repro.metrics.stats import SeriesSummary, summarize

__all__ = ["ReplicationSummary", "replicate"]


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregate of ``n`` independent replications of one policy."""

    scheduler: str
    arrival_rate: float
    n: int
    quality: SeriesSummary
    energy: SeriesSummary
    runs: tuple

    def row(self) -> str:
        """One formatted report line with 95 % CIs."""
        q, e = self.quality, self.energy
        return (
            f"{self.scheduler:<8} λ={self.arrival_rate:7.1f}  n={self.n}  "
            f"Q={q.mean:6.4f} [{q.low:6.4f}, {q.high:6.4f}]  "
            f"E={e.mean:10.1f} J [{e.low:10.1f}, {e.high:10.1f}]"
        )


def replicate(
    config: SimulationConfig,
    factory: SchedulerFactory,
    n: int = 5,
    confidence: float = 0.95,
) -> ReplicationSummary:
    """Run ``factory`` under seeds ``config.seed .. config.seed+n-1``."""
    if n < 1:
        raise ValueError(f"need at least one replication, got {n!r}")
    runs: List[RunResult] = []
    for i in range(n):
        runs.append(run_single(config.with_overrides(seed=config.seed + i), factory))
    return ReplicationSummary(
        scheduler=runs[0].scheduler,
        arrival_rate=config.arrival_rate,
        n=n,
        quality=summarize([r.quality for r in runs], confidence),
        energy=summarize([r.energy for r in runs], confidence),
        runs=tuple(runs),
    )


def replicate_many(
    config: SimulationConfig,
    factories: Dict[str, SchedulerFactory],
    n: int = 5,
) -> Dict[str, ReplicationSummary]:
    """Replicate several policies on the same seed ladder."""
    return {name: replicate(config, factory, n) for name, factory in factories.items()}
