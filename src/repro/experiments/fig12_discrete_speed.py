"""Figure 12: GE with continuous vs discrete speed scaling.

The discrete arm restricts core speeds to a DVFS ladder (0.25 GHz steps
up to 3 GHz by default) and applies the §IV-A-5 rectification to the
water-filled power allocations.  Paper shape: discrete scaling loses a
little quality (cores cannot run at the ideal speed) and consumes
marginally less energy for the same reason.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.ge import make_ge
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import default_rates, run_single, scaled_config

__all__ = ["run", "DEFAULT_LADDER"]

DEFAULT_LADDER: Tuple[float, ...] = tuple(round(0.25 * k, 2) for k in range(1, 13))


def run(
    scale: float = 0.05,
    seed: int = 1,
    rates: Optional[Sequence[float]] = None,
    ladder: Optional[Tuple[float, ...]] = DEFAULT_LADDER,
) -> FigureResult:
    """Regenerate Fig. 12 (continuous vs discrete DVFS)."""
    rates = list(rates) if rates is not None else default_rates(scale)
    fig = FigureResult(
        figure_id="fig12",
        title="GE with continuous vs discrete speed scaling",
        x_label="arrival rate (req/s)",
    )
    arms = {
        "Continuous": None,
        "Discrete": ladder,
    }
    for name, levels in arms.items():
        q = Series(label=name)
        e = Series(label=name)
        for rate in rates:
            cfg = scaled_config(
                scale, seed, arrival_rate=rate, discrete_levels=levels
            )
            result = run_single(cfg, make_ge)
            q.add(rate, result.quality)
            e.add(rate, result.energy)
        fig.add_series("quality", q)
        fig.add_series("energy", e)
    fig.notes.append("paper: discrete loses a little quality, saves a little energy")
    return fig
