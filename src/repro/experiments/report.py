"""Result containers and plain-text rendering for experiments.

The paper's figures are line charts; the harness represents each as a
:class:`FigureResult` holding named :class:`Series` (x → y) plus
free-text notes, and renders them as aligned text tables so benchmark
output is directly comparable with the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["FigureResult", "Series", "format_table", "ascii_plot"]


@dataclass
class Series:
    """One labelled line of a figure: paired x/y values."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def as_pairs(self) -> List[Tuple[float, float]]:
        """The points as ``(x, y)`` tuples."""
        return list(zip(self.x, self.y))

    def y_at(self, x: float) -> float:
        """The y value recorded at exactly ``x`` (KeyError if absent)."""
        for xi, yi in zip(self.x, self.y):
            if xi == x:
                return yi
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")


@dataclass
class FigureResult:
    """All data needed to re-plot one paper figure.

    ``panels`` maps a panel name (e.g. "quality", "energy") to its
    series list; single-panel figures use one entry.
    """

    figure_id: str
    title: str
    x_label: str
    panels: Dict[str, List[Series]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def panel(self, name: str) -> List[Series]:
        """Series list of one panel."""
        return self.panels[name]

    def series(self, panel: str, label: str) -> Series:
        """Look up one series by panel and label."""
        for s in self.panels[panel]:
            if s.label == label:
                return s
        raise KeyError(f"panel {panel!r} has no series {label!r}")

    def add_series(self, panel: str, series: Series) -> Series:
        """Register a series under ``panel`` and return it."""
        self.panels.setdefault(panel, []).append(series)
        return series

    def to_csv(self) -> str:
        """Render the figure as CSV: one block per panel.

        Format: a ``# panel: <name>`` comment line, a header row
        (``x_label, <series labels...>``), then one row per x value —
        directly loadable into a spreadsheet or pandas with
        ``comment='#'``.
        """
        lines: List[str] = [f"# figure: {self.figure_id} — {self.title}"]
        for note in self.notes:
            lines.append(f"# note: {note}")
        for panel_name, series_list in self.panels.items():
            lines.append(f"# panel: {panel_name}")
            header = [self.x_label] + [s.label for s in series_list]
            lines.append(",".join(_csv_escape(h) for h in header))
            xs = series_list[0].x if series_list else []
            for i, x in enumerate(xs):
                row = [f"{x:g}"]
                for s in series_list:
                    row.append(f"{s.y[i]:.8g}" if i < len(s.y) else "")
                lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        """Render the whole figure as aligned text tables."""
        chunks = [f"=== {self.figure_id}: {self.title} ==="]
        for note in self.notes:
            chunks.append(f"  note: {note}")
        for panel_name, series_list in self.panels.items():
            xs = series_list[0].x if series_list else []
            headers = [self.x_label] + [s.label for s in series_list]
            rows = []
            for i, x in enumerate(xs):
                row = [f"{x:g}"]
                for s in series_list:
                    row.append(f"{s.y[i]:.4g}" if i < len(s.y) else "-")
                rows.append(row)
            chunks.append(f"-- {panel_name} --")
            chunks.append(format_table(headers, rows))
        return "\n".join(chunks)


def _csv_escape(value: str) -> str:
    if any(c in value for c in ",\"\n"):
        return '"' + value.replace('"', '""') + '"'
    return value


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align a list of string rows under headers."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(min(cols, len(row))):
            widths[i] = max(widths[i], len(row[i]))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def ascii_plot(series_list: List[Series], width: int = 64, height: int = 16) -> str:
    """Minimal ASCII line plot (used by example scripts, not tests)."""
    points = [(x, y) for s in series_list for x, y in zip(s.x, s.y)]
    if not points:
        return "(empty plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*sdv^"
    for si, s in enumerate(series_list):
        mark = markers[si % len(markers)]
        for x, y in zip(s.x, s.y):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(series_list)
    )
    return "\n".join(
        [f"y: [{y_lo:.4g}, {y_hi:.4g}]"]
        + lines
        + [f"x: [{x_lo:.4g}, {x_hi:.4g}]", legend]
    )
