"""Degradation analysis for disturbance-injected runs (``repro chaos``).

A chaos run answers the robustness questions ``docs/robustness.md``
poses: *how far* does quality fall under a disturbance, *how fast* does
the GE controller recover, and *what does the incident cost* in energy?
The unit of analysis is the **twin pair**:

* the **disturbed** run — a catalog scenario's configuration
  (:func:`repro.experiments.registry.chaos_config`) with its
  :class:`~repro.chaos.schedule.DisturbanceSchedule` armed;
* the **undisturbed twin** — the *same* configuration with
  ``disturbances=None``: identical seed, machine and base workload, so
  every delta between the two runs is attributable to the schedule.

Both runs stream through a :class:`~repro.obs.stream.StreamingTracer`;
the analysis is computed from the windowed quality series and the
retained chaos markers, entirely offline:

* **quality-floor violation time** — summed width of quality windows
  whose mean dips below ``Q_GE``, for each run, and the disturbed
  excess (the *degradation seconds* the schedule caused);
* **recovery time per disturbance** — from each disturbance's onset to
  the start of the first at-or-above-floor window after the first
  violating one (0 when the floor never breaks, ``None`` when the run
  ends still degraded);
* **post-recovery compliance** — fraction of quality windows at/above
  the floor after the last disturbance window ends (the steady-state
  health the CI gate checks);
* **energy overhead** — disturbed minus twin total energy.

:func:`evaluate_gate` turns thresholds on the last two into a pass/fail
verdict — the exit gate of the ``chaos-smoke`` CI job.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.experiments.registry import chaos_config, get_chaos_scenario
from repro.obs.runs import make_summary
from repro.obs.stream import StreamingTracer
from repro.server.harness import SimulationHarness

__all__ = [
    "CHAOS_SCHEMA",
    "analyze_degradation",
    "evaluate_gate",
    "run_chaos_scenario",
]

#: Schema tag of the chaos summary layout (a ``repro.run/1`` summary
#: carrying the extra ``degradation`` / ``scenario`` keys).
CHAOS_SCHEMA = "repro.chaos/1"


def _quality_rows(telemetry: Dict[str, Any]) -> List[Dict[str, Any]]:
    windows = telemetry.get("windows") or {}
    return list((windows.get("quality") or {}).get("rows") or [])


def _violation_seconds(rows: List[Dict[str, Any]], q_floor: float) -> float:
    """Summed width of quality windows whose *mean* breaks the floor.

    The window mean, not the minimum: GE deliberately operates right at
    ``Q_GE`` (good-enough, §III-C), so per-round minima graze the floor
    even in a healthy run; a window whose mean is below it marks real
    degradation.
    """
    return sum(
        float(row["end"]) - float(row["start"])
        for row in rows
        if float(row["mean"]) < q_floor
    )


def _recovery_for(
    onset: float, rows: List[Dict[str, Any]], q_floor: float
) -> Tuple[Optional[float], Optional[float]]:
    """(recovered_at, recovery_s) for one disturbance onset.

    Scanning quality windows from the onset forward: if the floor never
    breaks, recovery is instantaneous (0 s); otherwise recovery lands at
    the start of the first compliant window after the violating
    stretch, and ``None`` means the run ended still below the floor.
    """
    violated = False
    for row in rows:
        if float(row["end"]) <= onset:
            continue
        if float(row["mean"]) < q_floor:
            violated = True
        elif violated:
            recovered_at = max(float(row["start"]), onset)
            return recovered_at, recovered_at - onset
    if not violated:
        return onset, 0.0
    return None, None


def analyze_degradation(
    disturbed: Dict[str, Any],
    twin: Dict[str, Any],
    *,
    config: SimulationConfig,
) -> Dict[str, Any]:
    """Compare a disturbed ``repro.run/1`` summary against its twin.

    ``config`` is the *disturbed* configuration (its schedule drives
    the per-disturbance recovery rows and the post-recovery cut).
    """
    schedule = config.disturbances
    if schedule is None:
        raise ValueError("analyze_degradation needs a disturbed configuration")
    q_floor = float(config.q_ge)
    d_rows = _quality_rows(disturbed.get("telemetry") or {})
    t_rows = _quality_rows(twin.get("telemetry") or {})
    d_result = disturbed.get("result") or {}
    t_result = twin.get("result") or {}

    d_violation = _violation_seconds(d_rows, q_floor)
    t_violation = _violation_seconds(t_rows, q_floor)

    recoveries = []
    for d in schedule:
        recovered_at, recovery_s = _recovery_for(float(d.time), d_rows, q_floor)
        recoveries.append(
            {
                "time": float(d.time),
                "kind": d.kind,
                "detail": d.describe(),
                "recovered_at": recovered_at,
                "recovery_s": recovery_s,
            }
        )

    after = float(schedule.last_effect_end() or 0.0)
    tail = [row for row in d_rows if float(row["start"]) >= after]
    compliant = sum(1 for row in tail if float(row["mean"]) >= q_floor)
    compliance = compliant / len(tail) if tail else None

    d_energy = float(d_result.get("energy") or 0.0)
    t_energy = float(t_result.get("energy") or 0.0)
    d_quality = float(d_result.get("quality") or 0.0)
    t_quality = float(t_result.get("quality") or 0.0)
    return {
        "q_floor": q_floor,
        "quality": {
            "disturbed": d_quality,
            "twin": t_quality,
            "delta": d_quality - t_quality,
        },
        "energy": {
            "disturbed": d_energy,
            "twin": t_energy,
            "overhead_j": d_energy - t_energy,
            "overhead_frac": (d_energy - t_energy) / t_energy if t_energy else None,
        },
        "floor": {
            "disturbed_violation_s": d_violation,
            "twin_violation_s": t_violation,
            "degradation_s": d_violation - t_violation,
        },
        "recoveries": recoveries,
        "post": {
            "after_s": after,
            "windows": len(tail),
            "compliant": compliant,
            "compliance": compliance,
        },
    }


def evaluate_gate(
    degradation: Dict[str, Any],
    *,
    max_recovery_s: Optional[float] = None,
    min_post_compliance: Optional[float] = None,
) -> List[str]:
    """CI gate over a degradation analysis; returns the failures.

    ``max_recovery_s`` bounds every disturbance's recovery time (a run
    that never recovers fails it by definition);
    ``min_post_compliance`` floors the post-recovery quality-window
    compliance fraction.  An empty list means the gate passes.
    """
    failures: List[str] = []
    if max_recovery_s is not None:
        for rec in degradation.get("recoveries") or []:
            recovery = rec.get("recovery_s")
            if recovery is None:
                failures.append(
                    f"{rec.get('detail', rec.get('kind'))}: never recovered "
                    f"above the quality floor"
                )
            elif recovery > max_recovery_s:
                failures.append(
                    f"{rec.get('detail', rec.get('kind'))}: recovery took "
                    f"{recovery:.3f} s (bound {max_recovery_s:g} s)"
                )
    if min_post_compliance is not None:
        post = degradation.get("post") or {}
        compliance = post.get("compliance")
        if compliance is None:
            failures.append(
                "no quality windows after the last disturbance — "
                "cannot assess post-recovery compliance"
            )
        elif compliance < min_post_compliance:
            failures.append(
                f"post-recovery compliance {compliance:.3f} below the "
                f"{min_post_compliance:g} floor "
                f"({post.get('compliant')}/{post.get('windows')} windows)"
            )
    return failures


def _run_streamed(config: SimulationConfig) -> Dict[str, Any]:
    """One GE run under a streaming tracer, as a ``repro.run/1`` summary."""
    tracer = StreamingTracer()
    harness = SimulationHarness(config, make_ge(), tracer=tracer)
    result = harness.run()
    return make_summary(tracer.summary(), result=asdict(result))


def run_chaos_scenario(
    name: str,
    *,
    scale: float = 0.02,
    seed: int = 1,
) -> Dict[str, Any]:
    """Run one catalog scenario and its twin; return the annotated summary.

    The return value is the disturbed run's ``repro.run/1`` summary
    (storable in the run registry, renderable by ``repro report``)
    with three extra keys: ``degradation`` (the twin analysis),
    ``scenario`` (catalog metadata + the twin's run id) and the
    ``chaos_schema`` tag.
    """
    scenario = get_chaos_scenario(name)
    config = chaos_config(scenario, scale=scale, seed=seed)
    twin_config = config.with_overrides(disturbances=None)
    disturbed = _run_streamed(config)
    twin = _run_streamed(twin_config)
    degradation = analyze_degradation(disturbed, twin, config=config)
    disturbed["chaos_schema"] = CHAOS_SCHEMA
    disturbed["degradation"] = degradation
    disturbed["scenario"] = {
        "name": scenario.name,
        "description": scenario.description,
        "scale": scale,
        "seed": seed,
        "arrival_rate": scenario.arrival_rate,
        "disturbances": [d.describe() for d in config.disturbances or ()],
        "twin_run_id": twin.get("run_id"),
        "twin_fingerprint": twin_config.fingerprint(),
    }
    return disturbed
