"""Experiment harness: every figure of the paper's evaluation (§IV).

Each ``figNN_*`` module exposes ``run(scale=..., seed=...) -> FigureResult``
regenerating the corresponding paper figure.  ``scale`` shrinks the
simulated horizon (1.0 = the paper's 10 minutes) so the benchmark suite
finishes on a laptop; the shapes are stable from ``scale≈0.03`` up.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured numbers.
"""

from repro.experiments.registry import FIGURES, get_figure, list_figures
from repro.experiments.replication import ReplicationSummary, replicate
from repro.experiments.report import FigureResult, Series, format_table
from repro.experiments.runner import (
    quality_energy_series,
    run_single,
    sweep_rates,
)

__all__ = [
    "FIGURES",
    "FigureResult",
    "ReplicationSummary",
    "Series",
    "format_table",
    "get_figure",
    "list_figures",
    "quality_energy_series",
    "replicate",
    "run_single",
    "sweep_rates",
]
