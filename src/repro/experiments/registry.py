"""Registry mapping figure ids to their experiment modules.

Used by the CLI (``repro-cli fig 3``) and by the benchmark suite's
parametrization, so the list of reproducible figures lives in exactly
one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments import (
    fig01_aes_fraction,
    fig02_job_cutting,
    fig03_schedulers,
    fig04_random_deadlines,
    fig05_compensation,
    fig06_speed_stats,
    fig07_power_policies,
    fig08_control_policies,
    fig09_quality_function,
    fig10_power_budget,
    fig11_core_count,
    fig12_discrete_speed,
)
from repro.experiments.report import FigureResult

__all__ = ["FIGURES", "FigureSpec", "get_figure", "list_figures"]


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible paper figure."""

    figure_id: str
    title: str
    run: Callable[..., FigureResult]
    default_scale: float


FIGURES: Dict[str, FigureSpec] = {
    "fig01": FigureSpec("fig01", "AES-mode time share vs arrival rate", fig01_aes_fraction.run, 0.05),
    "fig02": FigureSpec("fig02", "LF job-cutting illustration", fig02_job_cutting.run, 1.0),
    "fig03": FigureSpec("fig03", "Scheduler comparison (fixed deadlines)", fig03_schedulers.run, 0.05),
    "fig04": FigureSpec("fig04", "Scheduler comparison (random deadlines)", fig04_random_deadlines.run, 0.05),
    "fig05": FigureSpec("fig05", "Compensation policy ablation", fig05_compensation.run, 0.05),
    "fig06": FigureSpec("fig06", "WF vs ES speed statistics", fig06_speed_stats.run, 0.05),
    "fig07": FigureSpec("fig07", "WF vs ES quality and energy", fig07_power_policies.run, 0.05),
    "fig08": FigureSpec("fig08", "Quality vs power vs speed control", fig08_control_policies.run, 0.03),
    "fig09": FigureSpec("fig09", "Quality-function concavity sweep", fig09_quality_function.run, 0.05),
    "fig10": FigureSpec("fig10", "Power budget sweep", fig10_power_budget.run, 0.05),
    "fig11": FigureSpec("fig11", "Core count sweep", fig11_core_count.run, 0.05),
    "fig12": FigureSpec("fig12", "Continuous vs discrete DVFS", fig12_discrete_speed.run, 0.05),
}


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec by id ("fig03", "3", or "03")."""
    key = figure_id.lower()
    if not key.startswith("fig"):
        key = f"fig{int(key):02d}"
    if key not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {', '.join(sorted(FIGURES))}"
        )
    return FIGURES[key]


def list_figures() -> List[FigureSpec]:
    """All figures in id order."""
    return [FIGURES[k] for k in sorted(FIGURES)]
