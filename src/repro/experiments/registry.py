"""Registry mapping figure ids to their experiment modules.

Used by the CLI (``repro-cli fig 3``) and by the benchmark suite's
parametrization, so the list of reproducible figures lives in exactly
one place.  The fleet executor's task grid
(:class:`FleetTask` / :func:`fleet_grid`) also lives here: a fleet is
just the paper's scenario × seed × rate evaluation grid written down
as data, and the registry is where grid-shaped experiment metadata
belongs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.chaos import (
    DisturbanceSchedule,
    arrival_burst,
    budget_dip,
    core_fail,
    misestimate,
)
from repro.config import SimulationConfig
from repro.experiments import (
    fig01_aes_fraction,
    fig02_job_cutting,
    fig03_schedulers,
    fig04_random_deadlines,
    fig05_compensation,
    fig06_speed_stats,
    fig07_power_policies,
    fig08_control_policies,
    fig09_quality_function,
    fig10_power_budget,
    fig11_core_count,
    fig12_discrete_speed,
)
from repro.experiments.report import FigureResult

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "FIGURES",
    "FigureSpec",
    "FleetTask",
    "chaos_config",
    "fleet_grid",
    "get_chaos_scenario",
    "get_figure",
    "list_figures",
]

#: Fault-injection hooks a :class:`FleetTask` may request (test/ops
#: only): ``"raise"`` throws inside the task, ``"exit"`` hard-kills
#: the worker process mid-task (``os._exit``), exercising the fleet's
#: crash-isolation path.
INJECT_MODES = (None, "raise", "exit")


@dataclass(frozen=True)
class FleetTask:
    """One cell of the evaluation grid: scenario × seed × optional rate.

    Scenarios are the bench suite's named configurations
    (:data:`repro.experiments.bench.SUITE`); ``rate`` overrides the
    scenario's arrival rate when set (the Figs. 3–12 rate-sweep axis),
    and ``scale`` shrinks the horizon exactly like ``scaled_config``.
    The task is pure data — frozen, hashable, picklable — because the
    spawn start method ships it to worker processes by pickling.
    """

    scenario: str
    seed: int
    scale: float = 0.02
    rate: Optional[float] = None
    inject: Optional[str] = None

    def __post_init__(self) -> None:
        if self.inject not in INJECT_MODES:
            raise ValueError(
                f"unknown inject mode {self.inject!r}; "
                f"expected one of {INJECT_MODES}"
            )

    @property
    def key(self) -> str:
        """Stable grid-cell id, e.g. ``ge_light-s1-x0.02-r120``."""
        parts = [self.scenario, f"s{self.seed}", f"x{self.scale:g}"]
        if self.rate is not None:
            parts.append(f"r{self.rate:g}")
        return "-".join(parts)


def fleet_grid(
    scenarios: Sequence[str],
    seeds: Sequence[int],
    *,
    rates: Optional[Sequence[float]] = None,
    scale: float = 0.02,
) -> List[FleetTask]:
    """Materialize the scenario × seed × rate cross product, in order.

    The order is deterministic (scenarios outer, seeds middle, rates
    inner — matching ``sweep_rates``'s iteration shape) so grid ids
    and fleet summaries are reproducible.  Scenario names are
    validated against the bench suite up front: a fleet should fail
    before spawning workers, not inside one.
    """
    from repro.experiments.bench import SUITE  # local: avoid import cycle

    if not scenarios:
        raise ValueError("fleet_grid needs at least one scenario")
    if not seeds:
        raise ValueError("fleet_grid needs at least one seed")
    unknown = sorted({name for name in scenarios if name not in SUITE})
    if unknown:
        raise KeyError(
            f"unknown scenario(s): {', '.join(unknown)}; "
            f"available: {', '.join(SUITE)}"
        )
    rate_axis: List[Optional[float]] = (
        [None] if rates is None else [float(r) for r in rates]
    )
    if not rate_axis:
        raise ValueError("fleet_grid got an empty rates list")
    return [
        FleetTask(scenario=name, seed=int(seed), scale=float(scale), rate=rate)
        for name in scenarios
        for seed in seeds
        for rate in rate_axis
    ]


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible paper figure."""

    figure_id: str
    title: str
    run: Callable[..., FigureResult]
    default_scale: float


FIGURES: Dict[str, FigureSpec] = {
    "fig01": FigureSpec("fig01", "AES-mode time share vs arrival rate", fig01_aes_fraction.run, 0.05),
    "fig02": FigureSpec("fig02", "LF job-cutting illustration", fig02_job_cutting.run, 1.0),
    "fig03": FigureSpec("fig03", "Scheduler comparison (fixed deadlines)", fig03_schedulers.run, 0.05),
    "fig04": FigureSpec("fig04", "Scheduler comparison (random deadlines)", fig04_random_deadlines.run, 0.05),
    "fig05": FigureSpec("fig05", "Compensation policy ablation", fig05_compensation.run, 0.05),
    "fig06": FigureSpec("fig06", "WF vs ES speed statistics", fig06_speed_stats.run, 0.05),
    "fig07": FigureSpec("fig07", "WF vs ES quality and energy", fig07_power_policies.run, 0.05),
    "fig08": FigureSpec("fig08", "Quality vs power vs speed control", fig08_control_policies.run, 0.03),
    "fig09": FigureSpec("fig09", "Quality-function concavity sweep", fig09_quality_function.run, 0.05),
    "fig10": FigureSpec("fig10", "Power budget sweep", fig10_power_budget.run, 0.05),
    "fig11": FigureSpec("fig11", "Core count sweep", fig11_core_count.run, 0.05),
    "fig12": FigureSpec("fig12", "Continuous vs discrete DVFS", fig12_discrete_speed.run, 0.05),
}


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec by id ("fig03", "3", or "03")."""
    key = figure_id.lower()
    if not key.startswith("fig"):
        key = f"fig{int(key):02d}"
    if key not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {', '.join(sorted(FIGURES))}"
        )
    return FIGURES[key]


def list_figures() -> List[FigureSpec]:
    """All figures in id order."""
    return [FIGURES[k] for k in sorted(FIGURES)]


# ----------------------------------------------------------------------
# Chaos scenario catalog (repro.chaos)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosScenario:
    """One named disturbance scenario of the chaos catalog.

    ``schedule`` builds the :class:`DisturbanceSchedule` for a given
    horizon — disturbance times are horizon *fractions*, so the same
    scenario stresses a 12-second smoke run and the paper's full
    600-second horizon at the same relative points.
    """

    name: str
    description: str
    schedule: Callable[[float], DisturbanceSchedule]
    arrival_rate: float = 150.0


#: The fixed chaos catalog.  Scenarios cover every disturbance kind,
#: both core-failure policies, compound faults, and one of everything
#: at once.  Times assume the default machine (m=16 cores, H=320 W).
CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="core_fail_requeue",
            description="one core dies at 25% of the run for a 30% window; "
            "its jobs are re-queued and re-planned elsewhere",
            schedule=lambda T: DisturbanceSchedule.of(
                core_fail(0.25 * T, 0, duration=0.30 * T, policy="requeue"),
            ),
        ),
        ChaosScenario(
            name="core_fail_kill",
            description="a core fails permanently at 25%; in-flight jobs "
            "settle immediately with whatever progress they had",
            schedule=lambda T: DisturbanceSchedule.of(
                core_fail(0.25 * T, 0, policy="kill"),
            ),
        ),
        ChaosScenario(
            name="double_fault",
            description="two cores fail in overlapping windows — the "
            "second fault lands while the first is still down",
            schedule=lambda T: DisturbanceSchedule.of(
                core_fail(0.20 * T, 0, duration=0.30 * T),
                core_fail(0.30 * T, 1, duration=0.30 * T),
            ),
        ),
        ChaosScenario(
            name="budget_dip",
            description="the power budget H drops to 60% for a quarter "
            "of the run (rack-level cap intervention)",
            schedule=lambda T: DisturbanceSchedule.of(
                budget_dip(0.30 * T, 0.60, 0.25 * T),
            ),
        ),
        ChaosScenario(
            name="budget_sawtooth",
            description="two successive budget dips (70% then 50%) with "
            "a short recovery between them",
            schedule=lambda T: DisturbanceSchedule.of(
                budget_dip(0.20 * T, 0.70, 0.15 * T),
                budget_dip(0.50 * T, 0.50, 0.15 * T),
            ),
        ),
        ChaosScenario(
            name="flash_crowd",
            description="arrivals surge to 2.5x the nominal rate for a "
            "20% window (flash-crowd burst)",
            schedule=lambda T: DisturbanceSchedule.of(
                arrival_burst(0.30 * T, 2.5, 0.20 * T),
            ),
        ),
        ChaosScenario(
            name="misestimate",
            description="observed service demands run 1.5x the planned "
            "p_j for a 30% window (demand mis-estimation)",
            schedule=lambda T: DisturbanceSchedule.of(
                misestimate(0.30 * T, 1.5, 0.30 * T),
            ),
        ),
        ChaosScenario(
            name="perfect_storm",
            description="compound incident: a core failure, a 60% budget "
            "dip and a 2x arrival burst all overlapping mid-run",
            schedule=lambda T: DisturbanceSchedule.of(
                core_fail(0.30 * T, 0, duration=0.25 * T),
                budget_dip(0.35 * T, 0.60, 0.20 * T),
                arrival_burst(0.40 * T, 2.0, 0.15 * T),
            ),
        ),
    )
}


def get_chaos_scenario(name: str) -> ChaosScenario:
    """Look up a chaos scenario by name."""
    if name not in CHAOS_SCENARIOS:
        raise KeyError(
            f"unknown chaos scenario {name!r}; "
            f"available: {', '.join(sorted(CHAOS_SCENARIOS))}"
        )
    return CHAOS_SCENARIOS[name]


def chaos_config(
    scenario: ChaosScenario, *, scale: float = 0.02, seed: int = 1
) -> SimulationConfig:
    """The scenario's disturbed configuration at the given scale/seed.

    The undisturbed *twin* of the returned config is
    ``cfg.with_overrides(disturbances=None)`` — identical workload,
    machine and seed, differing only in the schedule (and therefore in
    the config fingerprint).
    """
    from repro.experiments.runner import scaled_config  # local: avoid cycle

    cfg = scaled_config(scale, seed, arrival_rate=scenario.arrival_rate)
    return cfg.with_overrides(disturbances=scenario.schedule(cfg.horizon))
