"""Figure 11: GE quality and energy vs the number of cores.

Core counts m = 2^0 .. 2^6 at a fixed budget and arrival rate.  Paper
shape: few cores give poor quality at high energy (each core must run
fast on the convex power curve); quality rises and energy falls as
cores are added, saturating once extra cores no longer change the job
distribution.  The x-axis is the exponent, matching the paper's
"Number of Cores 2^x".
"""

from __future__ import annotations

from typing import Sequence
from repro.core.ge import make_ge
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import run_single, scaled_config

__all__ = ["run", "CORE_EXPONENTS"]

CORE_EXPONENTS = (0, 1, 2, 3, 4, 5, 6)


def run(
    scale: float = 0.05,
    seed: int = 1,
    arrival_rate: float = 150.0,
    exponents: Sequence[int] = CORE_EXPONENTS,
) -> FigureResult:
    """Regenerate Fig. 11 (quality + energy vs 2^x cores)."""
    fig = FigureResult(
        figure_id="fig11",
        title=f"GE vs number of cores (λ={arrival_rate:g} req/s)",
        x_label="number of cores 2^x",
    )
    from repro.core.ge import GEScheduler

    arms = {
        "GE": make_ge,
        # With many weak cores the equal power share cannot serve a large
        # job by its deadline; pinning the distribution to WF shows the
        # saturation plateau the paper describes (see EXPERIMENTS.md).
        "GE-WF": lambda: GEScheduler(name="GE-WF", distribution="wf"),
    }
    for name, factory in arms.items():
        q = Series(label=name)
        e = Series(label=name)
        for x in exponents:
            cfg = scaled_config(scale, seed, arrival_rate=arrival_rate, m=2**x)
            result = run_single(cfg, factory)
            q.add(x, result.quality)
            e.add(x, result.energy)
        fig.add_series("quality", q)
        fig.add_series("energy", e)
    fig.notes.append("paper: more cores -> higher quality, lower energy, then saturation")
    return fig
