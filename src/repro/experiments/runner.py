"""Shared experiment-running machinery.

Conventions used by every figure module:

* ``scale`` multiplies the paper's 600 s horizon; benchmarks run at
  small scales (tens of simulated seconds), the CLI's ``--paper-scale``
  runs scale 1.0.
* A *scheduler factory* is a zero-argument callable returning a fresh
  :class:`repro.server.scheduler.Scheduler`; fresh instances are
  mandatory because schedulers hold per-run state.
* Policies at the same ``(seed, arrival rate)`` see bit-identical
  arrivals: the workload generator derives every draw from the seed,
  so separate harnesses regenerate the same jobs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.obs.tracer import TracerLike
from repro.experiments.report import FigureResult, Series
from repro.metrics.collector import RunResult
from repro.server.harness import SimulationHarness
from repro.server.scheduler import Scheduler

__all__ = [
    "SchedulerFactory",
    "default_rates",
    "quality_energy_series",
    "run_single",
    "scaled_config",
    "sweep_rates",
]

SchedulerFactory = Callable[[], Scheduler]

#: The paper's x-axis for the arrival-rate sweeps (Figs. 3–8, 10, 12).
PAPER_RATES: tuple = (100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0)


def scaled_config(scale: float, seed: int, **overrides: object) -> SimulationConfig:
    """Paper defaults with the horizon scaled and fields overridden.

    Explicit ``horizon`` or ``seed`` entries in ``overrides`` win over
    the positional ``scale``/``seed`` arguments, so callers can pin an
    exact horizon without reverse-engineering the 600 s baseline.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    overrides.setdefault("horizon", 600.0 * scale)
    return SimulationConfig(seed=seed, **overrides)


def default_rates(scale: float) -> List[float]:
    """The sweep's x-axis; thinned at very small scales to save time."""
    if scale >= 0.08:
        return list(PAPER_RATES)
    return [100.0, 150.0, 180.0, 210.0, 250.0]


def run_single(
    config: SimulationConfig,
    factory: SchedulerFactory,
    tracer: Optional[TracerLike] = None,
) -> RunResult:
    """One run of one policy under one configuration.

    Pass a :class:`repro.obs.Tracer` to record the run's telemetry;
    tracing never changes the result (the tracer only observes).
    """
    return SimulationHarness(config, factory(), tracer=tracer).run()


def _sweep_cell(cell: "tuple[SimulationConfig, SchedulerFactory]") -> RunResult:
    """One (config, factory) sweep cell — module-level so the spawn
    start method can pickle it for :func:`sweep_rates`'s parallel path."""
    config, factory = cell
    return run_single(config, factory)


def sweep_rates(
    config: SimulationConfig,
    factories: Dict[str, SchedulerFactory],
    rates: Sequence[float],
    *,
    parallel: int = 1,
) -> Dict[str, List[RunResult]]:
    """Run each policy at each arrival rate (identical arrivals per rate).

    ``parallel > 1`` fans the cells across a spawn-context process
    pool (factories must then be picklable, i.e. module-level); the
    returned mapping is identical to the sequential one — each cell is
    a pure function of (config, seed), so only wall time changes.
    """
    names = list(factories)
    cells: List["tuple[SimulationConfig, SchedulerFactory]"] = []
    for rate in rates:
        rate_cfg = config.with_overrides(arrival_rate=float(rate))
        for name in names:
            cells.append((rate_cfg, factories[name]))
    if parallel > 1:
        from repro.experiments.fleet import parallel_map  # local: avoid cycle

        results = parallel_map(_sweep_cell, cells, workers=parallel)
    else:
        results = [_sweep_cell(cell) for cell in cells]
    out: Dict[str, List[RunResult]] = {name: [] for name in names}
    for index, result in enumerate(results):
        out[names[index % len(names)]].append(result)
    return out


def quality_energy_series(
    figure: FigureResult,
    results: Dict[str, List[RunResult]],
    rates: Sequence[float],
    *,
    quality_panel: str = "quality",
    energy_panel: str = "energy",
) -> None:
    """Fill the standard quality/energy panels from sweep results."""
    for name, runs in results.items():
        q = Series(label=name)
        e = Series(label=name)
        for rate, run in zip(rates, runs):
            q.add(rate, run.quality)
            e.add(rate, run.energy)
        figure.add_series(quality_panel, q)
        figure.add_series(energy_panel, e)
