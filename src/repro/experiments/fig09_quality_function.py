"""Figure 9: effect of the quality function's concavity parameter c.

Panel (b) plots the quality function Eq. (1) for six values of c —
purely analytic.  Panel (a) runs GE near and past the overload point
for the same values.  Paper shape: larger c (more concave) lets partial
evaluation buy more quality per unit of work, so GE's achieved quality
under stress increases with c.
"""

from __future__ import annotations

import numpy as np

from typing import Sequence
from repro.core.ge import make_ge
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import run_single, scaled_config

__all__ = ["run", "C_VALUES"]

C_VALUES = (0.0005, 0.001, 0.002, 0.003, 0.005, 0.009)
RATES = (180.0, 200.0, 220.0, 240.0)


def run(scale: float = 0.05, seed: int = 1, rates: Sequence[float] = RATES) -> FigureResult:
    """Regenerate Fig. 9 (GE quality per c + the f(x) curves)."""
    fig = FigureResult(
        figure_id="fig09",
        title="Effect of the quality-function concavity c",
        x_label="arrival rate (req/s)",
    )
    # Panel (a): GE service quality under stress for each c.
    for c in C_VALUES:
        series = Series(label=f"c={c:g}")
        for rate in rates:
            cfg = scaled_config(scale, seed, arrival_rate=rate, quality_c=c)
            series.add(rate, run_single(cfg, make_ge).quality)
        fig.add_series("service_quality", series)

    # Panel (b): the quality functions themselves (analytic).
    xs = np.linspace(0.0, 3000.0, 13)
    for c in C_VALUES:
        from repro.quality.functions import ExponentialQuality

        f = ExponentialQuality(c=c, x_max=1000.0)
        curve = Series(label=f"c={c:g}")
        for x in xs:
            curve.add(float(x), float(f(min(x, f.x_max))))
        fig.add_series("quality_function", curve)

    fig.notes.append("paper: larger c (more concave) -> higher GE quality under load")
    return fig
