"""Unit-aware type vocabulary for the simulator (dimensional analysis).

Every core quantity of the paper is a physical quantity — simulated
time (s), dynamic power ``P = a·s^β`` (W) capped by the budget ``H``,
energy ``E = ∫P dt`` (J), work volumes/demands ``p_j, c_j``
(processing units), processing speeds (units/s), and DVFS clock rates
(GHz) — yet Python passes them all around as bare ``float``.  This
module gives each of them a *name* that both humans and tooling can
see, at **zero runtime cost**:

    Watts = Annotated[float, Unit("W")]

``Annotated`` metadata is invisible to the interpreter and to mypy
(the aliases *are* ``float``/``np.ndarray`` as far as type checking is
concerned); the :class:`Unit` marker is read statically by the
``repro.check.units`` dimensional-analysis pass, which infers units
through assignments and arithmetic (``W·s → J``, ``unit / (unit/s) →
s`` …) and flags mismatched additions, comparisons, call arguments and
returns.  See ``docs/static-analysis.md`` ("Dimensional analysis").

Base dimensions
---------------
``s``     simulated seconds
``W``     watts of dynamic power
``unit``  processing units of work volume (1 GHz·s = 1000 units)
``GHz``   DVFS clock rate

Derived:  ``J = W·s`` (energy), ``unit/s`` (processing speed /
throughput), ``unit/GHz/s`` (the machine constant linking clock rate
to throughput), ``1/s`` (arrival rate), ``1`` (dimensionless — named
quality fractions).

The module is deliberately stdlib-only (numpy is referenced only under
``TYPE_CHECKING``) so the static checker — which must run in a bare CI
container — can import the vocabulary without the simulation stack.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Annotated, Dict, Mapping, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - the array aliases are type-only
    import numpy as np

__all__ = [
    "ALIAS_SPECS",
    "DIMENSIONLESS",
    "Dim",
    "Dimensionless",
    "Gigahertz",
    "GigahertzArray",
    "GigahertzLike",
    "GigahertzSeq",
    "Joules",
    "JoulesArray",
    "PerSecond",
    "PerVolume",
    "PowerBudget",
    "QualityArray",
    "QualityFrac",
    "QualityLike",
    "Seconds",
    "SecondsArray",
    "SecondsLike",
    "SecondsSeq",
    "Speed",
    "SpeedArray",
    "SpeedLike",
    "SpeedSeq",
    "Unit",
    "UnitError",
    "UnitsPerGhzSecond",
    "Volume",
    "VolumeArray",
    "VolumeLike",
    "VolumeSeq",
    "Watts",
    "WattsSeq",
    "WattsArray",
    "WattsLike",
    "dim_div",
    "dim_mul",
    "dim_pow",
    "format_dim",
    "parse_spec",
]

#: A canonical dimension: sorted ``(base, exponent)`` pairs, zero
#: exponents elided.  ``()`` is dimensionless.
Dim = Tuple[Tuple[str, int], ...]

DIMENSIONLESS: Dim = ()

#: Base dimension symbols the spec grammar accepts.
_BASES = frozenset({"s", "W", "unit", "GHz"})

#: Derived symbols expanded into base dimensions during parsing.
_DERIVED: Mapping[str, Dim] = {"J": (("W", 1), ("s", 1))}

_FACTOR_RE = re.compile(r"^([A-Za-z]+|1)(?:\^(-?\d+))?$")


class UnitError(ValueError):
    """A malformed unit specification string."""


def _canonical(exps: Dict[str, int]) -> Dim:
    return tuple(sorted((b, e) for b, e in exps.items() if e != 0))


def parse_spec(spec: str) -> Dim:
    """Parse a unit spec like ``"W"``, ``"J"``, ``"unit/GHz/s"``, ``"1"``.

    Grammar: factors joined by ``*`` (multiply) and ``/`` (divide, binds
    left to right, so ``a/b/c = a·b⁻¹·c⁻¹``); each factor is a base or
    derived symbol with an optional integer power (``GHz^2``), or the
    literal ``1`` (dimensionless).
    """
    exps: Dict[str, int] = {}
    sign = 1
    for token in re.split(r"([*/])", spec.replace(" ", "")):
        if token == "*":
            continue
        if token == "/":
            sign = -1
            continue
        match = _FACTOR_RE.match(token)
        if match is None:
            raise UnitError(f"malformed unit spec {spec!r} (at {token!r})")
        symbol, power = match.group(1), int(match.group(2) or 1)
        if symbol == "1":
            pass  # dimensionless factor
        elif symbol in _DERIVED:
            for base, exp in _DERIVED[symbol]:
                exps[base] = exps.get(base, 0) + sign * power * exp
        elif symbol in _BASES:
            exps[symbol] = exps.get(symbol, 0) + sign * power
        else:
            raise UnitError(f"unknown unit symbol {symbol!r} in {spec!r}")
        sign = sign  # '/' applies to every following factor (a/b/c)
    return _canonical(exps)


def dim_mul(a: Dim, b: Dim) -> Dim:
    """Dimension of a product: exponents add (``W · s → J``)."""
    exps = dict(a)
    for base, exp in b:
        exps[base] = exps.get(base, 0) + exp
    return _canonical(exps)


def dim_div(a: Dim, b: Dim) -> Dim:
    """Dimension of a quotient: exponents subtract (``unit / (unit/s) → s``)."""
    exps = dict(a)
    for base, exp in b:
        exps[base] = exps.get(base, 0) - exp
    return _canonical(exps)


def dim_pow(a: Dim, k: int) -> Dim:
    """Dimension of an integer power: exponents scale."""
    return _canonical({base: exp * k for base, exp in a})


def format_dim(dim: Dim) -> str:
    """Human-readable form of a canonical dimension (``"W·s"``, ``"1"``)."""
    if not dim:
        return "1"
    num = [f"{b}" + (f"^{e}" if e != 1 else "") for b, e in dim if e > 0]
    den = [f"{b}" + (f"^{-e}" if e != -1 else "") for b, e in dim if e < 0]
    if not num:
        num = ["1"]
    text = "·".join(num)
    if den:
        text += "/" + "/".join(den)
    return text


@dataclass(frozen=True)
class Unit:
    """Static unit marker carried in ``Annotated`` metadata.

    The marker is inert at runtime (annotations are never evaluated in
    hot paths, and the metadata is invisible to mypy); its ``spec`` is
    what the ``repro.check.units`` pass reads.
    """

    spec: str

    def dim(self) -> Dim:
        """The canonical dimension of this unit."""
        return parse_spec(self.spec)

    def __str__(self) -> str:
        return self.spec


# ---------------------------------------------------------------------------
# Scalar aliases
# ---------------------------------------------------------------------------

#: Simulated time in seconds.
Seconds = Annotated[float, Unit("s")]
#: Dynamic power in watts.
Watts = Annotated[float, Unit("W")]
#: The shared dynamic power budget ``H`` (also watts; named for intent).
PowerBudget = Annotated[float, Unit("W")]
#: Energy in joules (``J = W·s``).
Joules = Annotated[float, Unit("J")]
#: Work volume in processing units (demands ``p_j``, progress ``c_j``).
Volume = Annotated[float, Unit("unit")]
#: Processing speed / throughput in units per second (the paper's ``s``).
Speed = Annotated[float, Unit("unit/s")]
#: DVFS clock rate in GHz.
Gigahertz = Annotated[float, Unit("GHz")]
#: The machine constant linking clock rate to throughput
#: (paper default: 1000 units per GHz·second).
UnitsPerGhzSecond = Annotated[float, Unit("unit/GHz/s")]

#: Marginal quality per processing unit — the slope of a quality
#: function (Quality-OPT's KKT multiplier lives in this dimension).
PerVolume = Annotated[float, Unit("1/unit")]
#: Arrival / event rates per second (λ).
PerSecond = Annotated[float, Unit("1/s")]
#: Dimensionless quality fraction in [0, 1] (``Q``, ``Q_GE``, ``f(x)``).
QualityFrac = Annotated[float, Unit("1")]
#: Any other dimensionless scalar (fractions, scale factors, ratios).
Dimensionless = Annotated[float, Unit("1")]

# ---------------------------------------------------------------------------
# Array and scalar-or-array aliases (type-only numpy reference)
# ---------------------------------------------------------------------------

SecondsArray = Annotated["np.ndarray", Unit("s")]
WattsArray = Annotated["np.ndarray", Unit("W")]
JoulesArray = Annotated["np.ndarray", Unit("J")]
VolumeArray = Annotated["np.ndarray", Unit("unit")]
SpeedArray = Annotated["np.ndarray", Unit("unit/s")]
GigahertzArray = Annotated["np.ndarray", Unit("GHz")]
QualityArray = Annotated["np.ndarray", Unit("1")]

#: Scalar-or-array forms for the ufunc-style APIs (PowerModel, quality
#: functions) that accept either.
SecondsLike = Annotated[Union[float, "np.ndarray"], Unit("s")]
WattsLike = Annotated[Union[float, "np.ndarray"], Unit("W")]
VolumeLike = Annotated[Union[float, "np.ndarray"], Unit("unit")]
SpeedLike = Annotated[Union[float, "np.ndarray"], Unit("unit/s")]
GigahertzLike = Annotated[Union[float, "np.ndarray"], Unit("GHz")]
QualityLike = Annotated[Union[float, "np.ndarray"], Unit("1")]

#: Sequence forms for the list-based hot-path signatures.
SecondsSeq = Annotated[Sequence[float], Unit("s")]
VolumeSeq = Annotated[Sequence[float], Unit("unit")]
WattsSeq = Annotated[Sequence[float], Unit("W")]
SpeedSeq = Annotated[Sequence[float], Unit("unit/s")]
GigahertzSeq = Annotated[Sequence[float], Unit("GHz")]

#: Alias name → unit spec, for the static checker's annotation parser.
#: Kept in one place so the checker and the vocabulary cannot drift.
ALIAS_SPECS: Mapping[str, str] = {
    "Seconds": "s",
    "Watts": "W",
    "PowerBudget": "W",
    "Joules": "J",
    "Volume": "unit",
    "Speed": "unit/s",
    "Gigahertz": "GHz",
    "UnitsPerGhzSecond": "unit/GHz/s",
    "PerSecond": "1/s",
    "PerVolume": "1/unit",
    "QualityFrac": "1",
    "Dimensionless": "1",
    "SecondsArray": "s",
    "WattsArray": "W",
    "JoulesArray": "J",
    "VolumeArray": "unit",
    "SpeedArray": "unit/s",
    "GigahertzArray": "GHz",
    "QualityArray": "1",
    "SecondsLike": "s",
    "WattsLike": "W",
    "VolumeLike": "unit",
    "SpeedLike": "unit/s",
    "GigahertzLike": "GHz",
    "QualityLike": "1",
    "SecondsSeq": "s",
    "VolumeSeq": "unit",
    "WattsSeq": "W",
    "SpeedSeq": "unit/s",
    "GigahertzSeq": "GHz",
}
