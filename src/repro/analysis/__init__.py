"""Analytical (fluid-limit) models that cross-validate the simulator.

In the limit of many jobs, GE's Longest-First cut behaves like a
deterministic *waterline* on the demand distribution: every job is
processed to ``min(X, L)`` where ``L`` solves
``E[f(min(X, L))] = Q_GE · E[f(X)]``.  From that waterline the expected
kept volume, the expected quality, and a lower bound on the energy rate
all follow in closed or quadrature form.

These predictions are used three ways:

* as oracle tests — the simulator must converge to them as the horizon
  grows (``tests/analysis/``);
* as fast what-if answers (``examples/capacity_planning.py`` scale
  questions without running a simulation);
* as the energy *lower bound* every measured run is checked against.
"""

from repro.analysis.fluid import (
    energy_rate_lower_bound,
    expected_kept_volume,
    expected_quality_at_level,
    predict_cut_stats,
    waterline_for_quality,
)

__all__ = [
    "energy_rate_lower_bound",
    "expected_kept_volume",
    "expected_quality_at_level",
    "predict_cut_stats",
    "waterline_for_quality",
]
