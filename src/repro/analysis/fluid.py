"""Fluid-limit predictions of GE's cut level, quality and energy.

All expectations over the demand distribution are computed by Gauss–
Legendre quadrature on the distribution's CDF parametrization
(``X = F⁻¹(U)``, ``U ~ Uniform[0,1)``), which is exact enough (1024
nodes) for the smooth integrands involved and avoids a SciPy
dependency in this package's core path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.power.models import PowerModel
from repro.quality.functions import QualityFunction
from repro.units import (
    Dimensionless,
    PerSecond,
    QualityFrac,
    Seconds,
    Volume,
    Watts,
)
from repro.workload.distributions import BoundedPareto

__all__ = [
    "CutStats",
    "energy_rate_lower_bound",
    "expected_kept_volume",
    "expected_quality_at_level",
    "predict_cut_stats",
    "waterline_for_quality",
]

#: Quadrature nodes/weights on (0, 1), shared by every expectation.
_NODES, _WEIGHTS = np.polynomial.legendre.leggauss(1024)
_U = 0.5 * (_NODES + 1.0)  # map [-1,1] -> (0,1)
_W = 0.5 * _WEIGHTS


def _expect(dist: BoundedPareto, g: Callable[[np.ndarray], np.ndarray]) -> float:
    """E[g(X)] for X ~ dist, via inverse-CDF quadrature."""
    x = dist.ppf(_U)
    return float(np.sum(_W * g(np.asarray(x))))


def expected_kept_volume(dist: BoundedPareto, level: Volume) -> Volume:
    """E[min(X, L)]: mean volume per job after a waterline cut at L.

    Closed form for the bounded Pareto:
        E[min(X, L)] = ∫₀^L (1 − F(x)) dx
    evaluated by quadrature (the integrand is smooth and bounded).
    """
    if level <= 0:
        return 0.0
    return _expect(dist, lambda x: np.minimum(x, level))


def expected_quality_at_level(
    f: QualityFunction, dist: BoundedPareto, level: Volume
) -> QualityFrac:
    """E[f(min(X, L))] / E[f(X)]: fluid aggregate quality at waterline L."""
    num = _expect(dist, lambda x: np.asarray(f(np.minimum(x, level))))
    den = _expect(dist, lambda x: np.asarray(f(x)))
    return num / den if den > 0 else 1.0


def waterline_for_quality(
    f: QualityFunction,
    dist: BoundedPareto,
    q_target: QualityFrac,
    *,
    tol: Dimensionless = 1e-6,
    max_iter: int = 80,
) -> Volume:
    """The waterline L at which the fluid aggregate quality equals
    ``q_target`` — the level GE's LF cut converges to over many jobs."""
    if not 0.0 < q_target <= 1.0:
        raise ValueError(f"q_target must be in (0, 1], got {q_target!r}")
    if q_target >= expected_quality_at_level(f, dist, dist.x_max):
        return dist.x_max
    lo, hi = 0.0, dist.x_max
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if expected_quality_at_level(f, dist, mid) < q_target:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * dist.x_max:
            break
    return 0.5 * (lo + hi)


def energy_rate_lower_bound(
    arrival_rate: PerSecond,
    dist: BoundedPareto,
    level: Volume,
    model: PowerModel,
    window: Seconds,
) -> Watts:
    """A lower bound on dynamic power (W) for serving the cut workload.

    Each job's cheapest possible execution stretches its kept volume
    ``v = min(X, L)`` over its *entire* response window ``w`` at the
    constant speed ``v/(u·w)`` (YDS with no contention).  Any feasible
    schedule — on any number of cores, under any policy — pays at least

        λ · E[ P(v/(u·w)) · w ]

    watts, because the power function is convex and windows cannot be
    exceeded.  Contention and mode switching only add to this.
    """
    if arrival_rate <= 0 or window <= 0:
        raise ValueError("arrival_rate and window must be positive")

    def per_job_energy(x: np.ndarray) -> np.ndarray:
        v = np.minimum(x, level)
        speed = model.speed_for_throughput(v / window)
        return np.asarray(model.power(speed)) * window

    return arrival_rate * _expect(dist, per_job_energy)


@dataclass(frozen=True)
class CutStats:
    """Fluid predictions for one (quality function, distribution, Q_GE)."""

    waterline: Volume
    kept_volume: Volume  # E[min(X, L)] in units/job
    kept_fraction: Dimensionless  # kept_volume / E[X]
    quality: QualityFrac  # should equal Q_GE by construction


def predict_cut_stats(
    f: QualityFunction, dist: BoundedPareto, q_target: QualityFrac
) -> CutStats:
    """Waterline + volume/quality summary for a target quality."""
    level = waterline_for_quality(f, dist, q_target)
    kept = expected_kept_volume(dist, level)
    return CutStats(
        waterline=level,
        kept_volume=kept,
        kept_fraction=kept / dist.mean,
        quality=expected_quality_at_level(f, dist, level),
    )
