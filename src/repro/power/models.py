"""The dynamic power model (paper §II-B).

Each core's dynamic power is the convex function ``P(s) = a·s^β`` of
its speed ``s`` (GHz), with ``a > 0`` and ``β > 1`` [Yao et al. '95;
Bansal et al. '07].  The paper's experiments use ``a = 5, β = 2`` so a
core at 2 GHz draws 20 W.  Static power is a common constant offset and
is deliberately excluded (§IV-B).

Speeds map to throughput via ``units_per_ghz_second``: the paper
defines the capacity of a 1 GHz core as 1000 processing units/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.units import (
    Gigahertz,
    GigahertzLike,
    Joules,
    Seconds,
    SpeedLike,
    UnitsPerGhzSecond,
    Volume,
    Watts,
    WattsLike,
)

__all__ = ["PowerModel"]

ArrayOrFloat = Union[float, np.ndarray]


@dataclass(frozen=True)
class PowerModel:
    """Convex speed→power map ``P(s) = a·s^β`` with its inverse.

    Parameters
    ----------
    a:
        Scaling factor (W per GHz^β).  Paper default: 5.
    beta:
        Convexity exponent (> 1).  Paper default: 2.
    units_per_ghz_second:
        Throughput of a 1 GHz core in processing units per second.
        Paper default: 1000.
    """

    a: float = 5.0
    beta: float = 2.0
    units_per_ghz_second: UnitsPerGhzSecond = 1000.0

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ConfigurationError(f"power scale a must be positive, got {self.a!r}")
        if self.beta <= 1:
            raise ConfigurationError(f"beta must exceed 1 for convexity, got {self.beta!r}")
        if self.units_per_ghz_second <= 0:
            raise ConfigurationError("units_per_ghz_second must be positive")

    # -- speed <-> power ---------------------------------------------------
    # ``power`` and ``speed`` must stay on the numpy path even for scalar
    # inputs: numpy's vectorized ``**`` loop and C's libm ``pow`` differ
    # by an ulp on a few percent of inputs, and which one a 0-d operand
    # hits depends on the expression shape (``arr**beta`` stays a 0-d
    # ufunc call; ``(arr/a)**e`` demotes to ``np.float64`` first, whose
    # ``**`` is libm).  A hand-written scalar shortcut would silently
    # change simulated bits, so only the mul/div-only methods below take
    # scalar fast paths — IEEE ``*`` and ``/`` are correctly rounded in
    # every implementation, so scalar and array results are bitwise
    # identical there (asserted in tests/power/test_models.py).
    def power(self, speed: GigahertzLike) -> WattsLike:
        """Dynamic power (W) at ``speed`` (GHz)."""
        arr = np.asarray(speed, dtype=float)
        if np.any(arr < 0):
            raise ValueError("speed must be non-negative")
        out = self.a * arr**self.beta
        return float(out) if np.isscalar(speed) or arr.ndim == 0 else out

    def speed(self, power: WattsLike) -> GigahertzLike:
        """Highest speed (GHz) sustainable at ``power`` (W): inverse of P."""
        arr = np.asarray(power, dtype=float)
        if np.any(arr < 0):
            raise ValueError("power must be non-negative")
        out = (arr / self.a) ** (1.0 / self.beta)
        return float(out) if np.isscalar(power) or arr.ndim == 0 else out

    # -- speed <-> throughput ----------------------------------------------
    def throughput(self, speed: GigahertzLike) -> SpeedLike:
        """Processing units per second at ``speed`` (GHz)."""
        if type(speed) is float or type(speed) is int:
            return float(speed) * self.units_per_ghz_second
        arr = np.asarray(speed, dtype=float)
        out = arr * self.units_per_ghz_second
        return float(out) if np.isscalar(speed) or arr.ndim == 0 else out

    def speed_for_throughput(self, units_per_second: SpeedLike) -> GigahertzLike:
        """Speed (GHz) needed to process ``units_per_second``."""
        if type(units_per_second) is float or type(units_per_second) is int:
            return float(units_per_second) / self.units_per_ghz_second
        arr = np.asarray(units_per_second, dtype=float)
        out = arr / self.units_per_ghz_second
        return float(out) if np.isscalar(units_per_second) or arr.ndim == 0 else out

    # -- derived quantities --------------------------------------------------
    def power_for_work(self, volume: Volume, duration: Seconds) -> Watts:
        """Power (W) to process ``volume`` units in ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        return self.power(self.speed_for_throughput(volume / duration))

    def energy(self, speed: Gigahertz, duration: Seconds) -> Joules:
        """Energy (J) of running at ``speed`` GHz for ``duration`` s."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration!r}")
        return self.power(speed) * duration

    def energy_for_volume(self, volume: Volume, speed: Gigahertz) -> Joules:
        """Energy (J) to process ``volume`` units at constant ``speed``.

        Because P is convex with β > 1, this is increasing in speed:
        E = P(s)·(v / throughput(s)) = a·v/u · s^{β−1}.
        """
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        return self.power(speed) * volume / self.throughput(speed)
