"""Power distribution among cores (paper §III-D).

A *power distribution policy* divides the server's dynamic power budget
``H`` into per-core power **caps**.  A cap limits how fast the core may
run; the core only draws the power its actual speed requires, so unused
headroom costs nothing.

* **Equal-Sharing (ES)** gives every core ``H/m``.  Under light load
  this keeps core speeds close together and prevents the core-speed
  thrashing that the AES↔BQ compensation switching would otherwise
  cause (the convex power curve penalizes speed variance).
* **Water-Filling (WF)** [Du et al., IPDPS'13] satisfies small power
  demands first: every core receives ``min(demand, level)`` where the
  water ``level`` is chosen so allocations sum to the budget.  Under
  heavy load this funnels spare power to overloaded cores and improves
  quality.
* **Hybrid** switches between them at the *critical load* threshold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleError
from repro.units import PowerBudget, WattsArray

__all__ = [
    "DistributionDecision",
    "EqualSharing",
    "HybridDistribution",
    "PowerDistributionPolicy",
    "WaterFilling",
    "water_fill",
]


def water_fill(demands: WattsArray, budget: PowerBudget) -> WattsArray:
    """Water-filling allocation of ``budget`` across ``demands``.

    Each entry receives ``min(demand, level)``; if the total demand fits
    within the budget every demand is fully satisfied (the surplus is
    left unallocated — drawing it would waste energy).  Otherwise the
    common ``level`` is the water line at which the budget is exactly
    exhausted.

    Runs in O(n log n) via a sorted prefix scan; the level itself is the
    closed form ``(budget − Σ_{i<k} d_i) / (n − k)`` of the first sort
    position ``k`` whose candidate falls inside its bracket, evaluated
    for every position at once.

    The scarce branch guarantees ``Σ caps ≤ budget`` exactly: the
    closed-form level exhausts the budget only up to float rounding, so
    any accumulated excess (observed up to ~7e-13 on 16 cores) is
    subtracted from the largest allocation.
    """
    demands = np.asarray(demands, dtype=float)
    if budget < 0:
        raise InfeasibleError(f"negative power budget {budget!r}")
    if np.any(demands < 0):
        raise ValueError("power demands must be non-negative")
    if demands.size == 0:
        return demands.copy()
    total = float(np.sum(demands))
    if total <= budget:
        return demands.copy()

    # Find the water level L with sum(min(d_i, L)) == budget: with the
    # k smallest demands fully satisfied and the rest capped at
    # L >= sorted_d[k-1], solve prefix[k-1] + (n-k)L = budget.  The
    # candidate levels for every k come from one vectorized expression;
    # the valid k is the first whose candidate sits inside its bracket.
    order = np.argsort(demands, kind="stable")
    sorted_d = demands[order]
    prefix = np.cumsum(sorted_d)
    n = demands.size
    below = np.concatenate([[0.0], prefix[:-1]])
    lo_bounds = np.concatenate([[0.0], sorted_d[:-1]])
    candidates = (budget - below) / (n - np.arange(n))
    valid = (lo_bounds - 1e-12 <= candidates) & (candidates <= sorted_d + 1e-12)
    if np.any(valid):
        level = float(candidates[int(np.argmax(valid))])
    else:  # pragma: no cover - unreachable given total > budget
        level = budget / n
    caps = np.minimum(demands, level)
    # Rounding in the level can overshoot the budget by a few ulps;
    # charge the excess to the largest allocation so the cap-sum
    # invariant (Σ caps ≤ budget) holds exactly.
    _renormalize_caps(caps, budget)
    return caps


def _renormalize_caps(caps: WattsArray, budget: PowerBudget) -> None:
    """Shave ulp overshoot off the largest cap until ``Σ caps ≤ budget``.

    A single subtraction is not always enough: ``caps[top] - excess``
    itself rounds, so the new sum can still sit one ulp over budget
    (found by the hypothesis case in tests/power/test_distribution.py).
    The loop forces at least one-ulp progress per step and terminates
    after a handful of iterations at most.
    """
    excess = float(np.sum(caps)) - budget
    while excess > 0.0:
        top = int(np.argmax(caps))
        reduced = caps[top] - excess
        if reduced == caps[top]:  # excess below the cap's ulp: step down
            reduced = np.nextafter(caps[top], -np.inf)
        caps[top] = reduced
        excess = float(np.sum(caps)) - budget


@dataclass(frozen=True)
class DistributionDecision:
    """Result of a power-distribution step.

    Attributes
    ----------
    caps:
        Per-core power caps (W); ``caps.sum() <= budget`` always holds
        for WF (the allocator renormalizes float drift away), and
        ``caps`` may sum to exactly the budget for ES.  Policies may
        return a *cached* decision when the inputs repeat, so callers
        must treat ``caps`` as read-only.
    policy:
        Short name of the policy that produced the caps ("ES"/"WF").
    """

    caps: WattsArray
    policy: str


class PowerDistributionPolicy(ABC):
    """Strategy interface: demands + budget → per-core power caps."""

    name: str = "?"
    #: Whether :meth:`distribute` reads the demand values at all.  ES
    #: only uses their count, so the scheduler can skip computing the
    #: per-core power demands entirely on the light-load branch.
    needs_demands: bool = True

    @abstractmethod
    def distribute(self, demands: WattsArray, budget: PowerBudget) -> DistributionDecision:
        """Return per-core power caps for the given per-core demands."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class EqualSharing(PowerDistributionPolicy):
    """ES: every core is capped at ``budget / m`` regardless of demand.

    The decision depends only on ``(m, budget)``, so consecutive calls
    with the same shape and budget return one cached decision object.
    """

    name = "ES"
    needs_demands = False

    def __init__(self) -> None:
        self._cache: tuple[int, float, DistributionDecision] | None = None

    def distribute(self, demands: WattsArray, budget: PowerBudget) -> DistributionDecision:
        demands = np.asarray(demands, dtype=float)
        if budget < 0:
            raise InfeasibleError(f"negative power budget {budget!r}")
        if demands.size == 0:
            return DistributionDecision(caps=demands.copy(), policy=self.name)
        cached = self._cache
        if cached is not None and cached[0] == demands.size and cached[1] == budget:
            return cached[2]
        caps = np.full(demands.shape, budget / demands.size)
        decision = DistributionDecision(caps=caps, policy=self.name)
        self._cache = (demands.size, budget, decision)
        return decision


class WaterFilling(PowerDistributionPolicy):
    """WF: satisfy low demands first, pool the rest for loaded cores.

    When total demand exceeds the budget, demands are capped at the
    water level.  When it does not, surplus budget is granted as *extra
    headroom* spread equally — matching the policy's role in BE-style
    schedulers where a core may later need to exceed its estimate.  In
    both branches the caps are renormalized so their sum never exceeds
    the budget by float rounding.

    The allocation is a pure function of ``(demands, budget)``; the
    last decision is cached and returned when the inputs repeat, which
    makes the distribution incremental across scheduler rounds whose
    active-core load vector did not change.
    """

    name = "WF"

    def __init__(self, grant_surplus: bool = True) -> None:
        self.grant_surplus = grant_surplus
        self._cache: tuple[bytes, float, DistributionDecision] | None = None

    def distribute(self, demands: WattsArray, budget: PowerBudget) -> DistributionDecision:
        demands = np.asarray(demands, dtype=float)
        key = demands.tobytes()
        cached = self._cache
        if cached is not None and cached[0] == key and cached[1] == budget:
            return cached[2]
        base = water_fill(demands, budget)
        if self.grant_surplus and base.size:
            surplus = budget - float(np.sum(base))
            if surplus > 1e-12:
                base = base + surplus / base.size
                # The equal spread can re-introduce a few ulps of
                # overshoot; charge them to the largest cap so
                # Σ caps ≤ budget stays exact.
                _renormalize_caps(base, budget)
        decision = DistributionDecision(caps=base, policy=self.name)
        self._cache = (key, budget, decision)
        return decision


class HybridDistribution(PowerDistributionPolicy):
    """The paper's hybrid: ES under light load, WF under heavy load.

    The caller decides lightness (via :mod:`repro.core.load`) and passes
    it to :meth:`distribute_for_load`; :meth:`distribute` alone defaults
    to the light-load branch so the class still satisfies the strategy
    interface.
    """

    name = "HYBRID"

    def __init__(
        self,
        light: PowerDistributionPolicy | None = None,
        heavy: PowerDistributionPolicy | None = None,
    ) -> None:
        self.light = light or EqualSharing()
        self.heavy = heavy or WaterFilling()

    def distribute(self, demands: WattsArray, budget: PowerBudget) -> DistributionDecision:
        return self.light.distribute(demands, budget)

    def distribute_for_load(
        self, demands: WattsArray, budget: PowerBudget, heavy_load: bool
    ) -> DistributionDecision:
        """Dispatch to the WF branch iff ``heavy_load``."""
        policy = self.heavy if heavy_load else self.light
        return policy.distribute(demands, budget)
