"""Power distribution among cores (paper §III-D).

A *power distribution policy* divides the server's dynamic power budget
``H`` into per-core power **caps**.  A cap limits how fast the core may
run; the core only draws the power its actual speed requires, so unused
headroom costs nothing.

* **Equal-Sharing (ES)** gives every core ``H/m``.  Under light load
  this keeps core speeds close together and prevents the core-speed
  thrashing that the AES↔BQ compensation switching would otherwise
  cause (the convex power curve penalizes speed variance).
* **Water-Filling (WF)** [Du et al., IPDPS'13] satisfies small power
  demands first: every core receives ``min(demand, level)`` where the
  water ``level`` is chosen so allocations sum to the budget.  Under
  heavy load this funnels spare power to overloaded cores and improves
  quality.
* **Hybrid** switches between them at the *critical load* threshold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleError

__all__ = [
    "DistributionDecision",
    "EqualSharing",
    "HybridDistribution",
    "PowerDistributionPolicy",
    "WaterFilling",
    "water_fill",
]


def water_fill(demands: np.ndarray, budget: float) -> np.ndarray:
    """Water-filling allocation of ``budget`` across ``demands``.

    Each entry receives ``min(demand, level)``; if the total demand fits
    within the budget every demand is fully satisfied (the surplus is
    left unallocated — drawing it would waste energy).  Otherwise the
    common ``level`` is the water line at which the budget is exactly
    exhausted.

    Runs in O(n log n) via a sorted prefix scan.
    """
    demands = np.asarray(demands, dtype=float)
    if budget < 0:
        raise InfeasibleError(f"negative power budget {budget!r}")
    if np.any(demands < 0):
        raise ValueError("power demands must be non-negative")
    if demands.size == 0:
        return demands.copy()
    total = float(np.sum(demands))
    if total <= budget:
        return demands.copy()

    # Find the water level L with sum(min(d_i, L)) == budget.
    order = np.argsort(demands, kind="stable")
    sorted_d = demands[order]
    prefix = np.cumsum(sorted_d)
    n = demands.size
    level = None
    for k in range(n):
        # Suppose the k smallest demands are fully satisfied and the
        # rest capped at L >= sorted_d[k-1]: prefix[k-1] + (n-k)L = budget.
        below = prefix[k - 1] if k > 0 else 0.0
        candidate = (budget - below) / (n - k)
        lo = sorted_d[k - 1] if k > 0 else 0.0
        if lo - 1e-12 <= candidate <= sorted_d[k] + 1e-12:
            level = candidate
            break
    if level is None:  # pragma: no cover - unreachable given total > budget
        level = budget / n
    return np.minimum(demands, level)


@dataclass(frozen=True)
class DistributionDecision:
    """Result of a power-distribution step.

    Attributes
    ----------
    caps:
        Per-core power caps (W); ``caps.sum() <= budget`` always holds
        for WF, and ``caps`` may sum to exactly the budget for ES.
    policy:
        Short name of the policy that produced the caps ("ES"/"WF").
    """

    caps: np.ndarray
    policy: str


class PowerDistributionPolicy(ABC):
    """Strategy interface: demands + budget → per-core power caps."""

    name: str = "?"

    @abstractmethod
    def distribute(self, demands: np.ndarray, budget: float) -> DistributionDecision:
        """Return per-core power caps for the given per-core demands."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class EqualSharing(PowerDistributionPolicy):
    """ES: every core is capped at ``budget / m`` regardless of demand."""

    name = "ES"

    def distribute(self, demands: np.ndarray, budget: float) -> DistributionDecision:
        demands = np.asarray(demands, dtype=float)
        if budget < 0:
            raise InfeasibleError(f"negative power budget {budget!r}")
        if demands.size == 0:
            return DistributionDecision(caps=demands.copy(), policy=self.name)
        caps = np.full(demands.shape, budget / demands.size)
        return DistributionDecision(caps=caps, policy=self.name)


class WaterFilling(PowerDistributionPolicy):
    """WF: satisfy low demands first, pool the rest for loaded cores.

    When total demand exceeds the budget, demands are capped at the
    water level.  When it does not, surplus budget is granted as *extra
    headroom* spread equally — matching the policy's role in BE-style
    schedulers where a core may later need to exceed its estimate.
    """

    name = "WF"

    def __init__(self, grant_surplus: bool = True) -> None:
        self.grant_surplus = grant_surplus

    def distribute(self, demands: np.ndarray, budget: float) -> DistributionDecision:
        base = water_fill(np.asarray(demands, dtype=float), budget)
        if self.grant_surplus and base.size:
            surplus = budget - float(np.sum(base))
            if surplus > 1e-12:
                base = base + surplus / base.size
        return DistributionDecision(caps=base, policy=self.name)


class HybridDistribution(PowerDistributionPolicy):
    """The paper's hybrid: ES under light load, WF under heavy load.

    The caller decides lightness (via :mod:`repro.core.load`) and passes
    it to :meth:`distribute_for_load`; :meth:`distribute` alone defaults
    to the light-load branch so the class still satisfies the strategy
    interface.
    """

    name = "HYBRID"

    def __init__(
        self,
        light: PowerDistributionPolicy | None = None,
        heavy: PowerDistributionPolicy | None = None,
    ) -> None:
        self.light = light or EqualSharing()
        self.heavy = heavy or WaterFilling()

    def distribute(self, demands: np.ndarray, budget: float) -> DistributionDecision:
        return self.light.distribute(demands, budget)

    def distribute_for_load(
        self, demands: np.ndarray, budget: float, heavy_load: bool
    ) -> DistributionDecision:
        """Dispatch to the WF branch iff ``heavy_load``."""
        policy = self.heavy if heavy_load else self.light
        return policy.distribute(demands, budget)
