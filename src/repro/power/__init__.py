"""Power modelling: dynamic power, DVFS speed scaling, budget division.

* :mod:`repro.power.models` — the convex dynamic-power model
  ``P = a·s^β`` of §II-B with its inverse, and energy helpers.
* :mod:`repro.power.dvfs` — continuous and discrete speed scaling
  (speed ladders and the paper's §IV-A-5 rectification procedure).
* :mod:`repro.power.distribution` — Equal-Sharing, Water-Filling and
  the hybrid policy of §III-D, plus the discrete variant.
"""

from repro.power.distribution import (
    DistributionDecision,
    EqualSharing,
    HybridDistribution,
    PowerDistributionPolicy,
    WaterFilling,
    water_fill,
)
from repro.power.dvfs import ContinuousSpeedScale, DiscreteSpeedScale, SpeedScale
from repro.power.models import PowerModel

__all__ = [
    "ContinuousSpeedScale",
    "DiscreteSpeedScale",
    "DistributionDecision",
    "EqualSharing",
    "HybridDistribution",
    "PowerDistributionPolicy",
    "PowerModel",
    "SpeedScale",
    "WaterFilling",
    "water_fill",
]
