"""Speed scaling models: continuous and discrete DVFS.

The main experiments use *continuous* per-core DVFS (any non-negative
speed).  §IV-A-5/Fig. 12 studies *discrete* speed scaling: cores only
run at levels from a fixed ladder, and the paper's rectification rule
rounds each core's water-filled speed **up** to the nearest level when
the budget allows, else down to the next lower level.

:class:`SpeedScale` is the shared interface; the server's executor only
calls :meth:`quantize` and :meth:`max_speed_at_power`, so schedulers
are agnostic to which model is active.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.power.models import PowerModel
from repro.units import Gigahertz, GigahertzArray, GigahertzSeq, PowerBudget, Watts

__all__ = ["SpeedScale", "ContinuousSpeedScale", "DiscreteSpeedScale"]


class SpeedScale(ABC):
    """Which speeds a core may run at, given the power model."""

    def __init__(self, model: PowerModel) -> None:
        self.model = model

    @abstractmethod
    def quantize(self, speed: Gigahertz) -> Gigahertz:
        """Largest *allowed* speed ≤ ``speed`` (0 is always allowed)."""

    @abstractmethod
    def ceil(self, speed: Gigahertz) -> Gigahertz:
        """Smallest allowed speed ≥ ``speed`` (or the max level)."""

    @abstractmethod
    def max_speed_at_power(self, power: Watts) -> Gigahertz:
        """Largest allowed speed whose power draw is ≤ ``power``."""

    @property
    @abstractmethod
    def top_speed(self) -> Gigahertz:
        """The largest representable speed (may be ``inf``)."""


class ContinuousSpeedScale(SpeedScale):
    """Idealized continuous DVFS: any speed in [0, top] is allowed."""

    def __init__(self, model: PowerModel, top_speed: Gigahertz = math.inf) -> None:
        super().__init__(model)
        if top_speed <= 0:
            raise ConfigurationError(f"top_speed must be positive, got {top_speed!r}")
        self._top = float(top_speed)

    def quantize(self, speed: Gigahertz) -> Gigahertz:
        if speed < 0:
            raise ValueError("speed must be non-negative")
        return min(speed, self._top)

    def ceil(self, speed: Gigahertz) -> Gigahertz:
        if speed < 0:
            raise ValueError("speed must be non-negative")
        return min(speed, self._top)

    def max_speed_at_power(self, power: Watts) -> Gigahertz:
        return min(self.model.speed(power), self._top)

    @property
    def top_speed(self) -> Gigahertz:
        return self._top


class DiscreteSpeedScale(SpeedScale):
    """DVFS restricted to a finite ascending ladder of speed levels.

    Parameters
    ----------
    model:
        The power model (used for power↔speed conversions).
    levels:
        Allowed speeds in GHz.  0 is implicitly allowed (idle).  The
        paper does not publish its ladder; the default 0.25 GHz steps
        up to 3 GHz bracket the 2 GHz average speed of the setup.
    """

    def __init__(
        self,
        model: PowerModel,
        levels: GigahertzSeq | None = None,
    ) -> None:
        super().__init__(model)
        if levels is None:
            levels = np.arange(0.25, 3.0 + 1e-9, 0.25)
        arr = np.asarray(sorted(set(float(v) for v in levels)), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("discrete ladder needs at least one level")
        if np.any(arr <= 0):
            raise ConfigurationError("ladder levels must be positive (0 = idle is implicit)")
        self.levels = arr

    def quantize(self, speed: Gigahertz) -> Gigahertz:
        """Largest level ≤ ``speed``, or 0 if below the lowest level."""
        if speed < 0:
            raise ValueError("speed must be non-negative")
        idx = int(np.searchsorted(self.levels, speed + 1e-12, side="right")) - 1
        return 0.0 if idx < 0 else float(self.levels[idx])

    def ceil(self, speed: Gigahertz) -> Gigahertz:
        """Smallest level ≥ ``speed`` (top level if beyond the ladder)."""
        if speed < 0:
            raise ValueError("speed must be non-negative")
        if speed == 0:
            return 0.0
        idx = int(np.searchsorted(self.levels, speed - 1e-12, side="left"))
        idx = min(idx, self.levels.size - 1)
        return float(self.levels[idx])

    def next_below(self, speed: Gigahertz) -> Gigahertz:
        """Largest level strictly below ``speed`` (0 if none)."""
        idx = int(np.searchsorted(self.levels, speed - 1e-12, side="left")) - 1
        return 0.0 if idx < 0 else float(self.levels[idx])

    def max_speed_at_power(self, power: Watts) -> Gigahertz:
        return self.quantize(self.model.speed(power))

    @property
    def top_speed(self) -> Gigahertz:
        return float(self.levels[-1])

    def rectify(self, speeds: GigahertzArray, budget: PowerBudget) -> GigahertzArray:
        """The paper's §IV-A-5 discrete rectification.

        Starting from the core with the lowest assigned speed, round
        each ideal speed up to the nearest ladder level if the total
        budget still allows it, otherwise round down to the next lower
        level.  Returns the rectified speed vector.
        """
        speeds = np.asarray(speeds, dtype=float)
        out = np.zeros_like(speeds)
        order = np.argsort(speeds, kind="stable")
        committed = 0.0  # power already granted to processed cores
        remaining_ideal = float(np.sum(self.model.power(speeds)))
        for rank, idx in enumerate(order):
            ideal = speeds[idx]
            remaining_ideal -= float(self.model.power(ideal))
            if ideal <= 0:
                continue
            up = self.ceil(ideal)
            # Budget check: committed + this core at `up` + ideal needs
            # of the cores not yet processed must fit in the budget.
            if committed + self.model.power(up) + remaining_ideal <= budget + 1e-9:
                chosen = up
            else:
                chosen = self.quantize(ideal)
                # If even rounding down overshoots (can happen when the
                # ladder is coarse and budget tight), drop another level.
                while chosen > 0 and committed + self.model.power(chosen) > budget + 1e-9:
                    chosen = self.next_below(chosen)
            out[idx] = chosen
            committed += float(self.model.power(chosen))
        return out
