"""Aggregate quality of a set of jobs (paper §II-A).

The average quality achieved by executing a job set is

    Q(J) = Σ_j f(c_j) / Σ_j f(p_j)

where ``c_j`` is the processed volume and ``p_j`` the full demand of
job ``J_j``.  The denominator is the quality that *would* have been
achieved by full processing, so ``Q ∈ [0, 1]``.
"""

from __future__ import annotations

from typing import Annotated, Iterable

import numpy as np

from repro.quality.functions import QualityFunction
from repro.units import Dimensionless, QualityFrac, Unit, VolumeArray, VolumeSeq

#: Iterables of per-job volumes (processing units).
VolumeIter = Annotated[Iterable[float], Unit("unit")]

__all__ = ["aggregate_quality", "quality_ratio", "projected_quality_after_cut"]


def quality_ratio(achieved: Dimensionless, potential: Dimensionless) -> QualityFrac:
    """Safe ratio ``achieved / potential`` treating an empty set as perfect.

    With no jobs (``potential == 0``) there is no quality to lose, so
    the ratio is defined as 1.0 — this matches the monitor's start-up
    behaviour (GE begins in AES mode).
    """
    if potential <= 0.0:
        return 1.0
    return achieved / potential


def aggregate_quality(
    f: QualityFunction,
    processed: VolumeSeq | VolumeArray,
    demands: VolumeSeq | VolumeArray,
) -> QualityFrac:
    """Compute ``Q = Σ f(c_j) / Σ f(p_j)`` for paired volumes/demands."""
    processed_arr = np.asarray(processed, dtype=float)
    demands_arr = np.asarray(demands, dtype=float)
    if processed_arr.shape != demands_arr.shape:
        raise ValueError(
            f"processed {processed_arr.shape} and demands {demands_arr.shape} differ"
        )
    if processed_arr.size == 0:
        return 1.0
    if np.any(processed_arr - demands_arr > 1e-9):
        raise ValueError("processed volume exceeds demand for some job")
    achieved = float(np.sum(f(processed_arr)))
    potential = float(np.sum(f(demands_arr)))
    return quality_ratio(achieved, potential)


def projected_quality_after_cut(
    f: QualityFunction,
    targets: VolumeIter,
    demands: VolumeIter,
    base_achieved: Dimensionless = 0.0,
    base_potential: Dimensionless = 0.0,
) -> QualityFrac:
    """Quality if jobs are processed to ``targets``, on top of history.

    ``base_achieved``/``base_potential`` carry Σf over already-settled
    jobs so the cut can be evaluated against the *cumulative* quality
    the monitor tracks, not just the batch in hand.
    """
    targets_arr = np.asarray(list(targets), dtype=float)
    demands_arr = np.asarray(list(demands), dtype=float)
    achieved = base_achieved + float(np.sum(f(targets_arr))) if targets_arr.size else base_achieved
    potential = (
        base_potential + float(np.sum(f(demands_arr))) if demands_arr.size else base_potential
    )
    return quality_ratio(achieved, potential)
