"""Online quality monitor (paper §III-A / §III-C).

GE "monitors the overall quality continuously upon each scheduled job"
and compares it against the user-specified level to decide between AES
and BQ modes.  :class:`QualityMonitor` maintains the cumulative sums
``Σ f(c_j)`` and ``Σ f(p_j)`` over *settled* jobs — jobs whose outcome
is final because they completed, were cut short deliberately, or
expired at their deadline.

The monitor also supports *projection*: given the volumes a tentative
plan would deliver, it reports the quality the system would land at,
which is what the LF cutting routine optimizes against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

import numpy as np

from repro.quality.aggregate import VolumeIter, quality_ratio
from repro.quality.functions import QualityFunction
from repro.units import Dimensionless, QualityFrac, Seconds, Volume

if TYPE_CHECKING:  # type-only: repro.quality stays a leaf layer at runtime
    from repro.workload.job import Job

__all__ = ["QualityMonitor"]


class QualityMonitor:
    """Tracks cumulative achieved/potential quality of settled jobs.

    Parameters
    ----------
    f:
        The quality function shared by all jobs.
    history:
        Optional exponential decay factor in (0, 1].  With the default
        1.0 the monitor is fully cumulative like the paper's
        formulation; values < 1 weight recent jobs more (provided for
        experimentation, not used by the paper's configuration).
    """

    def __init__(self, f: QualityFunction, history: Dimensionless = 1.0) -> None:
        if not 0.0 < history <= 1.0:
            raise ValueError(f"history factor must be in (0, 1], got {history!r}")
        self.f = f
        self.history = float(history)
        self._achieved: Dimensionless = 0.0
        self._potential: Dimensionless = 0.0
        self._settled_jobs = 0
        self._trace: list[Tuple[Seconds, QualityFrac]] = []

    # ------------------------------------------------------------------
    @property
    def achieved(self) -> Dimensionless:
        """Cumulative Σ f(c_j) over settled jobs."""
        return self._achieved

    @property
    def potential(self) -> Dimensionless:
        """Cumulative Σ f(p_j) over settled jobs."""
        return self._potential

    @property
    def settled_jobs(self) -> int:
        """Number of jobs whose outcome has been recorded."""
        return self._settled_jobs

    @property
    def quality(self) -> QualityFrac:
        """Current cumulative quality ``Q`` (1.0 before any job settles)."""
        return quality_ratio(self._achieved, self._potential)

    # ------------------------------------------------------------------
    def record(self, processed: Volume, demand: Volume, time: Optional[Seconds] = None) -> QualityFrac:
        """Settle one job; returns the updated cumulative quality.

        Parameters
        ----------
        processed:
            Final processed volume ``c_j`` (clamped to ``demand``).
        demand:
            Full processing demand ``p_j``.
        time:
            Simulated time, recorded in the quality trace if given.
        """
        if demand < 0 or processed < 0:
            raise ValueError("volumes must be non-negative")
        processed = min(processed, demand)
        if self.history < 1.0:
            self._achieved *= self.history
            self._potential *= self.history
        self._achieved += float(self.f(processed))
        self._potential += float(self.f(demand))
        self._settled_jobs += 1
        q = self.quality
        if time is not None:
            self._trace.append((float(time), q))
        return q

    def record_job(self, job: Job, time: Optional[Seconds] = None) -> QualityFrac:
        """Settle one job object (hook point for class-aware monitors).

        The base implementation delegates to :meth:`record` with the
        job's volumes; subclasses that map jobs to different quality
        functions override this (see :mod:`repro.mixed`).
        """
        return self.record(job.processed, job.demand, time=time)

    def expected_quality(self, jobs: Iterable[Job]) -> QualityFrac:
        """Aggregate quality recomputed directly from job records.

        Used by :func:`repro.validation.validate_run` to audit the
        monitor's bookkeeping against first principles.
        """
        achieved = sum(float(self.f(j.processed)) for j in jobs)
        potential = sum(float(self.f(j.demand)) for j in jobs)
        return quality_ratio(achieved, potential)

    def projected(self, targets: VolumeIter, demands: VolumeIter) -> QualityFrac:
        """Quality if a batch is delivered at ``targets`` on top of history."""
        targets_arr = np.asarray(list(targets), dtype=float)
        demands_arr = np.asarray(list(demands), dtype=float)
        achieved = self._achieved
        potential = self._potential
        if targets_arr.size:
            achieved = achieved + float(np.sum(self.f(targets_arr)))
            potential = potential + float(np.sum(self.f(demands_arr)))
        return quality_ratio(achieved, potential)

    def deficit(self, target_quality: QualityFrac) -> Dimensionless:
        """Achieved-quality shortfall Σf needed to reach ``target_quality``.

        Positive when the monitor is below target; used by tests and
        diagnostics to quantify how far compensation has to go.
        """
        return max(0.0, target_quality * self._potential - self._achieved)

    @property
    def trace(self) -> list[Tuple[Seconds, QualityFrac]]:
        """Chronological ``(time, quality)`` samples (when times given)."""
        return list(self._trace)

    def reset(self) -> None:
        """Forget all settled jobs (for reuse across replications)."""
        self._achieved = 0.0
        self._potential = 0.0
        self._settled_jobs = 0
        self._trace.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QualityMonitor(q={self.quality:.4f}, settled={self._settled_jobs}, "
            f"achieved={self._achieved:.3f}, potential={self._potential:.3f})"
        )
