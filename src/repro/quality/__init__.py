"""Quality model for "good enough" services.

Implements the paper's §II-A: a concave *quality function* maps the
processed volume of a (possibly partially executed) job to a perceived
quality in [0, 1]; the aggregate quality of a job set is
``Q = Σ f(c_j) / Σ f(p_j)``.

* :mod:`repro.quality.functions` — the exponential-concave function of
  Eq. (1) plus alternative concave shapes, with exact and binary-search
  inverses.
* :mod:`repro.quality.aggregate` — aggregate-quality computations.
* :mod:`repro.quality.monitor` — the online quality monitor that drives
  the AES↔BQ compensation policy.
"""

from repro.quality.aggregate import aggregate_quality, quality_ratio
from repro.quality.functions import (
    ExponentialQuality,
    LinearQuality,
    LogQuality,
    PowerQuality,
    QualityFunction,
)
from repro.quality.monitor import QualityMonitor

__all__ = [
    "ExponentialQuality",
    "LinearQuality",
    "LogQuality",
    "PowerQuality",
    "QualityFunction",
    "QualityMonitor",
    "aggregate_quality",
    "quality_ratio",
]
