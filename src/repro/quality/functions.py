"""Concave quality functions (paper §II-A, Eq. 1).

A quality function ``f`` maps processed volume ``x ≥ 0`` (in processing
units) to perceived quality.  The paper's experiments use the
exponential-concave form

    f(x) = (1 - exp(-c x)) / (1 - exp(-c x_max)),

normalized so ``f(x_max) = 1``.  The family is captured by the
:class:`QualityFunction` interface, which also exposes the derivative
(marginal quality, needed by Quality-OPT's KKT condition) and the
inverse (needed by the LF job-cutting's final fractional step).

The paper prescribes binary search for the inverse; :meth:`inverse`
implements that, while subclasses may additionally provide a
closed-form ``inverse_exact`` used to cross-check the search in tests.
All functions accept scalars or NumPy arrays.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.units import (
    Dimensionless,
    PerVolume,
    QualityArray,
    QualityFrac,
    QualityLike,
    Volume,
    VolumeArray,
    VolumeLike,
)

__all__ = [
    "QualityFunction",
    "ExponentialQuality",
    "LinearQuality",
    "LogQuality",
    "PowerQuality",
]

ArrayLike = Union[float, np.ndarray]


class QualityFunction(ABC):
    """Non-decreasing concave map from processed volume to quality.

    Contract: ``f(0) = 0``, ``f`` is non-decreasing and concave on
    ``[0, x_max]``, and ``f(x_max) = 1``.  Inputs above ``x_max`` clamp
    to ``x_max`` (processing beyond the demand adds no quality);
    negative inputs are a caller bug and raise.
    """

    def __init__(self, x_max: Volume) -> None:
        if x_max <= 0:
            raise ConfigurationError(f"x_max must be positive, got {x_max!r}")
        self.x_max = float(x_max)

    # -- core interface -------------------------------------------------
    def __call__(self, x: VolumeLike) -> QualityLike:
        """Quality of processed volume ``x``."""
        if type(x) is float or type(x) is int:  # scalar fast path (hot)
            if x < 0:
                raise ValueError("processed volume must be non-negative")
            return self._value_scalar(min(float(x), self.x_max))
        arr = np.asarray(x, dtype=float)
        if np.any(arr < 0):
            raise ValueError("processed volume must be non-negative")
        clamped = np.minimum(arr, self.x_max)
        out = self._value(clamped)
        return float(out) if np.isscalar(x) or arr.ndim == 0 else out

    def derivative(self, x: ArrayLike) -> ArrayLike:
        """Marginal quality ``f'(x)`` (0 beyond ``x_max``)."""
        arr = np.asarray(x, dtype=float)
        if np.any(arr < 0):
            raise ValueError("processed volume must be non-negative")
        out = np.where(arr >= self.x_max, 0.0, self._slope(np.minimum(arr, self.x_max)))
        return float(out) if np.isscalar(x) or arr.ndim == 0 else out

    def inverse(self, q: QualityFrac, *, tol: Volume = 1e-9, max_iter: int = 200) -> Volume:
        """Smallest volume whose quality is ``q``, via binary search.

        The paper (§III-B step 5) uses binary search on the concave
        function; we keep that as the canonical implementation and use
        closed forms only for cross-checking.

        Parameters
        ----------
        q:
            Target quality in [0, 1].
        tol:
            Absolute tolerance on the returned volume.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"target quality must be in [0, 1], got {q!r}")
        if q <= 0.0:
            return 0.0
        if q >= 1.0:
            return self.x_max
        lo, hi = 0.0, self.x_max
        for _ in range(max_iter):
            mid = 0.5 * (lo + hi)
            if self(mid) < q:
                lo = mid
            else:
                hi = mid
            if hi - lo <= tol:
                break
        return 0.5 * (lo + hi)

    # -- subclass hooks ---------------------------------------------------
    def _value_scalar(self, x: Volume) -> QualityFrac:
        """Scalar quality for ``x`` already clamped to [0, x_max].

        The default delegates to the vectorized form; hot subclasses
        override with pure-``math`` implementations (the online monitor
        evaluates f twice per settled job).
        """
        return float(self._value(np.float64(x)))

    @abstractmethod
    def _value(self, x: VolumeArray) -> QualityArray:
        """Quality for ``x`` already clamped to [0, x_max]."""

    @abstractmethod
    def _slope(self, x: np.ndarray) -> np.ndarray:
        """Derivative for ``x`` already clamped to [0, x_max]."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(x_max={self.x_max})"


class ExponentialQuality(QualityFunction):
    """The paper's Eq. (1): ``f(x) = (1 - e^{-cx}) / (1 - e^{-c·x_max})``.

    ``c`` controls concavity: larger ``c`` concentrates quality in the
    head of the job (Fig. 9b).  The paper's default is ``c = 0.003``
    with ``x_max = 1000``.
    """

    def __init__(self, c: PerVolume = 0.003, x_max: Volume = 1000.0) -> None:
        super().__init__(x_max)
        if c <= 0:
            raise ConfigurationError(f"concavity c must be positive, got {c!r}")
        self.c = float(c)
        self._norm = 1.0 - math.exp(-self.c * self.x_max)

    def _value(self, x: VolumeArray) -> QualityArray:
        return (1.0 - np.exp(-self.c * x)) / self._norm

    def _value_scalar(self, x: Volume) -> QualityFrac:
        return (1.0 - math.exp(-self.c * x)) / self._norm

    def _slope(self, x: np.ndarray) -> np.ndarray:
        return self.c * np.exp(-self.c * x) / self._norm

    def inverse_exact(self, q: QualityFrac) -> Volume:
        """Closed-form inverse, for cross-checking the binary search."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"target quality must be in [0, 1], got {q!r}")
        if q >= 1.0:
            return self.x_max
        return -math.log(1.0 - q * self._norm) / self.c

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExponentialQuality(c={self.c}, x_max={self.x_max})"


class LinearQuality(QualityFunction):
    """``f(x) = x / x_max`` — the degenerate (non-strictly) concave case.

    With linear quality, partial processing buys quality exactly
    proportionally, so approximate computing has no leverage; used in
    tests and sensitivity studies as the null case.
    """

    def _value(self, x: VolumeArray) -> QualityArray:
        return x / self.x_max

    def _slope(self, x: np.ndarray) -> np.ndarray:
        return np.full_like(x, 1.0 / self.x_max)

    def inverse_exact(self, q: QualityFrac) -> Volume:
        """Closed-form inverse."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"target quality must be in [0, 1], got {q!r}")
        return q * self.x_max


class LogQuality(QualityFunction):
    """``f(x) = log(1 + kx) / log(1 + k·x_max)`` — an alternative concave shape."""

    def __init__(self, k: PerVolume = 0.01, x_max: Volume = 1000.0) -> None:
        super().__init__(x_max)
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k!r}")
        self.k = float(k)
        self._norm = math.log1p(self.k * self.x_max)

    def _value(self, x: VolumeArray) -> QualityArray:
        return np.log1p(self.k * x) / self._norm

    def _slope(self, x: np.ndarray) -> np.ndarray:
        return self.k / ((1.0 + self.k * x) * self._norm)

    def inverse_exact(self, q: QualityFrac) -> Volume:
        """Closed-form inverse."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"target quality must be in [0, 1], got {q!r}")
        return float(np.expm1(q * self._norm) / self.k)


class PowerQuality(QualityFunction):
    """``f(x) = (x / x_max)^γ`` with ``0 < γ ≤ 1`` (e.g. sqrt for γ=0.5)."""

    def __init__(self, gamma: Dimensionless = 0.5, x_max: Volume = 1000.0) -> None:
        super().__init__(x_max)
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma!r}")
        self.gamma = float(gamma)

    def _value(self, x: VolumeArray) -> QualityArray:
        return (x / self.x_max) ** self.gamma

    def _slope(self, x: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            ratio = np.asarray(x, dtype=float) / self.x_max
            slope = np.where(
                ratio > 0.0,
                self.gamma * ratio ** (self.gamma - 1.0) / self.x_max,
                np.inf if self.gamma < 1.0 else 1.0 / self.x_max,
            )
        return slope

    def inverse_exact(self, q: QualityFrac) -> Volume:
        """Closed-form inverse."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"target quality must be in [0, 1], got {q!r}")
        return self.x_max * q ** (1.0 / self.gamma)
