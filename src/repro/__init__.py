"""repro — reproduction of *"When Good Enough Is Better: Energy-Aware
Scheduling for Multicore Servers"* (Hui, Du, Liu, Sun, He, Bader —
IPDPSW 2017).

The package provides:

* the **GE (Good Enough)** online scheduler — approximate computing via
  Longest-First job cutting, an AES↔BQ quality compensation policy,
  and a hybrid Equal-Sharing / Water-Filling power distribution —
  together with every substrate it needs (a discrete-event simulation
  kernel, a DVFS multicore server model, Energy-OPT/YDS speed scaling,
  and the Quality-OPT partial-processing allocator);
* all the paper's baselines (BE, OQ, FCFS, FDFS, LJF, SJF, BE-P, BE-S);
* an experiment harness regenerating every figure of the evaluation
  (see :mod:`repro.experiments` and the ``repro-cli`` entry point).

Quickstart
----------
>>> from repro import SimulationConfig, SimulationHarness, make_ge
>>> config = SimulationConfig(arrival_rate=120.0, horizon=20.0)
>>> result = SimulationHarness(config, make_ge()).run()
>>> 0.8 < result.quality <= 1.0
True
"""

from repro.baselines import (
    FCFS,
    FDFS,
    LJF,
    SJF,
    calibrate_power_control,
    calibrate_speed_control,
)
from repro.config import PAPER_DEFAULTS, SimulationConfig
from repro.core import GEScheduler, make_be, make_ge, make_oq
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.metrics import MetricsCollector, RunResult
from repro.power import PowerModel
from repro.quality import ExponentialQuality, QualityFunction, QualityMonitor
from repro.server import SimulationHarness
from repro.sim import Simulator
from repro.workload import BoundedPareto, Job, JobOutcome, PoissonWorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "FCFS",
    "FDFS",
    "LJF",
    "SJF",
    "BoundedPareto",
    "ConfigurationError",
    "ExponentialQuality",
    "GEScheduler",
    "InfeasibleError",
    "Job",
    "JobOutcome",
    "MetricsCollector",
    "PAPER_DEFAULTS",
    "PoissonWorkloadGenerator",
    "PowerModel",
    "QualityFunction",
    "QualityMonitor",
    "ReproError",
    "RunResult",
    "SchedulingError",
    "SimulationConfig",
    "SimulationError",
    "SimulationHarness",
    "Simulator",
    "calibrate_power_control",
    "calibrate_speed_control",
    "make_be",
    "make_ge",
    "make_oq",
]
