"""Content-addressed run registry: store, list, show and diff runs.

A *run* is one simulation execution; its identity is the pair the
simulator itself guarantees to be reproducible — the configuration
fingerprint (:meth:`SimulationConfig.fingerprint`, a hash of every
field including the seed) plus the scheduler that ran on it.  The
registry stores one directory per run:

.. code-block:: text

    <root>/
      <fingerprint>-<seed>-<scheduler>/
        summary.json          # schema repro.run/1 (see make_summary)
        trace.jsonl           # optional: the raw record spill

``<root>`` defaults to ``./.repro-runs`` and can be overridden with
the ``REPRO_RUNS_DIR`` environment variable or the ``--runs-dir`` CLI
flag.  ``summary.json`` carries the run metadata, the final
:class:`~repro.metrics.collector.RunResult` as a plain dict, and the
streaming telemetry (windowed aggregates, SLO compliance, per-core
utilization, metrics) — everything ``repro runs diff`` and ``repro
report`` consume, with no need to reload the raw trace.

The registry also holds fleet rollup documents (schema
``repro.fleet/1``, ids ``fleet-<grid digest>``) written by
:mod:`repro.experiments.fleet`; they live alongside per-run entries
and are rendered by :func:`format_fleet` / the fleet HTML dashboard.

Same fingerprint + scheduler ⇒ same run id ⇒ storing again
*overwrites* — runs are content-addressed, so a re-execution of an
identical configuration produces an identical summary (the simulator
is deterministic) and the store stays deduplicated.

This module records **wall-clock** storage timestamps
(``created_unix``) so humans can order store entries; that is the one
sim-lint SIM001 exemption in :mod:`repro.obs` and it never touches
simulated time.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ReproError

__all__ = [
    "FLEET_SCHEMA",
    "RUN_SCHEMA",
    "RUNS_DIR_ENV",
    "RunStore",
    "diff_runs",
    "format_diff",
    "format_fleet",
    "format_run",
    "format_runs_table",
    "make_summary",
    "run_id_for",
]

#: Version tag stamped on every ``summary.json``.
RUN_SCHEMA = "repro.run/1"

#: Version tag of a fleet rollup document (see
#: :mod:`repro.experiments.fleet`) — stored in the same registry,
#: addressed as ``fleet-<grid digest>``.
FLEET_SCHEMA = "repro.fleet/1"

#: Schemas :meth:`RunStore.load` understands.
_KNOWN_SCHEMAS = frozenset({RUN_SCHEMA, FLEET_SCHEMA})

#: Environment variable overriding the default store root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default store root, relative to the working directory.
DEFAULT_ROOT = ".repro-runs"

#: Result fields worth diffing numerically (the rest are identity).
_RESULT_FIELDS = (
    "quality", "energy", "static_energy", "jobs", "aes_fraction",
    "mean_speed", "speed_variance", "utilization", "completed_volume",
    "duration",
)


def _slug(text: str) -> str:
    out = []
    for ch in str(text).lower():
        out.append(ch if ch.isalnum() else "-")
    slug = "".join(out).strip("-")
    while "--" in slug:
        slug = slug.replace("--", "-")
    return slug or "run"


def run_id_for(meta: Dict[str, Any]) -> str:
    """The content address of a run: ``<fingerprint>-<seed>-<scheduler>``.

    The fingerprint already covers the seed; it is repeated in the id
    so humans can group seed ladders of one configuration at a glance.
    """
    fingerprint = meta.get("config_fingerprint")
    if not fingerprint:
        raise ReproError(
            "run metadata has no config_fingerprint — "
            "was the run traced through the harness?"
        )
    seed = meta.get("seed", "x")
    return f"{fingerprint}-{seed}-{_slug(str(meta.get('scheduler', 'run')))}"


def make_summary(
    telemetry: Dict[str, Any],
    *,
    result: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a storable ``repro.run/1`` summary.

    ``telemetry`` is :meth:`repro.obs.stream.StreamingTracer.summary`
    output (or an equivalent dict built from an offline fold);
    ``result`` is the run's :class:`RunResult` as a plain dict
    (``dataclasses.asdict``) when available.  The wall-clock
    ``created_unix`` stamp is added by :meth:`RunStore.save`.
    """
    telemetry = dict(telemetry)
    meta = dict(telemetry.pop("meta", {}))
    return {
        "schema": RUN_SCHEMA,
        "run_id": run_id_for(meta),
        "meta": meta,
        "result": dict(result) if result is not None else None,
        "telemetry": telemetry,
    }


class RunStore:
    """One directory per run, keyed by configuration fingerprint + seed."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        if root is None:
            root = os.environ.get(RUNS_DIR_ENV) or DEFAULT_ROOT
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, run_id: str) -> Path:
        """The run's directory (existing or not)."""
        return self.root / run_id

    def resolve(self, run_id: str) -> str:
        """Resolve a possibly-abbreviated run id to a stored one.

        Exact match wins; otherwise a unique prefix is accepted
        (``repro runs show 1a2b3c`` without the full id).
        """
        if (self.root / run_id / "summary.json").is_file():
            return run_id
        matches = [e for e in self.ids() if e.startswith(run_id)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ReproError(f"no stored run matches {run_id!r} under {self.root}")
        raise ReproError(
            f"run id {run_id!r} is ambiguous: {', '.join(sorted(matches))}"
        )

    def ids(self) -> List[str]:
        """All stored run ids (directories holding a summary.json)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / "summary.json").is_file()
        )

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def save(
        self,
        summary: Dict[str, Any],
        *,
        trace_path: Optional[Union[str, Path]] = None,
    ) -> str:
        """Store one run; returns its id.

        ``summary`` must follow :func:`make_summary`'s layout (it is
        completed with the schema tag and a wall-clock ``created_unix``
        stamp).  An existing entry with the same id is overwritten —
        identical configurations produce identical summaries, so this
        is idempotent, not lossy.  ``trace_path`` copies a raw JSONL
        trace into the entry as ``trace.jsonl``.
        """
        summary = dict(summary)
        summary.setdefault("schema", RUN_SCHEMA)
        run_id = summary.get("run_id") or run_id_for(dict(summary.get("meta", {})))
        summary["run_id"] = run_id
        summary["created_unix"] = time.time()
        run_dir = self.path_for(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        if trace_path is not None:
            source = Path(trace_path)
            target = run_dir / "trace.jsonl"
            if source.resolve() != target.resolve():
                shutil.copyfile(source, target)
        return run_id

    def load(self, run_id: str) -> Dict[str, Any]:
        """Load one stored summary (accepts unique id prefixes)."""
        run_id = self.resolve(run_id)
        path = self.root / run_id / "summary.json"
        summary = json.loads(path.read_text(encoding="utf-8"))
        schema = summary.get("schema")
        if schema not in _KNOWN_SCHEMAS:
            raise ReproError(
                f"{path}: unsupported run schema {schema!r} "
                f"(this reader understands {', '.join(sorted(_KNOWN_SCHEMAS))})"
            )
        return dict(summary)

    def trace_path(self, run_id: str) -> Optional[Path]:
        """The stored raw trace, if the run kept one."""
        path = self.root / self.resolve(run_id) / "trace.jsonl"
        return path if path.is_file() else None

    def list(self) -> List[Dict[str, Any]]:
        """One row per stored run, newest first.

        Ordering is deterministic: descending ``created_unix`` with the
        run id as tie-breaker, so equal timestamps (coarse clocks,
        fixture stores) still list identically everywhere.
        """
        rows: List[Dict[str, Any]] = []
        for run_id in self.ids():
            summary = self.load(run_id)
            meta = summary.get("meta", {})
            result = summary.get("result") or {}
            slo = (summary.get("telemetry") or {}).get("slo", {})
            rows.append({
                "run_id": run_id,
                "schema": summary.get("schema"),
                "created_unix": summary.get("created_unix"),
                "scheduler": meta.get("scheduler"),
                "arrival_rate": meta.get("arrival_rate"),
                "horizon": meta.get("horizon"),
                "seed": meta.get("seed"),
                "quality": result.get("quality"),
                "energy": result.get("energy"),
                "slo_compliant": slo.get("compliant"),
                "slo_violations": slo.get("violations"),
                "has_trace": self.trace_path(run_id) is not None,
            })
        rows.sort(key=lambda r: (-(r["created_unix"] or 0.0), r["run_id"]))
        return rows

    def delete(self, run_id: str) -> None:
        """Remove one stored run (directory and all artifacts)."""
        shutil.rmtree(self.root / self.resolve(run_id))

    def gc(self, keep: int, *, pin: Sequence[str] = ()) -> List[str]:
        """Prune the store down to the ``keep`` newest runs.

        Age is ``created_unix`` via :meth:`list`'s deterministic
        ordering.  Ids in ``pin`` (full ids or unique prefixes) are
        never deleted and do not count against ``keep`` — pinned
        baselines survive any gc.  Returns the deleted ids, oldest
        last.
        """
        if keep < 0:
            raise ReproError(f"gc keep count must be >= 0, got {keep}")
        pinned = {self.resolve(p) for p in pin}
        kept = 0
        deleted: List[str] = []
        for row in self.list():
            run_id = str(row["run_id"])
            if run_id in pinned:
                continue
            if kept < keep:
                kept += 1
                continue
            self.delete(run_id)
            deleted.append(run_id)
        return deleted


# ----------------------------------------------------------------------
# Cross-run diffing
# ----------------------------------------------------------------------
def _numeric_delta(a: Any, b: Any) -> Dict[str, Any]:
    row: Dict[str, Any] = {"a": a, "b": b}
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        row["delta"] = b - a
        if a:
            row["ratio"] = b / a
    return row


def diff_runs(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured comparison of two ``repro.run/1`` summaries.

    Sections: changed ``meta`` keys, numeric ``result`` deltas, per-SLO
    compliance, counter deltas and phase-profile wall-time ratios.
    Identical values are omitted from ``meta``/``counters`` so the diff
    surfaces what moved.
    """
    meta_a, meta_b = a.get("meta", {}), b.get("meta", {})
    meta_diff = {
        key: {"a": meta_a.get(key), "b": meta_b.get(key)}
        for key in sorted(set(meta_a) | set(meta_b))
        if key != "slo" and meta_a.get(key) != meta_b.get(key)
    }

    result_a, result_b = a.get("result") or {}, b.get("result") or {}
    result_diff = {
        field: _numeric_delta(result_a.get(field), result_b.get(field))
        for field in _RESULT_FIELDS
        if field in result_a or field in result_b
    }

    slo_a = ((a.get("telemetry") or {}).get("slo") or {}).get("slos", {})
    slo_b = ((b.get("telemetry") or {}).get("slo") or {}).get("slos", {})
    slo_diff: Dict[str, Any] = {}
    for name in sorted(set(slo_a) | set(slo_b)):
        row_a, row_b = slo_a.get(name, {}), slo_b.get(name, {})
        slo_diff[name] = {
            "compliant": {"a": row_a.get("compliant"), "b": row_b.get("compliant")},
            "compliance": _numeric_delta(
                row_a.get("compliance"), row_b.get("compliance")
            ),
        }

    metrics_a = (a.get("telemetry") or {}).get("metrics") or {}
    metrics_b = (b.get("telemetry") or {}).get("metrics") or {}

    def _of_kind(metrics: Dict[str, Any], kind: str) -> Dict[str, Any]:
        return {k: v for k, v in metrics.items() if v.get("kind") == kind}

    counters_a, counters_b = _of_kind(metrics_a, "counter"), _of_kind(metrics_b, "counter")
    counter_diff = {
        name: _numeric_delta(
            counters_a.get(name, {}).get("value"),
            counters_b.get(name, {}).get("value"),
        )
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, {}).get("value") != counters_b.get(name, {}).get("value")
    }

    phases_a, phases_b = _of_kind(metrics_a, "phase"), _of_kind(metrics_b, "phase")
    phase_diff = {
        name: _numeric_delta(
            phases_a.get(name, {}).get("total_s"),
            phases_b.get(name, {}).get("total_s"),
        )
        for name in sorted(set(phases_a) | set(phases_b))
    }

    return {
        "runs": {"a": a.get("run_id"), "b": b.get("run_id")},
        "meta": meta_diff,
        "result": result_diff,
        "slo": slo_diff,
        "counters": counter_diff,
        "phases": phase_diff,
    }


# ----------------------------------------------------------------------
# Text rendering (the CLI prints these; obs itself never prints)
# ----------------------------------------------------------------------
def _fmt(value: Any, digits: int = 6) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def format_runs_table(rows: List[Dict[str, Any]]) -> str:
    """Render :meth:`RunStore.list` rows as an aligned text table."""
    if not rows:
        return "no stored runs"
    lines = [
        f"{'run id':<42} {'scheduler':<12} {'λ':>6} {'horizon':>8} "
        f"{'quality':>8} {'energy':>10} {'slo':>4} {'trace':>5}"
    ]
    for row in rows:
        slo = "-"
        if row["slo_compliant"] is not None:
            slo = "ok" if row["slo_compliant"] else f"{row['slo_violations']}!"
        lines.append(
            f"{row['run_id']:<42} {_fmt(row['scheduler']):<12} "
            f"{_fmt(row['arrival_rate'], 4):>6} {_fmt(row['horizon'], 4):>8} "
            f"{_fmt(row['quality'], 4):>8} {_fmt(row['energy'], 6):>10} "
            f"{slo:>4} {'yes' if row['has_trace'] else '-':>5}"
        )
    return "\n".join(lines)


def format_run(summary: Dict[str, Any]) -> str:
    """Render one stored summary as human-readable text."""
    meta = summary.get("meta", {})
    telemetry = summary.get("telemetry") or {}
    lines = [f"run {summary.get('run_id', '?')}"]
    head = [
        f"scheduler={meta.get('scheduler', '?')}",
        f"λ={_fmt(meta.get('arrival_rate'), 4)}/s",
        f"horizon={_fmt(meta.get('horizon'), 4)}s",
        f"seed={_fmt(meta.get('seed'))}",
        f"cores={_fmt(meta.get('cores'))}",
        f"H={_fmt(meta.get('budget'), 4)}W",
        f"Q_GE={_fmt(meta.get('q_ge'), 4)}",
    ]
    lines.append("  " + "  ".join(head))
    result = summary.get("result")
    if result:
        lines.append(
            f"  result: quality={_fmt(result.get('quality'), 6)} "
            f"energy={_fmt(result.get('energy'), 6)}J "
            f"jobs={_fmt(result.get('jobs'))} "
            f"util={_fmt(result.get('utilization'), 4)}"
        )
    slo = telemetry.get("slo") or {}
    if slo:
        verdict = "compliant" if slo.get("compliant") else (
            f"{slo.get('violations', '?')} violation(s)"
        )
        lines.append(f"  slo: {verdict}")
        for name, row in (slo.get("slos") or {}).items():
            mark = "ok " if row.get("compliant") else "VIOL"
            extra = ""
            violation = row.get("first_violation")
            if violation:
                extra = (f"  first at t={_fmt(violation.get('time'), 6)}s "
                         f"value={_fmt(violation.get('value'), 6)}")
            lines.append(
                f"    [{mark}] {name:<16} threshold={_fmt(row.get('threshold'), 4)} "
                f"compliance={_fmt(row.get('compliance'), 4)}"
                f"{'  (no data)' if row.get('no_data') else ''}{extra}"
            )
    counts = telemetry.get("record_counts")
    if counts:
        lines.append(
            f"  records: {counts.get('span', 0)} spans, "
            f"{counts.get('event', 0)} events, {counts.get('sample', 0)} samples"
        )
    return "\n".join(lines)


def format_fleet(summary: Dict[str, Any]) -> str:
    """Render one ``repro.fleet/1`` rollup summary as text."""
    meta = summary.get("meta", {})
    rollup = summary.get("rollup") or {}
    tasks = rollup.get("tasks") or {}
    lines = [
        f"fleet {summary.get('run_id', '?')}  "
        f"mode={meta.get('mode', '?')}  workers={_fmt(meta.get('workers'))}"
    ]
    lines.append(
        f"  tasks: {_fmt(tasks.get('total'))} total, "
        f"{_fmt(tasks.get('succeeded'))} succeeded, "
        f"{_fmt(tasks.get('failed'))} failed"
    )
    throughput = rollup.get("throughput") or {}
    if throughput:
        lines.append(
            f"  throughput: {_fmt(throughput.get('events'))} events in "
            f"{_fmt(throughput.get('worker_wall_s'), 4)}s worker-wall "
            f"({_fmt(throughput.get('events_per_sec'), 6)} ev/s)"
        )
    scenarios = rollup.get("scenarios") or {}
    if scenarios:
        lines.append(
            f"  {'scenario':<14} {'tasks':>5} {'slo':>9} "
            f"{'Q min':>8} {'Q mean':>8} {'Q max':>8} {'energy J':>12}"
        )
        for name in sorted(scenarios):
            row = scenarios[name]
            evaluated = row.get("slo_evaluated", 0)
            slo = "-"
            if evaluated:
                slo = f"{row.get('slo_compliant', 0)}/{evaluated}"
            lines.append(
                f"  {name:<14} {_fmt(row.get('tasks')):>5} {slo:>9} "
                f"{_fmt(row.get('quality_min'), 4):>8} "
                f"{_fmt(row.get('quality_mean'), 4):>8} "
                f"{_fmt(row.get('quality_max'), 4):>8} "
                f"{_fmt(row.get('energy_sum'), 6):>12}"
            )
    quantiles = rollup.get("quantiles") or {}
    for name in sorted(quantiles):
        qs = quantiles[name] or {}
        if qs:
            pairs = "  ".join(f"{k}={_fmt(v, 4)}" for k, v in sorted(qs.items()))
            lines.append(f"  {name}: {pairs}")
    dropped = rollup.get("dropped") or {}
    total_dropped = sum(dropped.values()) if dropped else 0
    if total_dropped:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()) if v)
        lines.append(f"  dropped messages: {total_dropped} ({pairs})")
    violations = rollup.get("slo_violation_events")
    if violations:
        lines.append(f"  live slo violation events: {violations}")
    errors = summary.get("errors") or []
    for error in errors:
        lines.append(
            f"  ERROR [{error.get('kind', '?')}] task={error.get('task', '?')} "
            f"worker={_fmt(error.get('worker'))}: {error.get('exception', '')}"
        )
    return "\n".join(lines)


def format_diff(diff: Dict[str, Any]) -> str:
    """Render :func:`diff_runs` output as human-readable text."""
    lines = [f"diff {diff['runs']['a']} → {diff['runs']['b']}"]
    if diff["meta"]:
        lines.append("  config:")
        for key, row in diff["meta"].items():
            lines.append(f"    {key}: {_fmt(row['a'])} → {_fmt(row['b'])}")
    if diff["result"]:
        lines.append("  result:")
        for field, row in diff["result"].items():
            arrow = f"{_fmt(row['a'])} → {_fmt(row['b'])}"
            if "ratio" in row:
                arrow += f"  ({row['ratio']:.4g}x)"
            lines.append(f"    {field:<18} {arrow}")
    if diff["slo"]:
        lines.append("  slo:")
        for name, row in diff["slo"].items():
            comp = row["compliance"]
            lines.append(
                f"    {name:<16} compliant {_fmt(row['compliant']['a'])} → "
                f"{_fmt(row['compliant']['b'])}, compliance "
                f"{_fmt(comp.get('a'), 4)} → {_fmt(comp.get('b'), 4)}"
            )
    if diff["counters"]:
        lines.append("  counters (changed):")
        for name, row in diff["counters"].items():
            lines.append(f"    {name:<32} {_fmt(row['a'])} → {_fmt(row['b'])}")
    if diff["phases"]:
        lines.append("  phases (wall time, informational):")
        for name, row in diff["phases"].items():
            arrow = f"{_fmt(row['a'], 4)}s → {_fmt(row['b'], 4)}s"
            if "ratio" in row:
                arrow += f"  ({row['ratio']:.3g}x)"
            lines.append(f"    {name:<32} {arrow}")
    return "\n".join(lines)
