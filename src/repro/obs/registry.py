"""A small metrics registry: counters, gauges and histograms.

The tracer carries one :class:`MetricsRegistry`; instrumented code
requests named instruments lazily (``registry.counter("scheduler.rounds")``)
so the set of metrics is defined by what actually ran.  Instruments are
deliberately minimal — the registry is for *simulation* telemetry
(queue depth, batch size, cut fraction, per-round latency), not a
general monitoring system:

* :class:`Counter` — monotone count;
* :class:`Gauge` — last-written value;
* :class:`Histogram` — streaming count/sum/min/max plus fixed linear
  buckets over ``[0, bound)`` for cheap shape inspection;
* :class:`PhaseTimer` — aggregated wall time of one profiled phase
  (fed by :class:`repro.obs.prof.PhaseProfiler`, the only component
  allowed to read the monotonic clock).

``snapshot()`` renders everything to JSON-native dicts for export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "PhaseTimer"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount!r}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. current queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of observed values.

    Tracks count / sum / min / max exactly, plus ``nbuckets`` equal-width
    buckets over ``[0, bound)`` with an overflow bucket at the end.  The
    default bound of 1.0 suits ratios (cut fraction); pass a larger
    bound for sizes or latencies.
    """

    __slots__ = ("name", "bound", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, *, bound: float = 1.0, nbuckets: int = 10) -> None:
        if bound <= 0 or nbuckets < 1:
            raise ValueError(f"histogram {name}: bound and nbuckets must be positive")
        self.name = name
        self.bound = float(bound)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (nbuckets + 1)  # last = overflow

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        nbuckets = len(self.buckets) - 1
        idx = int(value / self.bound * nbuckets) if value >= 0 else 0
        self.buckets[min(idx, nbuckets)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bound": self.bound,
            "buckets": list(self.buckets),
        }


class PhaseTimer:
    """Aggregated wall time of one profiled phase.

    Tracks call count plus total and max *elapsed wall seconds*.  The
    values measure host-side cost (scheduler overhead, planner math) and
    never feed back into simulated time — a run's results are identical
    whatever these read.  Written by
    :class:`repro.obs.prof.PhaseProfiler`; this class itself never
    touches a clock.
    """

    __slots__ = ("name", "count", "total", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, elapsed: float) -> None:
        """Add one timed call of ``elapsed`` wall seconds."""
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        """Mean wall seconds per call (0 when never called)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {
            "kind": "phase",
            "count": self.count,
            "total_s": self.total,
            "max_s": self.max,
            "mean_s": self.mean,
        }


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory, kind) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, *, bound: float = 1.0, nbuckets: int = 10) -> Histogram:
        """Get or create the named histogram (shape args apply on creation)."""
        return self._get(
            name, lambda: Histogram(name, bound=bound, nbuckets=nbuckets), Histogram
        )

    def phase_timer(self, name: str) -> PhaseTimer:
        """Get or create the named phase timer."""
        return self._get(name, lambda: PhaseTimer(name), PhaseTimer)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Name → JSON-native instrument state, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self.names()}
