"""A small metrics registry: counters, gauges and histograms.

The tracer carries one :class:`MetricsRegistry`; instrumented code
requests named instruments lazily (``registry.counter("scheduler.rounds")``)
so the set of metrics is defined by what actually ran.  Instruments are
deliberately minimal — the registry is for *simulation* telemetry
(queue depth, batch size, cut fraction, per-round latency), not a
general monitoring system:

* :class:`Counter` — monotone count;
* :class:`Gauge` — last-written value;
* :class:`Histogram` — streaming count/sum/min/max plus fixed linear
  buckets over ``[0, bound)`` for cheap shape inspection (with explicit
  overflow/underflow counts for values outside the bucket range);
* :class:`QuantileSketch` — constant-memory P² percentile estimates
  (no buckets to size, no raw samples retained);
* :class:`PhaseTimer` — aggregated wall time of one profiled phase
  (fed by :class:`repro.obs.prof.PhaseProfiler`, the only component
  allowed to read the monotonic clock).

``snapshot()`` renders everything to JSON-native dicts for export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "PhaseTimer",
    "QuantileSketch",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount!r}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. current queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of observed values.

    Tracks count / sum / min / max exactly, plus ``nbuckets`` equal-width
    buckets over ``[0, bound)`` with an overflow bucket at the end.  The
    default bound of 1.0 suits ratios (cut fraction); pass a larger
    bound for sizes or latencies.

    Observations outside ``[0, bound)`` are still clamped into the edge
    buckets (so the bucket array always sums to ``count``), but they are
    *counted* explicitly: ``overflow`` is the number of observations at
    or above ``bound`` and ``underflow`` the number below zero.  Both
    appear in :meth:`snapshot`, so a mis-sized bound is visible from the
    artifact instead of silently flattening the distribution's tail.
    """

    __slots__ = (
        "name", "bound", "count", "total", "min", "max", "buckets",
        "overflow", "underflow",
    )

    def __init__(self, name: str, *, bound: float = 1.0, nbuckets: int = 10) -> None:
        if bound <= 0 or nbuckets < 1:
            raise ValueError(f"histogram {name}: bound and nbuckets must be positive")
        self.name = name
        self.bound = float(bound)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (nbuckets + 1)  # last = overflow
        self.overflow = 0
        self.underflow = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        nbuckets = len(self.buckets) - 1
        if value < 0:
            self.underflow += 1
            idx = 0
        else:
            idx = int(value / self.bound * nbuckets)
            if idx >= nbuckets:
                self.overflow += 1
        self.buckets[min(idx, nbuckets)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bound": self.bound,
            "buckets": list(self.buckets),
            "overflow": self.overflow,
            "underflow": self.underflow,
        }


class P2Quantile:
    """One quantile estimated online with the P² algorithm (Jain & Chlamtac).

    Five markers track the running estimate of the ``q``-quantile in
    O(1) memory and O(1) time per observation — no raw samples are
    retained and no bucket bound has to be guessed up front.  The
    estimate is exact for the first five observations and a
    piecewise-parabolic interpolation afterwards; the classic error
    bound is a few percent of the local inter-quantile spacing for
    smooth distributions (see ``docs/observability.md``).

    The update is a pure function of the observation *sequence*, so two
    folds of the same stream (e.g. online during a run and offline from
    the exported JSONL) produce bit-identical estimates.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rate")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = float(q)
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        """Fold one observation into the estimate."""
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # 1. Find the cell and update the extreme markers.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= heights[k + 1]:
                k += 1
        # 2. Shift marker positions right of the cell.
        for i in range(k + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rate[i]
        # 3. Adjust the three interior markers toward their desired
        #    positions with parabolic (falling back to linear)
        #    interpolation.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> Optional[float]:
        """Current estimate (exact below five observations; None empty)."""
        heights = self._heights
        if not heights:
            return None
        if len(heights) < 5:
            # Exact small-sample quantile: nearest-rank on the sorted
            # values (deterministic, no interpolation).
            rank = max(0, min(len(heights) - 1, int(self.q * len(heights))))
            return heights[rank]
        return heights[2]


class QuantileSketch:
    """Constant-memory percentile estimates over one value stream.

    Tracks count / min / max exactly plus one :class:`P2Quantile`
    marker set per requested quantile.  ``snapshot()`` renders the
    estimates under ``"p50"``-style keys.  Memory is O(len(qs)) —
    independent of the observation count — which is what lets
    :class:`repro.obs.stream.StreamingTracer` report percentiles over
    arbitrarily long horizons without buffering a trace.
    """

    __slots__ = ("name", "count", "min", "max", "_estimators")

    def __init__(
        self, name: str, *, qs: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> None:
        if not qs:
            raise ValueError(f"quantile sketch {name}: qs must be non-empty")
        self.name = name
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._estimators: Tuple[P2Quantile, ...] = tuple(P2Quantile(q) for q in qs)

    @property
    def qs(self) -> Tuple[float, ...]:
        """The tracked quantiles, in construction order."""
        return tuple(e.q for e in self._estimators)

    def observe(self, value: float) -> None:
        """Record one observation in every tracked quantile."""
        value = float(value)
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for estimator in self._estimators:
            estimator.observe(value)

    def estimate(self, q: float) -> Optional[float]:
        """Estimate for one tracked quantile (KeyError if untracked)."""
        for estimator in self._estimators:
            if estimator.q == q:
                return estimator.value
        raise KeyError(f"quantile {q!r} not tracked by sketch {self.name!r}")

    @staticmethod
    def _label(q: float) -> str:
        text = f"{q * 100:g}"
        return f"p{text}"

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state (``estimates`` keyed ``p50``/``p90``/...)."""
        return {
            "kind": "quantiles",
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "qs": list(self.qs),
            "estimates": {
                self._label(e.q): e.value for e in self._estimators
            },
        }


class PhaseTimer:
    """Aggregated wall time of one profiled phase.

    Tracks call count plus total and max *elapsed wall seconds*.  The
    values measure host-side cost (scheduler overhead, planner math) and
    never feed back into simulated time — a run's results are identical
    whatever these read.  Written by
    :class:`repro.obs.prof.PhaseProfiler`; this class itself never
    touches a clock.
    """

    __slots__ = ("name", "count", "total", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, elapsed: float) -> None:
        """Add one timed call of ``elapsed`` wall seconds."""
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        """Mean wall seconds per call (0 when never called)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state."""
        return {
            "kind": "phase",
            "count": self.count,
            "total_s": self.total,
            "max_s": self.max,
            "mean_s": self.mean,
        }


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory, kind) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, *, bound: float = 1.0, nbuckets: int = 10) -> Histogram:
        """Get or create the named histogram (shape args apply on creation)."""
        return self._get(
            name, lambda: Histogram(name, bound=bound, nbuckets=nbuckets), Histogram
        )

    def quantiles(
        self, name: str, *, qs: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> QuantileSketch:
        """Get or create the named quantile sketch (``qs`` applies on creation)."""
        return self._get(
            name, lambda: QuantileSketch(name, qs=qs), QuantileSketch
        )

    def phase_timer(self, name: str) -> PhaseTimer:
        """Get or create the named phase timer."""
        return self._get(name, lambda: PhaseTimer(name), PhaseTimer)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Name → JSON-native instrument state, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self.names()}
