"""The process-wide tracer and its zero-overhead null twin.

:class:`Tracer` collects the four telemetry streams the simulator can
emit (see ``docs/observability.md`` for the schema):

* **job spans** — arrival → enqueue → assignment → cut → execution
  slices → settlement, with exec slices as child spans;
* **scheduler events** — AES↔BQ mode switches, compensation episodes,
  ES↔WF policy flips, per-round decisions;
* **core timelines** — per-core speed/power/cumulative-energy samples
  at quantum boundaries;
* **metrics** — a :class:`repro.obs.registry.MetricsRegistry` of
  counters/gauges/histograms.

Instrumented hot paths guard every call with ``if tracer.enabled:`` and
default to the shared :data:`NULL_TRACER`, whose ``enabled`` is
``False`` — a disabled run pays one attribute read per trace point and
performs **no** allocations inside :mod:`repro.obs` (asserted by
``tests/obs/test_overhead.py``).

The tracer only *reads* simulation state and never schedules events, so
enabling it cannot perturb results: a fixed-seed run produces a
bit-identical :class:`repro.metrics.collector.RunResult` with tracing
on or off (pinned by ``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.obs.prof import NULL_PROFILER, PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.timeline import CoreTimelineSampler, TimelineSample
from repro.units import Gigahertz, Seconds, Volume

if TYPE_CHECKING:  # type-only: repro.obs stays import-light at runtime
    from repro.core.decisions import Decision
    from repro.server.machine import MulticoreServer
    from repro.workload.job import Job

__all__ = ["NULL_TRACER", "NullTracer", "Trace", "Tracer", "TracerLike"]

#: Anything instrumented code accepts as its observability sink.
TracerLike = Union["Tracer", "NullTracer"]


class Trace:
    """An immutable-ish bundle of one run's telemetry.

    This is what exporters write and :func:`repro.obs.export.read_jsonl`
    reconstructs; :mod:`repro.obs.analyze` consumes it.
    """

    def __init__(
        self,
        *,
        meta: Optional[Dict[str, Any]] = None,
        spans: Optional[List[SpanRecord]] = None,
        events: Optional[List[EventRecord]] = None,
        samples: Optional[List[TimelineSample]] = None,
        metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> None:
        self.meta = meta or {}
        self.spans = spans or []
        self.events = events or []
        self.samples = samples or []
        self.metrics = metrics or {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.meta == other.meta
            and self.spans == other.spans
            and self.events == other.events
            and self.samples == other.samples
            and self.metrics == other.metrics
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({len(self.spans)} spans, {len(self.events)} events, "
            f"{len(self.samples)} samples, {len(self.metrics)} metrics)"
        )

    def spans_named(self, name: str) -> List[SpanRecord]:
        """All spans of one kind (``"job"``, ``"exec"``)."""
        return [s for s in self.spans if s.name == name]

    def events_of(self, kind: str) -> List[EventRecord]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def children_of(self, span: SpanRecord) -> List[SpanRecord]:
        """Direct child spans, in emission order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def span_events(self, span: SpanRecord) -> List[EventRecord]:
        """Events attached to ``span``, in emission order."""
        return [e for e in self.events if e.span_id == span.span_id]


class Tracer:
    """Collects spans, events, timeline samples and metrics for one run.

    A tracer is single-use: attach it to one
    :class:`repro.server.harness.SimulationHarness`, run, then export or
    analyze :meth:`to_trace`.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.samples: List[TimelineSample] = []
        self.metrics = MetricsRegistry()
        #: Hot-path phase profiler publishing into :attr:`metrics`
        #: (``prof.*`` phase timers; see :mod:`repro.obs.prof`).
        self.profiler = PhaseProfiler(self.metrics)
        self.meta: Dict[str, Any] = {}
        self._seq = 0
        self._next_span_id = 0
        self._job_spans: Dict[int, SpanRecord] = {}
        self._sampler = CoreTimelineSampler()

    # ------------------------------------------------------------------
    # Generic span/event API
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def begin_span(
        self,
        name: str,
        time: Seconds,
        *,
        parent: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> SpanRecord:
        """Open a span at ``time`` (optionally nested under ``parent``)."""
        span = SpanRecord(
            span_id=self._next_span_id,
            name=name,
            start=float(time),
            seq=self._next_seq(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end_span(self, span: SpanRecord, time: Seconds, **attrs: Any) -> None:
        """Close ``span`` at ``time``, merging final attributes."""
        span.close(time, **attrs)

    def event(
        self,
        kind: str,
        time: Seconds,
        *,
        span: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> EventRecord:
        """Record a point event (optionally attached to ``span``)."""
        record = EventRecord(
            time=float(time),
            kind=kind,
            seq=self._next_seq(),
            span_id=span.span_id if span is not None else None,
            attrs=attrs,
        )
        self.events.append(record)
        return record

    # ------------------------------------------------------------------
    # Job lifecycle (called by the harness / scheduler / cores)
    # ------------------------------------------------------------------
    def job_arrived(self, job: Job, time: Seconds) -> SpanRecord:
        """Open the job's root span and record its enqueue."""
        span = self.begin_span(
            "job",
            time,
            jid=job.jid,
            arrival=job.arrival,
            deadline=job.deadline,
            demand=job.demand,
            klass=job.klass,
        )
        self._job_spans[job.jid] = span
        self.event("enqueue", time, span=span)
        return span

    def job_assigned(self, job: Job, core: int, time: Seconds) -> None:
        """Record the C-RR (or baseline) core assignment."""
        self.event("assign", time, span=self._job_spans.get(job.jid), core=core)

    def job_cut(self, job: Job, target: Volume, time: Seconds) -> None:
        """Record an LF-cut target below the job's full demand."""
        self.event(
            "lf_cut",
            time,
            span=self._job_spans.get(job.jid),
            target=float(target),
            demand=job.demand,
        )

    def job_settled(self, job: Job, time: Seconds) -> None:
        """Close the job's span with its outcome and processed volume."""
        span = self._job_spans.pop(job.jid, None)
        if span is None:
            return  # job predates the tracer (never happens via the harness)
        self.event("settle", time, span=span, outcome=job.outcome.value)
        span.close(time, outcome=job.outcome.value, processed=job.processed)

    def exec_start(
        self, job: Job, core: int, speed: Gigahertz, volume: Volume, time: Seconds
    ) -> SpanRecord:
        """Open an execution-slice span nested under the job's span."""
        return self.begin_span(
            "exec",
            time,
            parent=self._job_spans.get(job.jid),
            jid=job.jid,
            core=core,
            speed=float(speed),
            volume=float(volume),
        )

    def exec_end(self, span: SpanRecord, time: Seconds, done: Volume) -> None:
        """Close an execution slice with the volume actually processed."""
        span.close(time, done=float(done))

    # ------------------------------------------------------------------
    # Scheduler telemetry
    # ------------------------------------------------------------------
    def scheduler_event(self, kind: str, time: Seconds, **attrs: Any) -> None:
        """Record a free-standing scheduler event."""
        self.event(kind, time, **attrs)

    def decision(self, decision: Decision) -> None:
        """Record one scheduling round (a ``repro.core.decisions.Decision``)."""
        self.event(
            "decision",
            decision.time,
            mode=decision.mode,
            policy=decision.policy,
            batch_size=decision.batch_size,
            active_jobs=decision.active_jobs,
            monitor_quality=decision.monitor_quality,
            caps=[float(c) for c in decision.caps],
        )

    # ------------------------------------------------------------------
    # Core timelines
    # ------------------------------------------------------------------
    def sample_cores(self, machine: MulticoreServer, time: Seconds) -> None:
        """Snapshot per-core speed/power/energy (quantum boundary)."""
        self.samples.extend(self._sampler.sample(machine, time))

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def run_started(self, time: Seconds, **meta: Any) -> None:
        """Record run metadata (scheduler, config) at run start."""
        self.meta.update(meta)
        self.meta["start"] = float(time)

    def run_finished(self, machine: MulticoreServer, time: Seconds, **meta: Any) -> None:
        """Take the final core sample and stamp the run duration.

        Extra keyword arguments (e.g. ``events=...`` from the harness)
        are merged into the trace metadata.
        """
        self.sample_cores(machine, time)
        self.meta.update(meta)
        self.meta["end"] = float(time)

    def open_spans(self) -> List[SpanRecord]:
        """Spans not yet closed (empty after a fully drained run)."""
        return [s for s in self.spans if s.open]

    def to_trace(self) -> Trace:
        """Freeze the collected telemetry into a :class:`Trace`."""
        return Trace(
            meta=dict(self.meta),
            spans=self.spans,
            events=self.events,
            samples=self.samples,
            metrics=self.metrics.snapshot(),
        )


class NullTracer:
    """Tracing disabled: every hook is a no-op.

    ``enabled`` is ``False``; instrumented code checks it before
    building any arguments, so the only per-trace-point cost of a
    disabled run is that attribute read.  The methods still exist (and
    return ``None``) so un-guarded calls are safe.
    """

    __slots__ = ()

    enabled = False

    #: Shared null profiler, so ``tracer.profiler.phase(...)`` is a
    #: no-op without a guard (mirrors :attr:`Tracer.profiler`).
    profiler = NULL_PROFILER

    def begin_span(
        self,
        name: str,
        time: Seconds,
        *,
        parent: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> None:
        return None

    def end_span(self, span: Optional[SpanRecord], time: Seconds, **attrs: Any) -> None:
        return None

    def event(
        self,
        kind: str,
        time: Seconds,
        *,
        span: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> None:
        return None

    def job_arrived(self, job: Job, time: Seconds) -> None:
        return None

    def job_assigned(self, job: Job, core: int, time: Seconds) -> None:
        return None

    def job_cut(self, job: Job, target: Volume, time: Seconds) -> None:
        return None

    def job_settled(self, job: Job, time: Seconds) -> None:
        return None

    def exec_start(
        self, job: Job, core: int, speed: Gigahertz, volume: Volume, time: Seconds
    ) -> None:
        return None

    def exec_end(self, span: Optional[SpanRecord], time: Seconds, done: Volume) -> None:
        return None

    def scheduler_event(self, kind: str, time: Seconds, **attrs: Any) -> None:
        return None

    def decision(self, decision: Decision) -> None:
        return None

    def sample_cores(self, machine: MulticoreServer, time: Seconds) -> None:
        return None

    def run_started(self, time: Seconds, **meta: Any) -> None:
        return None

    def run_finished(self, machine: MulticoreServer, time: Seconds, **meta: Any) -> None:
        return None


#: Shared process-wide null tracer (stateless, safe to share).
NULL_TRACER = NullTracer()
