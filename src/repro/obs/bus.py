"""The fleet telemetry bus: schema-versioned messages with drop accounting.

A *fleet* run (see :mod:`repro.experiments.fleet`) fans one task grid
across worker processes.  Each worker ships its telemetry to the
central aggregator over a bounded ``multiprocessing.Queue`` as
``repro.bus/1`` messages; this module owns that protocol end to end —
the message schema, the sending discipline, and the fold that turns a
message stream into fleet-level rollups:

* :func:`make_message` / :func:`validate_message` — the ``repro.bus/1``
  envelope (type, worker id, per-worker sequence number, task key,
  payload, wall-clock send stamp);
* :class:`BusSender` — the worker side.  Telemetry messages
  (``progress`` / ``snapshot`` / ``slo_violation``) are *droppable*:
  when the bounded queue is full they are counted and discarded, never
  blocking the simulation.  Lifecycle messages (``hello`` / ``result``
  / ``error`` / ``bye``) are *reliable*: they block (bounded by a
  timeout) because losing one would corrupt the fleet's bookkeeping.
  Every drop is accounted per message type and reported in ``bye``;
* :class:`FleetAggregator` — the receiver side.  Folds the message
  stream into per-task results and error records, per-scenario
  rollups, cross-run quantiles, worker liveness (heartbeat watchdog
  via :meth:`stale_workers`) and fleet-wide drop accounting.

**Reliability model.**  The queue is bounded so a fast worker can never
exhaust the parent's memory; the cost is that telemetry messages are
best-effort.  Drops are *never silent*: the sender counts them per
type, ships the counts in its ``bye`` message, and the rollup sums
them fleet-wide, so a truncated live view is always visible as such.

**Determinism.**  Nothing in this module feeds back into a simulation:
workers are side-effect-free over simulator state, and the bus carries
results *out* only.  Per-task ``RunResult`` payloads therefore stay
bit-identical to a sequential execution of the same grid.  The one
non-deterministic ingredient — wall-clock send/arrival stamps for
liveness — never enters any simulated quantity.

This module is the sanctioned home for wall-clock reads
(``sent_unix`` stamps, heartbeat bookkeeping) and ``multiprocessing``
types in the observability layer: sim-lint exempts it via
``SIM001_MODULE_ALLOWLIST`` and confines ``multiprocessing`` imports
to it plus :mod:`repro.experiments.fleet` (see SIM004 in
``docs/static-analysis.md``).
"""

from __future__ import annotations

import time
from queue import Full
from typing import Any, Dict, List, Optional, Protocol, Tuple

from repro.errors import ReproError

__all__ = [
    "BUS_SCHEMA",
    "DROPPABLE_TYPES",
    "MESSAGE_TYPES",
    "BusSender",
    "FleetAggregator",
    "WorkerState",
    "cross_run_quantiles",
    "make_message",
    "validate_message",
]

#: Version tag carried by every bus message.
BUS_SCHEMA = "repro.bus/1"

#: Every message type of the ``repro.bus/1`` protocol, in lifecycle
#: order: one ``hello`` per worker, then per task a ``progress``
#: (phase ``start``), droppable ``progress``/``snapshot``/
#: ``slo_violation`` telemetry while it runs, exactly one ``result``
#: or ``error``, and finally one ``bye`` carrying the drop counts.
MESSAGE_TYPES: Tuple[str, ...] = (
    "hello", "progress", "snapshot", "slo_violation", "result", "error", "bye",
)

#: Telemetry types the sender may discard (with accounting) when the
#: bounded queue is full.  Everything else is reliable.
DROPPABLE_TYPES = frozenset({"progress", "snapshot", "slo_violation"})

#: How long a reliable send may block before the worker gives up (the
#: parent is then presumed dead; the worker dies loudly, not silently).
RELIABLE_SEND_TIMEOUT_S = 30.0


class _QueueLike(Protocol):
    """The slice of ``multiprocessing.Queue`` the bus uses.

    ``queue.Queue`` satisfies it too, so the protocol can be unit
    tested without spawning processes.
    """

    def put(self, item: Any, block: bool = ..., timeout: Optional[float] = ...) -> None: ...

    def put_nowait(self, item: Any) -> None: ...


def make_message(
    type: str,
    *,
    worker: int,
    seq: int,
    task: Optional[str] = None,
    payload: Optional[Dict[str, Any]] = None,
    sent_unix: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble one schema-versioned bus message.

    ``task`` is the task key the message concerns (``None`` for
    worker-lifecycle messages); ``seq`` is the per-worker send counter,
    so the receiver can detect reordering or loss per worker.
    """
    if type not in MESSAGE_TYPES:
        raise ReproError(
            f"unknown bus message type {type!r} "
            f"(expected one of {', '.join(MESSAGE_TYPES)})"
        )
    return {
        "schema": BUS_SCHEMA,
        "type": type,
        "worker": int(worker),
        "seq": int(seq),
        "task": task,
        "payload": dict(payload) if payload is not None else {},
        "sent_unix": time.time() if sent_unix is None else float(sent_unix),
    }


def validate_message(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check one received message against the ``repro.bus/1`` schema.

    Returns the message unchanged on success; raises
    :class:`~repro.errors.ReproError` on schema or shape mismatches so
    a version skew between parent and workers fails loudly instead of
    folding garbage.
    """
    schema = message.get("schema")
    if schema != BUS_SCHEMA:
        raise ReproError(
            f"unsupported bus schema {schema!r} "
            f"(this receiver understands {BUS_SCHEMA!r})"
        )
    mtype = message.get("type")
    if mtype not in MESSAGE_TYPES:
        raise ReproError(f"unknown bus message type {mtype!r}")
    if not isinstance(message.get("worker"), int):
        raise ReproError(f"bus message has no integer worker id: {message!r}")
    if not isinstance(message.get("payload"), dict):
        raise ReproError(f"bus message has no payload dict: {message!r}")
    return message


class BusSender:
    """The worker-side half of the bus: send with explicit drop accounting.

    One sender per worker process.  ``send`` never raises on a full
    queue for droppable telemetry types — the message is counted in
    :attr:`dropped` and discarded.  Reliable types block up to
    ``timeout`` seconds and then raise: a worker that cannot deliver a
    ``result`` has lost its parent and must die loudly.
    """

    def __init__(
        self,
        queue: _QueueLike,
        *,
        worker: int,
        timeout: float = RELIABLE_SEND_TIMEOUT_S,
    ) -> None:
        self.queue = queue
        self.worker = int(worker)
        self.timeout = float(timeout)
        self.sent: Dict[str, int] = {}
        self.dropped: Dict[str, int] = {}
        self._seq = 0

    def send(
        self,
        type: str,
        *,
        task: Optional[str] = None,
        payload: Optional[Dict[str, Any]] = None,
        reliable: Optional[bool] = None,
    ) -> bool:
        """Send one message; returns False when it was dropped.

        ``reliable`` overrides the per-type default (e.g. the
        ``progress``/``start`` marker is shipped reliably so the parent
        can always attribute a crash to the task that was running).
        """
        message = make_message(
            type, worker=self.worker, seq=self._seq, task=task, payload=payload
        )
        self._seq += 1
        if reliable is None:
            reliable = type not in DROPPABLE_TYPES
        if reliable:
            try:
                self.queue.put(message, True, self.timeout)
            except Full:
                self.dropped[type] = self.dropped.get(type, 0) + 1
                raise ReproError(
                    f"bus queue full for {self.timeout:g}s sending reliable "
                    f"{type!r} message — is the fleet aggregator alive?"
                ) from None
        else:
            try:
                self.queue.put_nowait(message)
            except Full:
                self.dropped[type] = self.dropped.get(type, 0) + 1
                return False
        self.sent[type] = self.sent.get(type, 0) + 1
        return True

    def drop_counts(self) -> Dict[str, int]:
        """Per-type drop counts so far (shipped in the ``bye`` payload)."""
        return dict(self.dropped)


class WorkerState:
    """Receiver-side view of one worker: liveness and accounting."""

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self.pid: Optional[int] = None
        self.messages = 0
        self.tasks_done = 0
        self.tasks_failed = 0
        self.current_task: Optional[str] = None
        self.last_seen_unix: Optional[float] = None
        self.last_seq: Optional[int] = None
        self.said_hello = False
        self.said_bye = False
        self.dropped: Dict[str, int] = {}
        self.exitcode: Optional[int] = None

    def to_record(self) -> Dict[str, Any]:
        """JSON-native worker row for the fleet summary."""
        return {
            "worker": self.worker,
            "pid": self.pid,
            "messages": self.messages,
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "current_task": self.current_task,
            "last_seen_unix": self.last_seen_unix,
            "hello": self.said_hello,
            "bye": self.said_bye,
            "dropped": dict(self.dropped),
            "exitcode": self.exitcode,
        }


def cross_run_quantiles(
    values: List[float], qs: Tuple[float, ...] = (0.5, 0.9)
) -> Dict[str, float]:
    """Exact quantiles across per-run scalars (linear interpolation).

    The fleet rollup merges telemetry *across* runs at this level —
    per-run scalars, sorted, interpolated — because the within-run P²
    sketches are streaming approximations whose internal states do not
    compose exactly: folding two sketches' markers would give an
    estimate that depends on merge order.  Cross-run quantiles over
    exact per-run values are deterministic for a fixed task grid (see
    the determinism caveats in ``docs/observability.md``).
    """
    if not values:
        return {}
    ordered = sorted(values)
    out: Dict[str, float] = {}
    n = len(ordered)
    for q in qs:
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        out[f"p{q * 100:g}"] = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    return out


class FleetAggregator:
    """Folds the bus message stream into fleet-level state.

    One instance per fleet run.  :meth:`on_message` folds one received
    message (the receiver supplies its own wall-clock ``now`` so the
    fold itself stays testable without sleeping); the accessors render
    the folded state:

    * :attr:`results` — task key → the worker's ``result`` payload
      (task spec, ``RunResult`` dict, streaming summary, wall time);
    * :attr:`errors` — structured error records (worker exceptions and
      synthesized worker-death records);
    * :meth:`rollup` — the fleet-level aggregate: per-scenario SLO
      compliance and quality/energy statistics, cross-run quantiles,
      aggregate events/sec, worker table, fleet-wide drop accounting;
    * :meth:`stale_workers` — heartbeat watchdog input: workers not
      heard from within a timeout.
    """

    def __init__(self) -> None:
        self.workers: Dict[int, WorkerState] = {}
        self.results: Dict[str, Dict[str, Any]] = {}
        self.errors: List[Dict[str, Any]] = []
        self.snapshots: Dict[str, Dict[str, Any]] = {}
        self.violations: List[Dict[str, Any]] = []
        self.messages = 0

    def _worker(self, worker: int) -> WorkerState:
        state = self.workers.get(worker)
        if state is None:
            state = self.workers[worker] = WorkerState(worker)
        return state

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def on_message(self, message: Dict[str, Any], *, now: Optional[float] = None) -> None:
        """Fold one received bus message (validated first)."""
        validate_message(message)
        self.messages += 1
        state = self._worker(int(message["worker"]))
        state.messages += 1
        state.last_seen_unix = time.time() if now is None else float(now)
        state.last_seq = int(message["seq"])
        mtype = message["type"]
        task = message.get("task")
        payload = message["payload"]
        if mtype == "hello":
            state.said_hello = True
            state.pid = payload.get("pid")
        elif mtype == "progress":
            if payload.get("phase") == "start":
                state.current_task = task
            elif task is not None:
                self.snapshots.setdefault(task, {}).update(
                    {"progress": dict(payload)}
                )
        elif mtype == "snapshot":
            if task is not None:
                self.snapshots.setdefault(task, {})["snapshot"] = dict(payload)
        elif mtype == "slo_violation":
            self.violations.append(
                {"task": task, "worker": state.worker, **payload}
            )
        elif mtype == "result":
            if task is not None:
                self.results[task] = dict(payload)
                self.results[task]["worker"] = state.worker
            state.tasks_done += 1
            state.current_task = None
        elif mtype == "error":
            self.errors.append({
                "kind": "exception",
                "task": task,
                "worker": state.worker,
                "exception": payload.get("exception"),
                "traceback": payload.get("traceback"),
                "spec": payload.get("task"),
            })
            state.tasks_failed += 1
            state.current_task = None
        elif mtype == "bye":
            state.said_bye = True
            dropped = payload.get("dropped") or {}
            for key, count in dropped.items():
                state.dropped[key] = state.dropped.get(key, 0) + int(count)

    def mark_worker_dead(
        self,
        worker: int,
        *,
        exitcode: Optional[int],
        now: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """Record a worker death; synthesize an error for its in-flight task.

        Returns the synthesized error record (also appended to
        :attr:`errors`) when the worker had a task in flight, else None.
        A worker that said ``bye`` died cleanly — no record.
        """
        state = self._worker(worker)
        state.exitcode = exitcode
        if state.said_bye:
            return None
        record: Optional[Dict[str, Any]] = None
        if state.current_task is not None:
            record = {
                "kind": "worker-death",
                "task": state.current_task,
                "worker": worker,
                "exception": f"worker {worker} died (exitcode {exitcode})",
                "traceback": None,
                "spec": None,
            }
            self.errors.append(record)
            state.tasks_failed += 1
            state.current_task = None
        return record

    def mark_task_unrun(self, task_key: str, reason: str) -> Dict[str, Any]:
        """Record a task that never ran (e.g. every worker died first)."""
        record = {
            "kind": "unrun",
            "task": task_key,
            "worker": None,
            "exception": reason,
            "traceback": None,
            "spec": None,
        }
        self.errors.append(record)
        return record

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def stale_workers(self, *, now: float, timeout: float) -> List[int]:
        """Workers not heard from within ``timeout`` wall seconds.

        Workers that already said ``bye`` are never stale.  The caller
        (the fleet's main loop) decides what staleness means — a
        still-alive worker grinding a heavy task is merely slow, a dead
        one is handled via :meth:`mark_worker_dead`.
        """
        stale = []
        for worker in sorted(self.workers):
            state = self.workers[worker]
            if state.said_bye or state.last_seen_unix is None:
                continue
            if now - state.last_seen_unix > timeout:
                stale.append(worker)
        return stale

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def dropped_total(self) -> Dict[str, int]:
        """Fleet-wide per-type drop counts (sum over workers)."""
        total: Dict[str, int] = {}
        for state in self.workers.values():
            for key, count in state.dropped.items():
                total[key] = total.get(key, 0) + count
        return total

    def rollup(self) -> Dict[str, Any]:
        """The fleet-level aggregate over everything folded so far.

        Per-scenario rows aggregate the per-task ``RunResult`` and SLO
        summaries; ``quantiles`` are exact cross-run quantiles over
        per-run scalars (see :func:`cross_run_quantiles` for why P²
        sketches are not merged); ``throughput`` sums simulator events
        over summed worker wall time.
        """
        scenarios: Dict[str, Dict[str, Any]] = {}
        qualities: List[float] = []
        headrooms: List[float] = []
        total_events = 0
        total_wall = 0.0
        for key in sorted(self.results):
            payload = self.results[key]
            spec = payload.get("task") or {}
            result = payload.get("result") or {}
            slo = ((payload.get("summary") or {}).get("slo")) or {}
            name = str(spec.get("scenario", "?"))
            row = scenarios.setdefault(name, {
                "tasks": 0, "slo_compliant": 0, "slo_evaluated": 0,
                "quality_min": None, "quality_mean": 0.0, "quality_max": None,
                "energy_sum": 0.0, "events": 0,
            })
            row["tasks"] += 1
            quality = result.get("quality")
            if quality is not None:
                quality = float(quality)
                qualities.append(quality)
                row["quality_mean"] += quality
                row["quality_min"] = (
                    quality if row["quality_min"] is None
                    else min(row["quality_min"], quality)
                )
                row["quality_max"] = (
                    quality if row["quality_max"] is None
                    else max(row["quality_max"], quality)
                )
            if result.get("energy") is not None:
                row["energy_sum"] += float(result["energy"])
            if slo:
                row["slo_evaluated"] += 1
                if slo.get("compliant"):
                    row["slo_compliant"] += 1
                power = (slo.get("slos") or {}).get("power_budget") or {}
                observed = power.get("observed") or {}
                if observed.get("headroom_min_w") is not None:
                    headrooms.append(float(observed["headroom_min_w"]))
            events = payload.get("events")
            if events is not None:
                total_events += int(events)
                row["events"] += int(events)
            if payload.get("wall_s") is not None:
                total_wall += float(payload["wall_s"])
        for row in scenarios.values():
            if row["tasks"]:
                row["quality_mean"] = (
                    row["quality_mean"] / row["tasks"]
                    if row["quality_min"] is not None else None
                )
        failed = len(self.errors)
        return {
            "tasks": {
                "total": len(self.results) + failed,
                "succeeded": len(self.results),
                "failed": failed,
            },
            "scenarios": scenarios,
            "throughput": {
                "events": total_events,
                "worker_wall_s": total_wall,
                "events_per_sec": total_events / total_wall if total_wall > 0 else 0.0,
            },
            "quantiles": {
                "quality": cross_run_quantiles(qualities),
                "power_headroom_min_w": cross_run_quantiles(headrooms),
            },
            "slo_violation_events": len(self.violations),
            "dropped": self.dropped_total(),
            "workers": {
                str(worker): self.workers[worker].to_record()
                for worker in sorted(self.workers)
            },
        }
