"""Trace summary & analysis: the questions a trace exists to answer.

Works on a :class:`repro.obs.tracer.Trace` (live from a
:class:`~repro.obs.tracer.Tracer` or reloaded via
:func:`repro.obs.export.read_jsonl`):

* :func:`mode_intervals` — the AES/BQ occupancy timeline (compensation
  episodes are the BQ intervals);
* :func:`core_utilization` — per-core busy time, slice count, executed
  volume and final energy, from exec spans + timeline samples;
* :func:`job_stats` — per-outcome counts, sojourn times and processed
  fractions from job spans;
* :func:`summarize` — a human-readable digest of all of the above
  (what ``repro-cli trace`` prints).

:func:`mode_intervals` and :func:`core_utilization` also accept a
plain iterator of record dicts (:func:`repro.obs.export.iter_jsonl`),
folding in one pass with constant memory — analyzing a large trace
file no longer requires loading it wholesale.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.tracer import Trace

__all__ = [
    "ModeInterval",
    "TraceLike",
    "core_utilization",
    "job_stats",
    "mode_intervals",
    "summarize",
]

#: What the streaming-capable analyzers accept: a materialized trace
#: or an iterator of JSON-native record dicts in file order.
TraceLike = Union[Trace, Iterable[Dict[str, Any]]]


@dataclass(frozen=True)
class ModeInterval:
    """A maximal stretch of one execution mode."""

    start: float
    end: float
    mode: str  # "aes" | "bq"

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.end - self.start


def _trace_end(trace: Trace) -> Optional[float]:
    if "end" in trace.meta:
        return float(trace.meta["end"])
    times = [e.time for e in trace.events]
    times.extend(s.time for s in trace.samples)
    return max(times) if times else None


def mode_intervals(trace: TraceLike) -> List[ModeInterval]:
    """AES/BQ intervals reconstructed from the per-round decisions.

    Each ``decision`` event carries the mode chosen for the round;
    consecutive rounds with the same mode merge into one interval.  The
    last interval extends to the run end (``meta["end"]``).

    Accepts a :class:`Trace` or an iterator of record dicts (e.g. from
    :func:`repro.obs.export.iter_jsonl`); the iterator path folds in
    one pass with constant memory.
    """
    if not isinstance(trace, Trace):
        return _mode_intervals_records(trace)
    decisions = trace.events_of("decision")
    if not decisions:
        return []
    out: List[ModeInterval] = []
    start = decisions[0].time
    mode = decisions[0].attrs["mode"]
    for d in decisions[1:]:
        if d.attrs["mode"] != mode:
            out.append(ModeInterval(start=start, end=d.time, mode=mode))
            start, mode = d.time, d.attrs["mode"]
    end = _trace_end(trace)
    out.append(ModeInterval(start=start, end=end if end is not None else start, mode=mode))
    return out


def _mode_intervals_records(records: Iterable[Dict[str, Any]]) -> List[ModeInterval]:
    """Single-pass :func:`mode_intervals` over raw record dicts."""
    out: List[ModeInterval] = []
    start: Optional[float] = None
    mode = ""
    meta_end: Optional[float] = None
    max_time: Optional[float] = None
    for record in records:
        rtype = record.get("type")
        if rtype == "meta":
            if "end" in record["meta"]:  # later headers win
                meta_end = float(record["meta"]["end"])
        elif rtype in ("event", "sample"):
            time = float(record["time"])
            if max_time is None or time > max_time:
                max_time = time
            if rtype == "event" and record.get("kind") == "decision":
                record_mode = record["attrs"]["mode"]
                if start is None:
                    start, mode = time, record_mode
                elif record_mode != mode:
                    out.append(ModeInterval(start=start, end=time, mode=mode))
                    start, mode = time, record_mode
    if start is None:
        return []
    end = meta_end if meta_end is not None else max_time
    out.append(ModeInterval(start=start, end=end if end is not None else start, mode=mode))
    return out


def core_utilization(trace: TraceLike) -> Dict[int, Dict[str, float]]:
    """Per-core execution breakdown.

    Returns ``{core: {"busy": s, "slices": n, "volume": units,
    "energy": J, "utilization": fraction}}``.  Busy time and volume come
    from closed exec spans; energy is the final timeline sample's
    cumulative value; utilization divides busy time by the run duration
    (0 when the duration is unknown).

    Accepts a :class:`Trace` or an iterator of record dicts (e.g. from
    :func:`repro.obs.export.iter_jsonl`); the iterator path folds in
    one pass with constant memory.
    """
    if not isinstance(trace, Trace):
        return _core_utilization_records(trace)
    out: Dict[int, Dict[str, float]] = defaultdict(
        lambda: {"busy": 0.0, "slices": 0.0, "volume": 0.0, "energy": 0.0,
                 "utilization": 0.0}
    )
    for span in trace.spans_named("exec"):
        if span.end is None:
            continue
        core = int(span.attrs["core"])
        row = out[core]
        row["busy"] += span.duration
        row["slices"] += 1
        row["volume"] += float(span.attrs.get("done", 0.0))
    for sample in trace.samples:  # samples are chronological: last wins
        out[sample.core]["energy"] = sample.energy
    end = _trace_end(trace)
    start = float(trace.meta.get("start", 0.0))
    span_len = (end - start) if end is not None else 0.0
    if span_len > 0:
        for row in out.values():
            row["utilization"] = row["busy"] / span_len
    return dict(sorted(out.items()))


def _core_utilization_records(
    records: Iterable[Dict[str, Any]],
) -> Dict[int, Dict[str, float]]:
    """Single-pass :func:`core_utilization` over raw record dicts."""
    out: Dict[int, Dict[str, float]] = defaultdict(
        lambda: {"busy": 0.0, "slices": 0.0, "volume": 0.0, "energy": 0.0,
                 "utilization": 0.0}
    )
    start = 0.0
    meta_end: Optional[float] = None
    max_time: Optional[float] = None
    for record in records:
        rtype = record.get("type")
        if rtype == "meta":
            meta = record["meta"]
            start = float(meta.get("start", start))
            if "end" in meta:  # later headers win
                meta_end = float(meta["end"])
        elif rtype == "span":
            if record.get("name") != "exec" or record.get("end") is None:
                continue
            attrs = record.get("attrs", {})
            row = out[int(attrs["core"])]
            row["busy"] += float(record["end"]) - float(record["start"])
            row["slices"] += 1
            row["volume"] += float(attrs.get("done", 0.0))
        elif rtype == "event":
            time = float(record["time"])
            if max_time is None or time > max_time:
                max_time = time
        elif rtype == "sample":
            time = float(record["time"])
            if max_time is None or time > max_time:
                max_time = time
            out[int(record["core"])]["energy"] = float(record["energy"])
    end = meta_end if meta_end is not None else max_time
    span_len = (end - start) if end is not None else 0.0
    if span_len > 0:
        for row in out.values():
            row["utilization"] = row["busy"] / span_len
    return dict(sorted(out.items()))


def job_stats(trace: Trace) -> Dict[str, Dict[str, float]]:
    """Per-outcome job statistics from closed job spans.

    Returns ``{outcome: {"count": n, "mean_sojourn": s,
    "mean_processed_fraction": f}}``.
    """
    grouped: Dict[str, List] = defaultdict(list)
    for span in trace.spans_named("job"):
        if span.end is None:
            continue
        grouped[span.attrs.get("outcome", "open")].append(span)
    out: Dict[str, Dict[str, float]] = {}
    for outcome, spans in sorted(grouped.items()):
        sojourns = [s.duration for s in spans]
        fractions = [
            float(s.attrs.get("processed", 0.0)) / float(s.attrs["demand"])
            for s in spans
            if float(s.attrs.get("demand", 0.0)) > 0
        ]
        out[outcome] = {
            "count": float(len(spans)),
            "mean_sojourn": sum(sojourns) / len(sojourns) if sojourns else 0.0,
            "mean_processed_fraction": (
                sum(fractions) / len(fractions) if fractions else 0.0
            ),
        }
    return out


def summarize(trace: Trace) -> str:
    """Multi-line human-readable digest of the trace."""
    lines: List[str] = []
    meta = trace.meta
    head = meta.get("scheduler", "?")
    if "arrival_rate" in meta:
        head += f"  λ={meta['arrival_rate']:g}/s"
    if "seed" in meta:
        head += f"  seed={meta['seed']}"
    end = _trace_end(trace)
    if end is not None:
        head += f"  span=[{meta.get('start', 0.0):g}, {end:g}] s"
    lines.append(f"trace: {head}")
    lines.append(
        f"records: {len(trace.spans)} spans, {len(trace.events)} events, "
        f"{len(trace.samples)} samples, {len(trace.metrics)} metrics"
    )

    stats = job_stats(trace)
    if stats:
        total = int(sum(row["count"] for row in stats.values()))
        lines.append(f"jobs ({total} settled):")
        for outcome, row in stats.items():
            lines.append(
                f"  {outcome:<10} n={int(row['count']):<6} "
                f"sojourn={row['mean_sojourn'] * 1e3:8.2f} ms  "
                f"processed={row['mean_processed_fraction'] * 100:5.1f} %"
            )

    intervals = mode_intervals(trace)
    if intervals:
        total_t = sum(i.duration for i in intervals)
        aes_t = sum(i.duration for i in intervals if i.mode == "aes")
        switches = max(0, len(intervals) - 1)
        share = (aes_t / total_t * 100) if total_t > 0 else 100.0
        lines.append(
            f"modes: {len(intervals)} intervals, {switches} switches, "
            f"AES {share:.1f} % of decided time"
        )
        for interval in intervals[:12]:
            lines.append(
                f"  [{interval.start:9.4f} → {interval.end:9.4f}] "
                f"{interval.mode} ({interval.duration:.4f} s)"
            )
        if len(intervals) > 12:
            lines.append(f"  ... {len(intervals) - 12} more intervals")

    cores = core_utilization(trace)
    if cores:
        lines.append("cores:")
        for core, row in cores.items():
            lines.append(
                f"  core {core:<3} util={row['utilization'] * 100:5.1f} %  "
                f"slices={int(row['slices']):<5} vol={row['volume']:10.1f}  "
                f"E={row['energy']:10.2f} J"
            )

    if trace.metrics:
        lines.append("metrics:")
        for name, snap in trace.metrics.items():
            if snap["kind"] == "counter":
                lines.append(f"  {name:<32} {snap['value']:g}")
            elif snap["kind"] == "gauge":
                lines.append(f"  {name:<32} {snap['value']:g} (last)")
            elif snap["kind"] == "phase":
                lines.append(
                    f"  {name:<32} n={snap['count']} "
                    f"total={snap['total_s'] * 1e3:.2f} ms "
                    f"mean={snap['mean_s'] * 1e6:.1f} µs "
                    f"max={snap['max_s'] * 1e6:.1f} µs"
                )
            elif snap["kind"] == "quantiles":
                estimates = " ".join(
                    f"{label}={value:g}" if value is not None else f"{label}=-"
                    for label, value in snap["estimates"].items()
                )
                lines.append(f"  {name:<32} n={snap['count']} {estimates}")
            else:
                line = (
                    f"  {name:<32} n={snap['count']} mean={snap['mean']:g} "
                    f"min={snap['min']:g} max={snap['max']:g}"
                )
                # Out-of-range observations mean the bucket bound is
                # mis-sized — make that visible, not just recorded.
                overflow = snap.get("overflow", 0)
                underflow = snap.get("underflow", 0)
                if overflow or underflow:
                    line += f"  [overflow={overflow} underflow={underflow}]"
                lines.append(line)
    return "\n".join(lines)
