"""Per-core timeline sampling at quantum boundaries.

The cores already record their speed as exact piecewise-constant
:class:`repro.sim.timeline.StepTimeline` signals; the tracer turns them
into a regular time series the Fig. 5–8 debugging workflow can plot:
one :class:`TimelineSample` per core per quantum with the instantaneous
speed and power plus the *cumulative* dynamic energy.

Energy is integrated **incrementally**: :class:`CoreTimelineSampler`
keeps a per-core cursor into the speed timeline and only integrates the
segments added since the previous sample, so sampling a long run stays
O(total breakpoints) instead of O(samples × breakpoints).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List

from repro.units import Gigahertz, Joules, Seconds, Watts

if TYPE_CHECKING:  # type-only: repro.obs stays import-light at runtime
    from repro.server.machine import MulticoreServer
    from repro.sim.timeline import StepTimeline

__all__ = ["CoreTimelineSampler", "TimelineSample"]


@dataclass
class TimelineSample:
    """One core's state at one sampling instant.

    Attributes
    ----------
    time:
        Simulated sampling time (a quantum boundary, plus one final
        sample at run end).
    core:
        Core index within the machine.
    speed:
        Instantaneous speed in GHz (0 when idle).
    power:
        Instantaneous dynamic power draw in watts.
    energy:
        Cumulative dynamic energy in joules since the run started.
    """

    time: Seconds
    core: int
    speed: Gigahertz
    power: Watts
    energy: Joules

    def to_record(self) -> Dict[str, Any]:
        """Flat JSON-native dict (``type: "sample"``)."""
        return {
            "type": "sample",
            "time": self.time,
            "core": self.core,
            "speed": self.speed,
            "power": self.power,
            "energy": self.energy,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TimelineSample":
        """Inverse of :meth:`to_record`."""
        return cls(
            time=record["time"],
            core=record["core"],
            speed=record["speed"],
            power=record["power"],
            energy=record["energy"],
        )


class _CoreCursor:
    """Incremental exact power integral over one core's speed timeline."""

    __slots__ = ("last_time", "energy")

    def __init__(self, start_time: Seconds) -> None:
        self.last_time: Seconds = start_time
        self.energy: Joules = 0.0

    def advance(
        self,
        timeline: StepTimeline,
        power_fn: Callable[[Gigahertz], Watts],
        until: Seconds,
    ) -> Joules:
        """Integrate ``power_fn(speed)`` over (last_time, until]; return total."""
        if until <= self.last_time:
            return self.energy
        times = timeline._times
        values = timeline._values
        # Segment holding last_time: breakpoints are sorted, value is
        # constant on [times[i], times[i+1]).
        i = bisect_right(times, self.last_time) - 1
        t = self.last_time
        n = len(times)
        acc = 0.0
        while t < until:
            seg_end = times[i + 1] if i + 1 < n else until
            step_end = min(seg_end, until)
            if step_end > t:
                acc += power_fn(values[i]) * (step_end - t)
            t = step_end
            i += 1
        self.energy += acc
        self.last_time = until
        return self.energy


class CoreTimelineSampler:
    """Samples a :class:`repro.server.machine.MulticoreServer` over time.

    One instance per traced run; ``sample(machine, time)`` must be
    called with non-decreasing times (the tracer calls it from the
    quantum tick and once at run end).
    """

    def __init__(self) -> None:
        self._cursors: List[_CoreCursor] = []

    def sample(self, machine: MulticoreServer, time: Seconds) -> List[TimelineSample]:
        """Snapshot every core at ``time`` (exact cumulative energy)."""
        if not self._cursors:
            self._cursors = [
                _CoreCursor(core.speed_timeline.start_time) for core in machine.cores
            ]
        samples: List[TimelineSample] = []
        for core, model, cursor in zip(machine.cores, machine.models, self._cursors):
            energy = cursor.advance(core.speed_timeline, model.power, time)
            speed = core.speed
            samples.append(
                TimelineSample(
                    time=float(time),
                    core=core.index,
                    speed=float(speed),
                    power=float(model.power(speed)),
                    energy=float(energy),
                )
            )
        return samples
