"""The hot-path phase profiler and its zero-overhead null twin.

:class:`PhaseProfiler` answers "where does *wall* time go inside a
run": each instrumented phase (``scheduler.round``, ``cut.lf``,
``power.distribute``, ``planner.quality_opt``, ``planner.energy_opt``,
``sim.run``) aggregates its call count and total/max elapsed wall time
into :class:`repro.obs.registry.PhaseTimer` instruments of the run's
:class:`~repro.obs.registry.MetricsRegistry`, so profiles ride the
normal trace/metric export path.

Phases nest freely (each ``with`` holds its own start stamp) and report
*inclusive* time: ``scheduler.round`` contains ``cut.lf`` and the
planner phases.  Instrumentation is deliberately coarse — per scheduling
round and per planned core, never per simulated event — which keeps the
enabled-run overhead under a couple of percent of wall time.

This is the **only** module in the deterministic tree sanctioned to
read the monotonic clock (sim-lint SIM001 module allowlist, see
``docs/static-analysis.md``): elapsed wall time is written to telemetry
and never read back by simulation logic, so profiled runs stay
bit-identical to unprofiled ones.

Disabled runs pay nothing: instrumented code holds the shared
:data:`NULL_PROFILER`, whose :meth:`~NullProfiler.phase` returns one
shared no-op context manager — no allocation, no clock read (asserted
by ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, Optional, TypeVar, Union

from repro.obs.registry import MetricsRegistry, PhaseTimer

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "PHASE_PREFIX",
    "PhaseHandle",
    "PhaseProfiler",
    "ProfilerLike",
]

#: Registry-name prefix for phase timers (``prof.scheduler.round`` …).
PHASE_PREFIX = "prof."

_F = TypeVar("_F", bound=Callable[..., Any])

#: Anything instrumented code accepts as its profiling sink.
ProfilerLike = Union["PhaseProfiler", "NullProfiler"]


class PhaseHandle:
    """One timed entry into a phase (the live ``with`` object).

    Handles are single-use and cheap: enter stamps the monotonic clock,
    exit records the elapsed wall time into the phase's
    :class:`~repro.obs.registry.PhaseTimer` and keeps it on
    :attr:`elapsed` for the caller (e.g. to feed a latency histogram).
    Nested/recursive phases work because every entry owns its handle.
    """

    __slots__ = ("_timer", "_start", "elapsed")

    def __init__(self, timer: PhaseTimer) -> None:
        self._timer = timer
        self._start = 0.0
        #: Elapsed wall seconds of the completed entry (0 until exit).
        self.elapsed = 0.0

    def __enter__(self) -> "PhaseHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._timer.record(self.elapsed)


class PhaseProfiler:
    """Aggregates per-phase wall-time statistics for one run.

    Parameters
    ----------
    registry:
        The metrics registry to publish into.  A :class:`repro.obs.Tracer`
        passes its own registry so phase timers export alongside the
        simulation metrics; standalone use (the bench harness) may omit
        it to get a private registry.
    """

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # name → PhaseTimer, so the hot phase() call skips the string
        # concatenation and the registry's instrument bookkeeping after
        # the first entry of each phase (timers are never unregistered).
        self._timers: Dict[str, PhaseTimer] = {}

    def phase(self, name: str) -> PhaseHandle:
        """A context manager timing one entry into phase ``name``."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self.registry.phase_timer(PHASE_PREFIX + name)
            self._timers[name] = timer
        return PhaseHandle(timer)

    def timer(self, name: str) -> PhaseTimer:
        """The phase's underlying timer (hoist out of tight loops)."""
        return self.registry.phase_timer(PHASE_PREFIX + name)

    def wrap(self, name: str) -> Callable[[_F], _F]:
        """Decorator form: profile every call of the wrapped function."""

        def decorate(fn: _F) -> _F:
            @functools.wraps(fn)
            def inner(*args: Any, **kwargs: Any) -> Any:
                with self.phase(name):
                    return fn(*args, **kwargs)

            return inner  # type: ignore[return-value]

        return decorate

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Phase name → JSON-native stats (the ``prof.`` prefix stripped).

        Only phase timers are included; other instruments sharing the
        registry are left to the normal metrics snapshot.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.registry.names():
            if name.startswith(PHASE_PREFIX):
                snap = self.registry.phase_timer(name).snapshot()
                out[name[len(PHASE_PREFIX):]] = snap
        return out


class _NullPhase:
    """Shared no-op ``with`` target returned by the null profiler."""

    __slots__ = ()

    #: Mirrors :attr:`PhaseHandle.elapsed` so unguarded reads are safe.
    elapsed = 0.0

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """Profiling disabled: every hook is a no-op.

    ``enabled`` is ``False``; :meth:`phase` hands back one shared
    context manager, so a disabled run performs no allocation and never
    reads a clock.
    """

    __slots__ = ()

    enabled = False

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def wrap(self, name: str) -> Callable[[_F], _F]:
        return lambda fn: fn

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}


#: Shared process-wide null profiler (stateless, safe to share).
NULL_PROFILER = NullProfiler()
