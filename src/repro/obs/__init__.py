"""Unified tracing & telemetry for the simulator.

The :mod:`repro.obs` subsystem records what a run *did over time* —
the end-of-run :class:`repro.metrics.collector.RunResult` says how it
went, a trace says why:

* job spans (arrival → assignment → execution slices → settlement);
* scheduler events (AES↔BQ switches, compensation episodes, ES↔WF
  policy flips, per-round decisions);
* per-core speed/power/energy timelines at quantum boundaries;
* a counters/gauges/histograms registry.

Usage::

    from repro.obs import Tracer, write_jsonl, summarize

    tracer = Tracer()
    result = SimulationHarness(config, make_ge(), tracer=tracer).run()
    print(summarize(tracer.to_trace()))
    write_jsonl(tracer, "trace.jsonl")

Tracing is off by default: every harness uses the shared
:data:`NULL_TRACER` unless one is passed, at a cost of one attribute
read per instrumentation point.  See ``docs/observability.md`` for the
event schema.
"""

from repro.obs.analyze import (
    ModeInterval,
    core_utilization,
    job_stats,
    mode_intervals,
    summarize,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    read_jsonl,
    trace_records,
    write_jsonl,
    write_spans_csv,
    write_timeline_csv,
)
from repro.obs.prof import NULL_PROFILER, NullProfiler, PhaseHandle, PhaseProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, PhaseTimer
from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.timeline import CoreTimelineSampler, TimelineSample
from repro.obs.tracer import NULL_TRACER, NullTracer, Trace, Tracer

__all__ = [
    "NULL_PROFILER",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "Counter",
    "CoreTimelineSampler",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModeInterval",
    "NullProfiler",
    "NullTracer",
    "PhaseHandle",
    "PhaseProfiler",
    "PhaseTimer",
    "SpanRecord",
    "TimelineSample",
    "Trace",
    "Tracer",
    "core_utilization",
    "job_stats",
    "mode_intervals",
    "read_jsonl",
    "summarize",
    "trace_records",
    "write_jsonl",
    "write_spans_csv",
    "write_timeline_csv",
]
