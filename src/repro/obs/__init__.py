"""Unified tracing & telemetry for the simulator.

The :mod:`repro.obs` subsystem records what a run *did over time* —
the end-of-run :class:`repro.metrics.collector.RunResult` says how it
went, a trace says why:

* job spans (arrival → assignment → execution slices → settlement);
* scheduler events (AES↔BQ switches, compensation episodes, ES↔WF
  policy flips, per-round decisions);
* per-core speed/power/energy timelines at quantum boundaries;
* a counters/gauges/histograms registry.

Usage::

    from repro.obs import Tracer, write_jsonl, summarize

    tracer = Tracer()
    result = SimulationHarness(config, make_ge(), tracer=tracer).run()
    print(summarize(tracer.to_trace()))
    write_jsonl(tracer, "trace.jsonl")

Tracing is off by default: every harness uses the shared
:data:`NULL_TRACER` unless one is passed, at a cost of one attribute
read per instrumentation point.  See ``docs/observability.md`` for the
event schema.

For long horizons, :class:`repro.obs.stream.StreamingTracer` replaces
the buffering tracer with constant-memory windowed aggregation plus
online SLO monitoring (:mod:`repro.obs.slo`); finished runs land in
the run registry (:mod:`repro.obs.runs`) and render to an HTML
dashboard (:mod:`repro.obs.report`)::

    from repro.obs import StreamingTracer

    tracer = StreamingTracer(spill_path="trace.jsonl")
    result = SimulationHarness(config, make_ge(), tracer=tracer).run()
    summary = tracer.summary()          # windows, SLOs, utilization
"""

from repro.obs.analyze import (
    ModeInterval,
    core_utilization,
    job_stats,
    mode_intervals,
    summarize,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    iter_jsonl,
    read_jsonl,
    trace_records,
    write_jsonl,
    write_spans_csv,
    write_timeline_csv,
)
from repro.obs.prof import NULL_PROFILER, NullProfiler, PhaseHandle, PhaseProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    PhaseTimer,
    QuantileSketch,
)
from repro.obs.report import render_fleet_report, render_report, write_report
from repro.obs.runs import (
    FLEET_SCHEMA,
    RunStore,
    diff_runs,
    format_diff,
    format_fleet,
    format_run,
    format_runs_table,
    make_summary,
    run_id_for,
)
from repro.obs.slo import SLOSpec, SLOTracker, default_slos
from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.stream import (
    StreamAggregator,
    StreamingTracer,
    WindowSeries,
    fold_records,
)
from repro.obs.timeline import CoreTimelineSampler, TimelineSample
from repro.obs.tracer import NULL_TRACER, NullTracer, Trace, Tracer

__all__ = [
    "FLEET_SCHEMA",
    "NULL_PROFILER",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "Counter",
    "CoreTimelineSampler",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModeInterval",
    "NullProfiler",
    "NullTracer",
    "P2Quantile",
    "PhaseHandle",
    "PhaseProfiler",
    "PhaseTimer",
    "QuantileSketch",
    "RunStore",
    "SLOSpec",
    "SLOTracker",
    "SpanRecord",
    "StreamAggregator",
    "StreamingTracer",
    "TimelineSample",
    "Trace",
    "Tracer",
    "WindowSeries",
    "core_utilization",
    "default_slos",
    "diff_runs",
    "fold_records",
    "format_diff",
    "format_fleet",
    "format_run",
    "format_runs_table",
    "iter_jsonl",
    "job_stats",
    "make_summary",
    "mode_intervals",
    "read_jsonl",
    "render_fleet_report",
    "render_report",
    "run_id_for",
    "summarize",
    "trace_records",
    "write_jsonl",
    "write_report",
    "write_spans_csv",
    "write_timeline_csv",
]
