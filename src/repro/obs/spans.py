"""Span and event records — the vocabulary of a trace.

A **span** is a named interval of simulated time with optional
parent/child structure: every job gets a root ``"job"`` span covering
arrival → settlement, and every execution slice a child ``"exec"`` span
covering one contiguous stretch on one core at one speed.  An **event**
is a point-in-time annotation, either attached to a span (``enqueue``,
``assign``, ``lf_cut``, ``settle``) or free-standing scheduler telemetry
(``mode_switch``, ``policy_flip``, ``decision``, ``compensation_start``
/ ``compensation_end``).

Both records serialize to flat JSON objects (see
:mod:`repro.obs.export`); attribute values must stay JSON-native
(str/int/float/bool/None, or lists thereof) so a JSONL round-trip
reproduces the records exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.units import Seconds

__all__ = ["EventRecord", "SpanRecord"]


@dataclass
class SpanRecord:
    """A named interval of simulated time, possibly nested.

    Attributes
    ----------
    span_id:
        Unique id within the trace (assigned by the tracer).
    name:
        Span kind: ``"job"`` or ``"exec"`` today; analysis code must
        tolerate new names.
    start:
        Simulated time the span opened.
    seq:
        Global emission sequence number — total order of all records in
        a trace, stable across export/import.
    parent_id:
        Enclosing span's id, or ``None`` for roots.
    end:
        Simulated close time; ``None`` while the span is open.
    attrs:
        JSON-native key/value annotations (``jid``, ``core``, ``speed``,
        ``outcome`` ...).  Close-time attributes are merged in by
        :meth:`close`.
    """

    span_id: int
    name: str
    start: Seconds
    seq: int
    parent_id: Optional[int] = None
    end: Optional[Seconds] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """Whether the span has not been closed yet."""
        return self.end is None

    @property
    def duration(self) -> Optional[Seconds]:
        """Span length in simulated seconds (``None`` while open)."""
        return None if self.end is None else self.end - self.start

    def close(self, time: Seconds, **attrs: Any) -> None:
        """Close the span at ``time``, merging final attributes."""
        if self.end is not None:
            raise ValueError(f"span {self.span_id} ({self.name}) closed twice")
        self.end = float(time)
        if attrs:
            self.attrs.update(attrs)

    def to_record(self) -> Dict[str, Any]:
        """Flat JSON-native dict (``type: "span"``)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "seq": self.seq,
            "parent_id": self.parent_id,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_record`."""
        return cls(
            span_id=record["span_id"],
            name=record["name"],
            start=record["start"],
            seq=record["seq"],
            parent_id=record.get("parent_id"),
            end=record.get("end"),
            attrs=dict(record.get("attrs", {})),
        )


@dataclass
class EventRecord:
    """A point-in-time annotation.

    Attributes
    ----------
    time:
        Simulated time of the event.
    kind:
        Event name (``mode_switch``, ``assign``, ``decision`` ...).
    seq:
        Global emission sequence number (shared counter with spans).
    span_id:
        Id of the span this event annotates, or ``None`` for
        free-standing scheduler events.
    attrs:
        JSON-native key/value payload.
    """

    time: Seconds
    kind: str
    seq: int
    span_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """Flat JSON-native dict (``type: "event"``)."""
        return {
            "type": "event",
            "time": self.time,
            "kind": self.kind,
            "seq": self.seq,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "EventRecord":
        """Inverse of :meth:`to_record`."""
        return cls(
            time=record["time"],
            kind=record["kind"],
            seq=record["seq"],
            span_id=record.get("span_id"),
            attrs=dict(record.get("attrs", {})),
        )
