"""Trace serialization: JSONL (lossless round-trip) and CSV.

The JSONL layout is one self-describing object per line, discriminated
by ``"type"``:

* ``meta`` — one line, run metadata (scheduler, config, start/end);
* ``span`` / ``event`` — merged, ordered by emission ``seq``;
* ``sample`` — core-timeline samples in sampling order;
* ``metric`` — one line per registry instrument, sorted by name.

:func:`read_jsonl` inverts :func:`write_jsonl` exactly:
``read_jsonl(p) == trace`` after ``write_jsonl(trace, p)`` (Python's
``json`` emits shortest-repr floats, which round-trip bit-exactly).
:func:`iter_jsonl` is the streaming variant — one record dict at a
time, constant memory — for feeding :mod:`repro.obs.stream` and the
iterator-aware analyzers in :mod:`repro.obs.analyze`.

The CSV exporters are one-way conveniences for spreadsheets/plotting:
:func:`write_timeline_csv` (per-core samples) and
:func:`write_spans_csv` (job/exec spans, attrs flattened to JSON).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.timeline import TimelineSample
from repro.obs.tracer import Trace, Tracer

__all__ = [
    "TRACE_SCHEMA",
    "iter_jsonl",
    "read_jsonl",
    "trace_records",
    "write_jsonl",
    "write_spans_csv",
    "write_timeline_csv",
]

#: Version tag stamped on the JSONL header (the ``meta`` record).  Bump
#: the integer on any backwards-incompatible record-layout change so a
#: reader can tell what it is parsing from the artifact alone.
TRACE_SCHEMA = "repro.trace/1"

_PathLike = Union[str, Path]


def _as_trace(trace: Union[Trace, Tracer]) -> Trace:
    return trace.to_trace() if isinstance(trace, Tracer) else trace


def trace_records(trace: Union[Trace, Tracer]) -> Iterator[Dict[str, Any]]:
    """Yield the trace as JSON-native dicts in canonical JSONL order."""
    trace = _as_trace(trace)
    # The schema tag lives on the record, not inside ``meta``, so the
    # write→read round trip reproduces the original Trace exactly.
    yield {"type": "meta", "schema": TRACE_SCHEMA, "meta": dict(trace.meta)}
    timed: List[Dict[str, Any]] = [s.to_record() for s in trace.spans]
    timed.extend(e.to_record() for e in trace.events)
    timed.sort(key=lambda r: r["seq"])
    yield from timed
    yield from (s.to_record() for s in trace.samples)
    for name in sorted(trace.metrics):
        yield {"type": "metric", "name": name, **trace.metrics[name]}


def write_jsonl(trace: Union[Trace, Tracer], path: _PathLike) -> int:
    """Write the trace as JSONL; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in trace_records(trace):
            fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def iter_jsonl(path: _PathLike) -> Iterator[Dict[str, Any]]:
    """Yield a JSONL trace's records one dict at a time.

    The streaming complement of :func:`read_jsonl`: nothing is
    materialized beyond the current line, so a multi-gigabyte trace
    can be analyzed in constant memory (feed the iterator to
    :func:`repro.obs.stream.fold_records`,
    :func:`repro.obs.analyze.mode_intervals` or
    :func:`repro.obs.analyze.core_utilization`).  Record order is the
    file's order; ``meta`` headers validate their schema tag exactly
    like :func:`read_jsonl`, and later headers supersede earlier ones
    (a :class:`repro.obs.stream.StreamingTracer` spill file has a
    provisional header and a final one).
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype == "meta":
                schema = record.get("schema", TRACE_SCHEMA)
                if schema != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}:{lineno}: unsupported trace schema {schema!r} "
                        f"(this reader understands {TRACE_SCHEMA!r})"
                    )
            elif rtype not in ("span", "event", "sample", "metric"):
                raise ValueError(f"{path}:{lineno}: unknown record type {rtype!r}")
            yield record


def read_jsonl(path: _PathLike) -> Trace:
    """Parse a JSONL trace file back into a :class:`Trace`.

    Materializes everything; prefer :func:`iter_jsonl` plus the
    streaming consumers for large files.
    """
    meta: Dict[str, Any] = {}
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []
    samples: List[TimelineSample] = []
    metrics: Dict[str, Dict[str, Any]] = {}
    for record in iter_jsonl(path):
        rtype = record.get("type")
        if rtype == "meta":
            meta = dict(record["meta"])
        elif rtype == "span":
            spans.append(SpanRecord.from_record(record))
        elif rtype == "event":
            events.append(EventRecord.from_record(record))
        elif rtype == "sample":
            samples.append(TimelineSample.from_record(record))
        else:  # "metric" — iter_jsonl rejects anything else
            name = record["name"]
            metrics[name] = {
                k: v for k, v in record.items() if k not in ("type", "name")
            }
    # Spans and events were merged by seq on export; re-splitting in file
    # order restores each list's original (seq-ascending) order.
    return Trace(meta=meta, spans=spans, events=events, samples=samples, metrics=metrics)


def write_timeline_csv(trace: Union[Trace, Tracer], path: _PathLike) -> int:
    """Write core-timeline samples as CSV; returns the row count."""
    trace = _as_trace(trace)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "core", "speed_ghz", "power_w", "energy_j"])
        for s in trace.samples:
            writer.writerow([f"{s.time:.9g}", s.core, f"{s.speed:.9g}",
                             f"{s.power:.9g}", f"{s.energy:.9g}"])
    return len(trace.samples)


def write_spans_csv(trace: Union[Trace, Tracer], path: _PathLike) -> int:
    """Write spans as CSV (attrs flattened to JSON); returns the row count."""
    trace = _as_trace(trace)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["span_id", "parent_id", "name", "start", "end", "attrs"])
        for s in trace.spans:
            writer.writerow([
                s.span_id,
                "" if s.parent_id is None else s.parent_id,
                s.name,
                f"{s.start:.9g}",
                "" if s.end is None else f"{s.end:.9g}",
                json.dumps(s.attrs, sort_keys=True),
            ])
    return len(trace.spans)
