"""Self-contained HTML run report: the dashboard ``repro report`` writes.

Renders one ``repro.run/1`` summary (see :func:`repro.obs.runs.make_summary`)
into a single HTML file with no external assets, scripts or network
fetches — inline CSS and inline SVG only, so the artifact is safe to
archive with a run and opens identically years later:

* header card — scheduler, workload, config fingerprint, headline
  :class:`RunResult` numbers;
* SLO panel — per-objective verdicts, compliance fractions, first
  violations (from the online monitors of :mod:`repro.obs.slo`);
* mode Gantt — the AES/BQ occupancy timeline;
* time series — windowed quality vs the ``Q_GE`` floor, and windowed
  total power vs the budget ``H`` (min/max band + mean line, straight
  from the :class:`repro.obs.stream.WindowSeries` rows);
* per-core utilization bars and a metrics table.

A ``repro.fleet/1`` rollup document (see
:mod:`repro.experiments.fleet`) renders through
:func:`render_fleet_report` instead — a fleet dashboard with the
rollup panel (per-scenario SLO compliance, cross-run quantiles,
throughput, drop accounting), a worker table and the per-run grid;
:func:`write_report` dispatches on the summary's ``schema`` tag.

Everything here is pure string building over the summary dict: no
simulation imports, no I/O except :func:`write_report`, no printing.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.runs import FLEET_SCHEMA

__all__ = ["render_fleet_report", "render_report", "write_report"]

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 62rem;
       color: #1c2330; background: #f6f7f9; }
h1 { font-size: 1.35rem; margin: 0 0 .25rem; }
h2 { font-size: 1.05rem; margin: 1.6rem 0 .5rem; }
.card { background: #fff; border: 1px solid #dde1e8; border-radius: 8px;
        padding: 1rem 1.25rem; margin-bottom: 1rem; }
.meta { color: #5b6575; font-size: .85rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #eceff3; }
th { color: #5b6575; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #186a3b; font-weight: 600; }
.viol { color: #a93226; font-weight: 600; }
.nodata { color: #8a93a3; }
svg { display: block; width: 100%; height: auto; }
.legend { font-size: .78rem; color: #5b6575; margin-top: .25rem; }
.swatch { display: inline-block; width: .7rem; height: .7rem; border-radius: 2px;
          margin: 0 .3rem 0 .9rem; vertical-align: -1px; }
"""

_AES_COLOR = "#2e86c1"
_BQ_COLOR = "#e67e22"
_BAND_COLOR = "#aed6f1"
_LINE_COLOR = "#1a5276"
_LIMIT_COLOR = "#a93226"


def _fmt(value: Any, digits: int = 6) -> str:
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return escape(str(value))


def _scale(
    lo: float, hi: float, size: float, pad: float
) -> Tuple[float, float]:
    """Affine map of [lo, hi] onto [pad, size - pad] as (offset, factor)."""
    span = hi - lo
    if span <= 0:
        span = 1.0
    factor = (size - 2 * pad) / span
    return pad - lo * factor, factor


def _series_svg(
    rows: List[Dict[str, Any]],
    *,
    limit: Optional[float] = None,
    limit_label: str = "",
    unit: str = "",
    width: int = 880,
    height: int = 180,
) -> str:
    """One windowed series as an SVG: min–max band, mean line, limit rule."""
    if not rows:
        return "<p class='nodata'>no data</p>"
    xs = [0.5 * (r["start"] + r["end"]) for r in rows]
    lo = min(r["min"] for r in rows)
    hi = max(r["max"] for r in rows)
    if limit is not None:
        lo, hi = min(lo, limit), max(hi, limit)
    x_off, x_f = _scale(min(r["start"] for r in rows),
                        max(r["end"] for r in rows), float(width), 8.0)
    y_off, y_f = _scale(lo, hi, float(height), 16.0)

    def px(x: float) -> str:
        return f"{x_off + x * x_f:.1f}"

    def py(y: float) -> str:
        # SVG y grows downward; flip.
        return f"{height - (y_off + y * y_f):.1f}"

    band = " ".join(f"{px(x)},{py(r['max'])}" for x, r in zip(xs, rows))
    band += " " + " ".join(
        f"{px(x)},{py(r['min'])}" for x, r in zip(reversed(xs), reversed(rows))
    )
    mean = " ".join(f"{px(x)},{py(r['mean'])}" for x, r in zip(xs, rows))
    parts = [
        f"<svg viewBox='0 0 {width} {height}' role='img'>",
        f"<polygon points='{band}' fill='{_BAND_COLOR}' opacity='0.6'/>",
        f"<polyline points='{mean}' fill='none' stroke='{_LINE_COLOR}' "
        "stroke-width='1.6'/>",
    ]
    if limit is not None:
        y = py(limit)
        parts.append(
            f"<line x1='0' y1='{y}' x2='{width}' y2='{y}' "
            f"stroke='{_LIMIT_COLOR}' stroke-width='1.2' stroke-dasharray='6 4'/>"
        )
        if limit_label:
            parts.append(
                f"<text x='{width - 6}' y='{float(y) - 5:.1f}' text-anchor='end' "
                f"font-size='11' fill='{_LIMIT_COLOR}'>"
                f"{escape(limit_label)} = {_fmt(limit, 4)}{escape(unit)}</text>"
            )
    for value in (lo, hi):
        parts.append(
            f"<text x='4' y='{float(py(value)) - 3:.1f}' font-size='10' "
            f"fill='#5b6575'>{_fmt(value, 3)}{escape(unit)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _gantt_svg(
    intervals: List[Dict[str, Any]],
    *,
    start: float,
    end: float,
    width: int = 880,
    height: int = 46,
) -> str:
    """The AES/BQ mode occupancy bar."""
    if not intervals:
        return "<p class='nodata'>no decisions recorded (non-GE scheduler?)</p>"
    x_off, x_f = _scale(start, max(end, start + 1e-9), float(width), 8.0)
    parts = [f"<svg viewBox='0 0 {width} {height}' role='img'>"]
    for interval in intervals:
        x0 = x_off + float(interval["start"]) * x_f
        x1 = x_off + float(interval["end"]) * x_f
        color = _BQ_COLOR if interval.get("mode") == "bq" else _AES_COLOR
        parts.append(
            f"<rect x='{x0:.1f}' y='8' width='{max(x1 - x0, 0.5):.1f}' "
            f"height='24' fill='{color}'>"
            f"<title>{escape(str(interval.get('mode', '?')))} "
            f"[{_fmt(interval['start'], 5)}, {_fmt(interval['end'], 5)}] s</title>"
            "</rect>"
        )
    for t in (start, end):
        parts.append(
            f"<text x='{x_off + t * x_f:.1f}' y='{height - 2}' font-size='10' "
            f"fill='#5b6575'>{_fmt(t, 4)}s</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _slo_table(slo: Dict[str, Any]) -> str:
    slos = slo.get("slos") or {}
    if not slos:
        return "<p class='nodata'>no SLOs evaluated</p>"
    rows = [
        "<table><tr><th>objective</th><th>kind</th><th class='num'>threshold</th>"
        "<th class='num'>compliance</th><th>verdict</th><th>first violation</th></tr>"
    ]
    for name, row in slos.items():
        if row.get("no_data"):
            verdict = "<span class='nodata'>no data</span>"
        elif row.get("compliant"):
            verdict = "<span class='ok'>compliant</span>"
        else:
            verdict = "<span class='viol'>violated</span>"
        violation = row.get("first_violation")
        first = "–"
        if violation:
            first = (f"t={_fmt(violation.get('time'), 5)}s, "
                     f"value={_fmt(violation.get('value'), 5)}")
        rows.append(
            f"<tr><td>{escape(name)}</td><td>{escape(str(row.get('kind', '')))}</td>"
            f"<td class='num'>{_fmt(row.get('threshold'), 4)}</td>"
            f"<td class='num'>{_fmt(row.get('compliance'), 4)}</td>"
            f"<td>{verdict}</td><td>{escape(first) if first == '–' else first}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _core_table(cores: Dict[str, Any]) -> str:
    if not cores:
        return "<p class='nodata'>no core telemetry</p>"
    rows = [
        "<table><tr><th>core</th><th class='num'>utilization</th>"
        "<th class='num'>busy (s)</th><th class='num'>slices</th>"
        "<th class='num'>volume</th><th class='num'>energy (J)</th><th></th></tr>"
    ]
    for core in sorted(cores, key=lambda c: int(c)):
        row = cores[core]
        util = float(row.get("utilization", 0.0))
        bar_w = max(0.0, min(1.0, util)) * 160.0
        bar = (
            f"<svg viewBox='0 0 160 10' style='width:160px'>"
            f"<rect x='0' y='0' width='160' height='10' fill='#eceff3'/>"
            f"<rect x='0' y='0' width='{bar_w:.1f}' height='10' "
            f"fill='{_AES_COLOR}'/></svg>"
        )
        rows.append(
            f"<tr><td>{escape(str(core))}</td>"
            f"<td class='num'>{util * 100:.1f}%</td>"
            f"<td class='num'>{_fmt(row.get('busy'), 5)}</td>"
            f"<td class='num'>{int(row.get('slices', 0))}</td>"
            f"<td class='num'>{_fmt(row.get('volume'), 6)}</td>"
            f"<td class='num'>{_fmt(row.get('energy'), 6)}</td>"
            f"<td>{bar}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _metrics_table(metrics: Dict[str, Any]) -> str:
    if not metrics:
        return "<p class='nodata'>no metrics</p>"
    rows = ["<table><tr><th>metric</th><th>kind</th><th>value</th></tr>"]
    for name in sorted(metrics):
        snap = metrics[name]
        kind = snap.get("kind", "?")
        if kind in ("counter", "gauge"):
            value = _fmt(snap.get("value"), 6)
        elif kind == "quantiles":
            estimates = snap.get("estimates") or {}
            value = "  ".join(
                f"{escape(label)}={_fmt(est, 4)}" for label, est in estimates.items()
            )
            value += f"  (n={snap.get('count', 0)})"
        elif kind == "phase":
            value = (f"n={snap.get('count', 0)} "
                     f"total={_fmt(snap.get('total_s'), 4)}s "
                     f"mean={_fmt(snap.get('mean_s'), 3)}s")
        else:  # histogram
            value = (f"n={snap.get('count', 0)} mean={_fmt(snap.get('mean'), 4)} "
                     f"min={_fmt(snap.get('min'), 4)} max={_fmt(snap.get('max'), 4)}")
            if snap.get("overflow") or snap.get("underflow"):
                value += (f" <span class='viol'>overflow={snap.get('overflow', 0)} "
                          f"underflow={snap.get('underflow', 0)}</span>")
        rows.append(
            f"<tr><td>{escape(name)}</td><td>{escape(str(kind))}</td>"
            f"<td class='num'>{value}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _chaos_table(events: List[Dict[str, Any]], dropped: int) -> str:
    """Disturbance markers (repro.chaos) as a table."""
    if not events:
        return "<p class='nodata'>no disturbances recorded</p>"
    rows = [
        "<table><tr><th class='num'>t (s)</th><th>disturbance</th>"
        "<th>details</th></tr>"
    ]
    detail_keys = ("core", "policy", "jobs", "alive", "factor", "budget_w", "edge")
    for event in events:
        details = "  ".join(
            f"{key}={_fmt(event[key], 5)}"
            for key in detail_keys
            if event.get(key) is not None
        )
        rows.append(
            f"<tr><td class='num'>{_fmt(event.get('time'), 5)}</td>"
            f"<td>{escape(str(event.get('disturbance', '?')))}</td>"
            f"<td>{details}</td></tr>"
        )
    rows.append("</table>")
    if dropped:
        rows.append(
            f"<p class='meta'>{dropped} further chaos event(s) not retained</p>"
        )
    return "".join(rows)


def _degradation_table(degradation: Dict[str, Any]) -> str:
    """The twin-run degradation analysis (see repro.experiments.chaos)."""
    if not degradation:
        return ""
    quality = degradation.get("quality") or {}
    energy = degradation.get("energy") or {}
    floor = degradation.get("floor") or {}
    post = degradation.get("post") or {}
    parts = [
        "<table><tr><th></th><th class='num'>disturbed</th>"
        "<th class='num'>undisturbed twin</th><th class='num'>delta</th></tr>",
        f"<tr><td>quality</td><td class='num'>{_fmt(quality.get('disturbed'), 6)}</td>"
        f"<td class='num'>{_fmt(quality.get('twin'), 6)}</td>"
        f"<td class='num'>{_fmt(quality.get('delta'), 4)}</td></tr>",
        f"<tr><td>energy (J)</td><td class='num'>{_fmt(energy.get('disturbed'), 6)}</td>"
        f"<td class='num'>{_fmt(energy.get('twin'), 6)}</td>"
        f"<td class='num'>{_fmt(energy.get('overhead_j'), 4)}</td></tr>",
        f"<tr><td>quality-floor violation (s)</td>"
        f"<td class='num'>{_fmt(floor.get('disturbed_violation_s'), 5)}</td>"
        f"<td class='num'>{_fmt(floor.get('twin_violation_s'), 5)}</td>"
        f"<td class='num'>{_fmt(floor.get('degradation_s'), 5)}</td></tr>",
        "</table>",
    ]
    recoveries = degradation.get("recoveries") or []
    if recoveries:
        parts.append(
            "<table><tr><th class='num'>t (s)</th><th>disturbance</th>"
            "<th class='num'>recovered at (s)</th>"
            "<th class='num'>recovery (s)</th></tr>"
        )
        for rec in recoveries:
            recovered = rec.get("recovery_s")
            cell = (
                f"<span class='viol'>never</span>" if recovered is None
                else f"{_fmt(recovered, 5)}"
            )
            parts.append(
                f"<tr><td class='num'>{_fmt(rec.get('time'), 5)}</td>"
                f"<td>{escape(str(rec.get('kind', '?')))}</td>"
                f"<td class='num'>{_fmt(rec.get('recovered_at'), 5)}</td>"
                f"<td class='num'>{cell}</td></tr>"
            )
        parts.append("</table>")
    if post:
        parts.append(
            f"<p class='meta'>post-recovery quality-floor compliance: "
            f"{_fmt(post.get('compliance'), 4)} over "
            f"{_fmt(post.get('windows'))} window(s) after "
            f"t={_fmt(post.get('after_s'), 5)}s</p>"
        )
    return "".join(parts)


def render_report(summary: Dict[str, Any]) -> str:
    """Render one run summary as a self-contained HTML document.

    ``summary`` follows the ``repro.run/1`` layout of
    :func:`repro.obs.runs.make_summary`; a raw
    :meth:`~repro.obs.stream.StreamingTracer.summary` dict (telemetry
    keys at the top level, ``meta`` inline) is accepted too.
    """
    if "telemetry" in summary:
        telemetry: Dict[str, Any] = summary.get("telemetry") or {}
        meta: Dict[str, Any] = summary.get("meta") or {}
    else:
        telemetry = summary
        meta = summary.get("meta") or {}
    result = summary.get("result") or {}
    windows = telemetry.get("windows") or {}
    start = float(meta.get("start", 0.0))
    end = float(meta.get("end", start))

    title = (f"{meta.get('scheduler', 'run')} · λ={_fmt(meta.get('arrival_rate'), 4)}/s"
             f" · seed {_fmt(meta.get('seed'))}")
    head_meta = (
        f"fingerprint {_fmt(meta.get('config_fingerprint'))} · "
        f"{_fmt(meta.get('cores'))} cores · H={_fmt(meta.get('budget'), 4)} W · "
        f"Q<sub>GE</sub>={_fmt(meta.get('q_ge'), 4)} · "
        f"span [{_fmt(start, 5)}, {_fmt(end, 5)}] s"
    )
    headline = ""
    if result:
        headline = (
            "<table><tr><th class='num'>quality</th><th class='num'>energy (J)</th>"
            "<th class='num'>jobs</th><th class='num'>mean speed</th>"
            "<th class='num'>utilization</th><th class='num'>AES fraction</th></tr>"
            f"<tr><td class='num'>{_fmt(result.get('quality'), 6)}</td>"
            f"<td class='num'>{_fmt(result.get('energy'), 6)}</td>"
            f"<td class='num'>{_fmt(result.get('jobs'))}</td>"
            f"<td class='num'>{_fmt(result.get('mean_speed'), 4)}</td>"
            f"<td class='num'>{_fmt(result.get('utilization'), 4)}</td>"
            f"<td class='num'>{_fmt(result.get('aes_fraction'), 4)}</td></tr></table>"
        )

    quality_rows = (windows.get("quality") or {}).get("rows") or []
    power_rows = (windows.get("power_total_w") or {}).get("rows") or []
    q_ge = meta.get("q_ge")
    budget = meta.get("budget")

    chaos_events = telemetry.get("chaos_events") or []
    degradation = summary.get("degradation") or {}
    chaos_card = ""
    if chaos_events or degradation:
        chaos_card = (
            "<div class='card'><h2>Disturbances (repro.chaos)</h2>"
            + _chaos_table(chaos_events, int(telemetry.get("chaos_dropped") or 0))
            + _degradation_table(degradation)
            + "</div>"
        )

    sections = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>repro report · {escape(str(meta.get('scheduler', 'run')))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<div class='card'><h1>{title}</h1>",
        f"<p class='meta'>{head_meta}</p>{headline}</div>",
        "<div class='card'><h2>SLO compliance</h2>",
        _slo_table(telemetry.get("slo") or {}),
        "</div>",
        "<div class='card'><h2>Mode timeline (AES / BQ)</h2>",
        _gantt_svg(telemetry.get("mode_intervals") or [], start=start, end=end),
        "<p class='legend'>mode"
        f"<span class='swatch' style='background:{_AES_COLOR}'></span>AES"
        f"<span class='swatch' style='background:{_BQ_COLOR}'></span>BQ</p></div>",
        chaos_card,
        "<div class='card'><h2>Quality (windowed)</h2>",
        _series_svg(
            quality_rows,
            limit=float(q_ge) if q_ge is not None else None,
            limit_label="Q_GE",
        ),
        "</div>",
        "<div class='card'><h2>Total power (windowed)</h2>",
        _series_svg(
            power_rows,
            limit=float(budget) if budget is not None else None,
            limit_label="H",
            unit=" W",
        ),
        "<p class='legend'>band = window min–max, line = window mean</p></div>",
        "<div class='card'><h2>Per-core utilization</h2>",
        _core_table(telemetry.get("core_utilization") or {}),
        "</div>",
        "<div class='card'><h2>Metrics</h2>",
        _metrics_table(telemetry.get("metrics") or {}),
        "</div>",
        "</body></html>",
    ]
    return "".join(sections)


# ----------------------------------------------------------------------
# Fleet dashboard (repro.fleet/1)
# ----------------------------------------------------------------------
def _fleet_scenario_table(scenarios: Dict[str, Any]) -> str:
    if not scenarios:
        return "<p class='nodata'>no scenario rollups</p>"
    rows = [
        "<table><tr><th>scenario</th><th class='num'>tasks</th>"
        "<th class='num'>SLO</th><th class='num'>Q min</th>"
        "<th class='num'>Q mean</th><th class='num'>Q max</th>"
        "<th class='num'>energy (J)</th><th class='num'>events</th></tr>"
    ]
    for name in sorted(scenarios):
        row = scenarios[name]
        evaluated = int(row.get("slo_evaluated", 0))
        if evaluated:
            compliant = int(row.get("slo_compliant", 0))
            cls = "ok" if compliant == evaluated else "viol"
            slo = f"<span class='{cls}'>{compliant}/{evaluated}</span>"
        else:
            slo = "<span class='nodata'>–</span>"
        rows.append(
            f"<tr><td>{escape(name)}</td>"
            f"<td class='num'>{_fmt(row.get('tasks'))}</td>"
            f"<td class='num'>{slo}</td>"
            f"<td class='num'>{_fmt(row.get('quality_min'), 4)}</td>"
            f"<td class='num'>{_fmt(row.get('quality_mean'), 4)}</td>"
            f"<td class='num'>{_fmt(row.get('quality_max'), 4)}</td>"
            f"<td class='num'>{_fmt(row.get('energy_sum'), 6)}</td>"
            f"<td class='num'>{_fmt(row.get('events'))}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _fleet_worker_table(workers: Dict[str, Any]) -> str:
    if not workers:
        return "<p class='nodata'>no worker records</p>"
    rows = [
        "<table><tr><th>worker</th><th class='num'>pid</th>"
        "<th class='num'>messages</th><th class='num'>done</th>"
        "<th class='num'>failed</th><th>lifecycle</th>"
        "<th class='num'>dropped</th><th class='num'>exit</th></tr>"
    ]
    for key in sorted(workers, key=lambda k: int(k)):
        row = workers[key]
        if row.get("bye"):
            lifecycle = "<span class='ok'>clean</span>"
        elif row.get("hello"):
            lifecycle = "<span class='viol'>died</span>"
        else:
            lifecycle = "<span class='nodata'>never heard</span>"
        dropped = sum((row.get("dropped") or {}).values())
        rows.append(
            f"<tr><td>{escape(str(row.get('worker', key)))}</td>"
            f"<td class='num'>{_fmt(row.get('pid'))}</td>"
            f"<td class='num'>{_fmt(row.get('messages'))}</td>"
            f"<td class='num'>{_fmt(row.get('tasks_done'))}</td>"
            f"<td class='num'>{_fmt(row.get('tasks_failed'))}</td>"
            f"<td>{lifecycle}</td>"
            f"<td class='num'>{dropped}</td>"
            f"<td class='num'>{_fmt(row.get('exitcode'))}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _fleet_run_grid(tasks: List[Dict[str, Any]]) -> str:
    if not tasks:
        return "<p class='nodata'>no tasks</p>"
    rows = [
        "<table><tr><th>task</th><th>scenario</th><th class='num'>seed</th>"
        "<th class='num'>rate</th><th>status</th><th class='num'>quality</th>"
        "<th class='num'>energy (J)</th><th>SLO</th><th class='num'>wall (s)</th>"
        "<th>run id</th></tr>"
    ]
    for task in tasks:
        if task.get("ok"):
            status = "<span class='ok'>ok</span>"
        else:
            status = "<span class='viol'>failed</span>"
        slo = task.get("slo_compliant")
        if slo is None:
            slo_cell = "<span class='nodata'>–</span>"
        elif slo:
            slo_cell = "<span class='ok'>ok</span>"
        else:
            slo_cell = "<span class='viol'>viol</span>"
        rows.append(
            f"<tr><td>{escape(str(task.get('key', '?')))}</td>"
            f"<td>{escape(str(task.get('scenario', '?')))}</td>"
            f"<td class='num'>{_fmt(task.get('seed'))}</td>"
            f"<td class='num'>{_fmt(task.get('rate'), 4)}</td>"
            f"<td>{status}</td>"
            f"<td class='num'>{_fmt(task.get('quality'), 6)}</td>"
            f"<td class='num'>{_fmt(task.get('energy'), 6)}</td>"
            f"<td>{slo_cell}</td>"
            f"<td class='num'>{_fmt(task.get('wall_s'), 4)}</td>"
            f"<td class='meta'>{_fmt(task.get('run_id'))}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _fleet_error_cards(errors: List[Dict[str, Any]]) -> str:
    if not errors:
        return "<p class='ok'>no task failures</p>"
    parts = []
    for error in errors:
        parts.append(
            f"<p><span class='viol'>[{escape(str(error.get('kind', '?')))}]</span> "
            f"task <b>{escape(str(error.get('task', '?')))}</b> "
            f"(worker {_fmt(error.get('worker'))}): "
            f"{escape(str(error.get('exception', '')))}</p>"
        )
        if error.get("traceback"):
            parts.append(
                f"<pre style='font-size:.75rem;overflow-x:auto'>"
                f"{escape(str(error['traceback']))}</pre>"
            )
    return "".join(parts)


def render_fleet_report(summary: Dict[str, Any]) -> str:
    """Render one ``repro.fleet/1`` rollup as a self-contained dashboard."""
    meta = summary.get("meta") or {}
    rollup = summary.get("rollup") or {}
    tasks = rollup.get("tasks") or {}
    throughput = rollup.get("throughput") or {}
    quantiles = rollup.get("quantiles") or {}
    dropped = rollup.get("dropped") or {}

    failed = int(tasks.get("failed", 0) or 0)
    verdict = (
        "<span class='ok'>all tasks succeeded</span>" if not failed else
        f"<span class='viol'>{failed} task(s) failed</span>"
    )
    headline = (
        "<table><tr><th class='num'>tasks</th><th class='num'>succeeded</th>"
        "<th class='num'>failed</th><th class='num'>events</th>"
        "<th class='num'>events/s</th><th class='num'>worker wall (s)</th></tr>"
        f"<tr><td class='num'>{_fmt(tasks.get('total'))}</td>"
        f"<td class='num'>{_fmt(tasks.get('succeeded'))}</td>"
        f"<td class='num'>{_fmt(tasks.get('failed'))}</td>"
        f"<td class='num'>{_fmt(throughput.get('events'))}</td>"
        f"<td class='num'>{_fmt(throughput.get('events_per_sec'), 6)}</td>"
        f"<td class='num'>{_fmt(throughput.get('worker_wall_s'), 4)}</td></tr>"
        "</table>"
    )
    quantile_rows = ["<table><tr><th>statistic</th><th class='num'>p50</th>"
                     "<th class='num'>p90</th></tr>"]
    for name in sorted(quantiles):
        qs = quantiles[name] or {}
        quantile_rows.append(
            f"<tr><td>{escape(name)}</td>"
            f"<td class='num'>{_fmt(qs.get('p50'), 5)}</td>"
            f"<td class='num'>{_fmt(qs.get('p90'), 5)}</td></tr>"
        )
    quantile_rows.append("</table>")
    drop_total = sum(dropped.values()) if dropped else 0
    drop_note = (
        f"<p class='meta'>dropped telemetry messages: {drop_total}"
        + (" (" + ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()) if v) + ")"
           if drop_total else "")
        + f" · live SLO violation events: {_fmt(rollup.get('slo_violation_events'))}</p>"
    )

    sections = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>repro fleet · {escape(str(summary.get('run_id', '?')))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<div class='card'><h1>fleet {escape(str(summary.get('run_id', '?')))}</h1>",
        f"<p class='meta'>mode {_fmt(meta.get('mode'))} · "
        f"{_fmt(meta.get('workers'))} worker(s) · {verdict}</p>"
        f"{headline}{drop_note}</div>",
        "<div class='card'><h2>Per-scenario rollup</h2>",
        _fleet_scenario_table(rollup.get("scenarios") or {}),
        "</div>",
        "<div class='card'><h2>Cross-run quantiles</h2>",
        "".join(quantile_rows),
        "<p class='legend'>exact quantiles over per-run scalars — "
        "P² sketch states are never merged (see docs/observability.md)</p></div>",
        "<div class='card'><h2>Workers</h2>",
        _fleet_worker_table(rollup.get("workers") or {}),
        "</div>",
        "<div class='card'><h2>Per-run grid</h2>",
        _fleet_run_grid(summary.get("tasks") or []),
        "</div>",
        "<div class='card'><h2>Failures</h2>",
        _fleet_error_cards(summary.get("errors") or []),
        "</div>",
        "</body></html>",
    ]
    return "".join(sections)


def write_report(summary: Dict[str, Any], path: Union[str, Path]) -> int:
    """Write the summary's HTML rendering to ``path``; returns byte count.

    Dispatches on the ``schema`` tag: ``repro.fleet/1`` documents get
    the fleet dashboard, everything else the single-run report.
    """
    if summary.get("schema") == FLEET_SCHEMA:
        html = render_fleet_report(summary)
    else:
        html = render_report(summary)
    data = html.encode("utf-8")
    Path(path).write_bytes(data)
    return len(data)
