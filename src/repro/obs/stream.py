"""Streaming telemetry: bounded-memory aggregation over sim-time.

The full :class:`repro.obs.tracer.Tracer` materializes every span,
event and sample in memory — perfect for debugging a 10-second
scenario, linear in the horizon for anything else.  This module is the
constant-memory alternative:

* :class:`WindowSeries` — tumbling/sliding window aggregates (count /
  sum / min / max / mean / last) over **simulated** time.  The window
  width defaults to ``horizon / DEFAULT_WINDOWS``, so the number of
  retained rows is a constant (~:data:`DEFAULT_WINDOWS`) regardless of
  how long the run is or how many records it emits;
* :class:`StreamAggregator` — folds the trace streams (per-round
  ``decision`` events, per-core timeline samples, settle events, exec
  spans) into those windows, P² quantile sketches
  (:class:`repro.obs.registry.QuantileSketch`), online mode intervals,
  per-core utilization and the online SLO monitors of
  :mod:`repro.obs.slo`;
* :class:`StreamingTracer` — a drop-in tracer that feeds every record
  to a :class:`StreamAggregator` **instead of buffering it**, and can
  optionally spill the raw records to JSONL incrementally (constant
  memory either way).

**Exactness.**  Each aggregation stream folds exactly one record kind
in its emission order — decisions by ``seq``, sample batches
chronologically, exec spans per-core in close order (a core runs one
slice at a time, so close order equals open order) — and the offline
:func:`fold_records` replays the very same fold over exported JSONL.
Online and offline aggregates therefore agree *bit-for-bit*, including
the P² sketches, which are pure functions of the observation sequence
(pinned by ``tests/obs/test_stream.py``).

All windowing is in simulated seconds; nothing here reads a wall clock
(sim-lint SIM001 applies to this module with no exemption).
"""

from __future__ import annotations

import json
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    TextIO,
    Union,
)

from repro.obs.registry import MetricsRegistry, QuantileSketch
from repro.obs.slo import SLOSpec, SLOTracker, default_slos
from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.timeline import TimelineSample
from repro.obs.tracer import Trace, Tracer
from repro.units import Seconds, Volume

if TYPE_CHECKING:  # type-only: repro.obs stays import-light at runtime
    from repro.server.machine import MulticoreServer
    from repro.workload.job import Job

__all__ = [
    "DEFAULT_WINDOWS",
    "StreamAggregator",
    "StreamingTracer",
    "WindowSeries",
    "fold_records",
]

#: Default number of tumbling windows the horizon is divided into.
#: Fixing the window *count* (not the width) is what makes streaming
#: memory flat versus horizon: a 4x-longer run gets 4x-wider windows,
#: not 4x more rows.
DEFAULT_WINDOWS = 60

#: Mode intervals retained verbatim for the Gantt display.  AES↔BQ
#: switching continues for the whole run, so the interval list is the
#: one naturally unbounded aggregate; past this cap further intervals
#: fold into the (exact) ``mode_totals`` aggregate only and
#: ``intervals_dropped`` records how many were not retained — a
#: truncated Gantt, never silent truncation.
MAX_MODE_INTERVALS = 64

#: Chaos (disturbance) events retained verbatim for degradation panels
#: in reports.  Schedules are hand-written and small, so the cap exists
#: only as a bounded-memory guarantee; ``chaos_dropped`` counts any
#: overflow — truncated markers, never silent truncation.
MAX_CHAOS_EVENTS = 128


class WindowSeries:
    """Tumbling/sliding window aggregates of one value stream.

    Values are folded into *panes* of ``slide`` simulated seconds; a
    window spans ``width / slide`` consecutive panes (``width ==
    slide``, the default, is a plain tumbling window).  Pane aggregates
    (count, sum, min, max, last) compose exactly, so a sliding-window
    row equals the fold of its panes with no approximation.

    ``observe`` must be called with non-decreasing times (trace streams
    are chronological).  Completed rows accumulate in :attr:`rows` —
    O(elapsed / slide) of them, independent of the observation count —
    and windows with no observations produce no row, so sparse series
    stay sparse.
    """

    __slots__ = ("name", "width", "slide", "rows", "_panes", "_pane_index", "_finished")

    def __init__(self, name: str, *, width: Seconds, slide: Optional[Seconds] = None) -> None:
        if width <= 0:
            raise ValueError(f"window series {name}: width must be positive")
        slide = width if slide is None else float(slide)
        if slide <= 0 or slide > width:
            raise ValueError(f"window series {name}: slide must be in (0, width]")
        span = width / slide
        if abs(span - round(span)) > 1e-9:
            raise ValueError(f"window series {name}: width must be a multiple of slide")
        self.name = name
        self.width = float(width)
        self.slide = slide
        self.rows: List[Dict[str, Any]] = []
        self._panes: List[Optional[Dict[str, Any]]] = []
        self._pane_index = 0
        self._finished = False

    @property
    def _panes_per_window(self) -> int:
        return int(round(self.width / self.slide))

    def observe(self, time: Seconds, value: float) -> None:
        """Fold one observation at simulated ``time``."""
        if self._finished:
            raise ValueError(f"window series {self.name}: already finished")
        index = int(time / self.slide)
        if not self._panes:
            self._pane_index = index
            self._panes = [None]
        elif index > self._pane_index:
            self._advance_to(index)
        pane = self._panes[-1]
        if pane is None:
            pane = {"count": 0, "sum": 0.0, "min": value, "max": value, "last": value}
            self._panes[-1] = pane
        pane["count"] += 1
        pane["sum"] += value
        if value < pane["min"]:
            pane["min"] = value
        if value > pane["max"]:
            pane["max"] = value
        pane["last"] = value

    def _advance_to(self, index: int) -> None:
        """Open the pane at ``index``, emitting windows that completed."""
        per_window = self._panes_per_window
        while self._pane_index < index:
            self._pane_index += 1
            self._panes.append(None)
            if len(self._panes) > per_window:
                self._emit(self._pane_index - len(self._panes) + 1, per_window)
                self._panes.pop(0)

    def _emit(self, first_pane: int, npanes: int) -> None:
        """Emit the window of ``npanes`` panes starting at ``first_pane``."""
        live = [p for p in self._panes[:npanes] if p is not None]
        if not live:
            return  # fully empty window: no row
        row: Dict[str, Any] = {
            "start": first_pane * self.slide,
            "end": first_pane * self.slide + self.width,
            "count": sum(p["count"] for p in live),
            "sum": sum(p["sum"] for p in live),
            "min": min(p["min"] for p in live),
            "max": max(p["max"] for p in live),
            "last": live[-1]["last"],
        }
        row["mean"] = row["sum"] / row["count"]
        self.rows.append(row)

    def finish(self, end: Seconds) -> None:
        """Flush the final (possibly partial) window at run end."""
        if self._finished:
            return
        self._finished = True
        if self._panes:
            self._emit(self._pane_index - len(self._panes) + 1, len(self._panes))
            self._panes = []

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native state: window geometry plus the emitted rows."""
        return {
            "width": self.width,
            "slide": self.slide,
            "rows": [dict(r) for r in self.rows],
        }


def _window_width(meta: Dict[str, Any]) -> Seconds:
    horizon = float(meta.get("horizon") or 0.0)
    if horizon <= 0:
        return 1.0
    return horizon / DEFAULT_WINDOWS


class StreamAggregator:
    """Folds trace streams into bounded-memory aggregates.

    One instance serves one run (or one offline replay of that run's
    exported records).  The entry points mirror the record streams:

    * :meth:`on_event` — ``decision`` / ``settle`` fold into windows,
      sketches, mode intervals and SLO monitors; other kinds are
      counted and ignored;
    * :meth:`on_sample_batch` — one quantum boundary's per-core
      timeline samples;
    * :meth:`on_span_close` — a closed span (exec slices fold into
      per-core utilization);
    * :meth:`finish` — close time-weighted accumulators at run end.

    The streams are independent — no accumulator mixes records of two
    kinds — which is why the offline replay (whose canonical JSONL
    groups samples after events) folds each stream in exactly the
    online order.
    """

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        slos: Optional[List[SLOSpec]] = None,
        window_width: Optional[float] = None,
        window_slide: Optional[float] = None,
        on_violation: Optional[Callable[[str, float, float, float], None]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._slos = slos
        self._width = window_width
        self._slide = window_slide
        self._on_violation = on_violation
        self.meta: Dict[str, Any] = {}
        self.series: Dict[str, WindowSeries] = {}
        self.slo: Optional[SLOTracker] = None
        self.mode_intervals: List[Dict[str, Any]] = []
        self.mode_totals: Dict[str, float] = {
            "switches": 0, "aes_s": 0.0, "bq_s": 0.0, "intervals_dropped": 0,
        }
        self.record_counts: Dict[str, int] = {"span": 0, "event": 0, "sample": 0}
        self.chaos_events: List[Dict[str, Any]] = []
        self.chaos_dropped = 0
        self._started = False
        self._finished = False
        self._mode: Optional[str] = None
        self._mode_start = 0.0
        self._last_decision: Optional[float] = None
        self._cores: Dict[int, Dict[str, float]] = {}
        self._gap_sketch: Optional[QuantileSketch] = None
        self._end: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, meta: Dict[str, Any]) -> None:
        """Arm the aggregator from the run's metadata.

        Window width derives from ``meta["horizon"]`` (unless given
        explicitly) and the default SLOs from ``q_ge`` / ``budget``
        (see :func:`repro.obs.slo.default_slos`).  Metadata keys are
        merged on every call, but arming happens once — an offline
        replay may see both a provisional and a final header.
        """
        self.meta.update(meta)
        if self._started:
            return
        self._started = True
        width = self._width if self._width is not None else _window_width(self.meta)
        for name in ("quality", "queue_depth", "power_total_w",
                     "speed_mean_ghz", "reschedule_gap_s"):
            self.series[name] = WindowSeries(name, width=width, slide=self._slide)
        self._gap_sketch = self.registry.quantiles(
            "stream.reschedule_gap_s", qs=(0.5, 0.9, 0.99)
        )
        specs = self._slos if self._slos is not None else default_slos(self.meta)
        self.slo = SLOTracker(
            specs, registry=self.registry, on_violation=self._on_violation
        )
        self._mode_start = float(self.meta.get("start", 0.0))

    def _require_started(self) -> None:
        # Headerless stream (unit tests, truncated files): arm with
        # defaults so records are never silently dropped.
        if not self._started:
            self.start({})

    # ------------------------------------------------------------------
    # Stream entry points
    # ------------------------------------------------------------------
    def on_event(self, time: Seconds, kind: str, attrs: Dict[str, Any]) -> None:
        """Fold one event record."""
        if kind == "slo_violation":
            # Derived annotation emitted by the streaming sink itself,
            # absent from a full tracer's record stream — not folded and
            # not counted, so aggregates agree across sinks exactly.
            return
        self._require_started()
        self.record_counts["event"] += 1
        slo = self.slo
        assert slo is not None
        if kind == "decision":
            quality = float(attrs["monitor_quality"])
            mode = str(attrs["mode"])
            self.series["quality"].observe(time, quality)
            self.series["queue_depth"].observe(time, float(attrs.get("batch_size", 0)))
            if self._last_decision is not None:
                gap = time - self._last_decision
                self.series["reschedule_gap_s"].observe(time, gap)
                assert self._gap_sketch is not None
                self._gap_sketch.observe(gap)
            self._last_decision = time
            if mode != self._mode:
                if self._mode is not None:
                    self._close_mode_interval(time)
                    self.mode_totals["switches"] += 1
                self._mode_start = time
                self._mode = mode
            slo.on_decision(time, mode=mode, quality=quality)
        elif kind == "settle":
            slo.on_settle(time, outcome=str(attrs.get("outcome", "")))
        elif kind == "chaos":
            # Disturbance markers (repro.chaos): retained verbatim (up
            # to the cap) so reports can draw degradation windows.
            if len(self.chaos_events) < MAX_CHAOS_EVENTS:
                self.chaos_events.append({"time": float(time), **attrs})
            else:
                self.chaos_dropped += 1

    def on_sample_batch(self, time: Seconds, samples: List[TimelineSample]) -> None:
        """Fold one quantum boundary's core samples (one per core)."""
        self._require_started()
        if not samples:
            return
        self.record_counts["sample"] += len(samples)
        total_power = 0.0
        total_speed = 0.0
        for sample in samples:
            total_power += sample.power
            total_speed += sample.speed
            row = self._cores.setdefault(
                sample.core,
                {"busy": 0.0, "slices": 0.0, "volume": 0.0, "energy": 0.0},
            )
            row["energy"] = sample.energy  # cumulative: last sample wins
        self.series["power_total_w"].observe(time, total_power)
        self.series["speed_mean_ghz"].observe(time, total_speed / len(samples))
        assert self.slo is not None
        self.slo.on_power(time, total_power)

    def on_span_close(self, span: SpanRecord) -> None:
        """Fold one closed span (exec slices feed per-core totals)."""
        self._require_started()
        self.record_counts["span"] += 1
        if span.name != "exec" or span.end is None:
            return
        core = int(span.attrs["core"])
        row = self._cores.setdefault(
            core, {"busy": 0.0, "slices": 0.0, "volume": 0.0, "energy": 0.0}
        )
        row["busy"] += span.end - span.start
        row["slices"] += 1
        row["volume"] += float(span.attrs.get("done", 0.0))

    def finish(self, end: Seconds) -> None:
        """Close all time-weighted accumulators at simulated ``end``."""
        self._require_started()
        if self._finished:
            return
        self._finished = True
        self._end = float(end)
        if self._mode is not None:
            self._close_mode_interval(float(end))
        for series in self.series.values():
            series.finish(float(end))
        assert self.slo is not None
        self.slo.finish(float(end))

    def _close_mode_interval(self, end: Seconds) -> None:
        """Account the interval ending at ``end``; retain it if under the cap."""
        assert self._mode is not None
        key = "aes_s" if self._mode == "aes" else "bq_s"
        self.mode_totals[key] += end - self._mode_start
        if len(self.mode_intervals) < MAX_MODE_INTERVALS:
            self.mode_intervals.append(
                {"start": self._mode_start, "end": end, "mode": self._mode}
            )
        else:
            self.mode_totals["intervals_dropped"] += 1

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def core_utilization(self) -> Dict[int, Dict[str, float]]:
        """Per-core busy/slices/volume/energy/utilization.

        Same shape as :func:`repro.obs.analyze.core_utilization`, built
        incrementally instead of from a materialized trace.
        """
        start = float(self.meta.get("start", 0.0))
        end = self._end if self._end is not None else start
        span_len = end - start
        out: Dict[int, Dict[str, float]] = {}
        for core in sorted(self._cores):
            row = dict(self._cores[core])
            row["utilization"] = row["busy"] / span_len if span_len > 0 else 0.0
            out[core] = row
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native aggregate state (the telemetry half of a run summary)."""
        return {
            "windows": {
                name: series.snapshot() for name, series in sorted(self.series.items())
            },
            "mode_intervals": [dict(i) for i in self.mode_intervals],
            "mode_totals": dict(self.mode_totals),
            "core_utilization": {
                str(core): row for core, row in self.core_utilization().items()
            },
            "slo": self.slo.summary() if self.slo is not None else {},
            "record_counts": dict(self.record_counts),
            "chaos_events": [dict(e) for e in self.chaos_events],
            "chaos_dropped": self.chaos_dropped,
        }


class StreamingTracer(Tracer):
    """A tracer that aggregates instead of buffering.

    Every record the instrumented simulator emits is folded into a
    :class:`StreamAggregator` (windows, sketches, SLO monitors, mode
    intervals, per-core totals) and then **dropped** — :attr:`spans` /
    :attr:`events` / :attr:`samples` stay empty, so telemetry memory is
    flat in the horizon (pinned by ``tests/obs/test_stream.py``).
    Record ids (``seq``, ``span_id``) advance exactly as in the full
    tracer, so spilled records are comparable across sinks.

    Pass ``spill_path`` to additionally append every raw record to a
    JSONL file as it is emitted (still constant memory).  Spans are
    written when they *close*, so the file is ordered by close-seq
    rather than the canonical open-seq of
    :func:`repro.obs.export.write_jsonl`;
    :func:`repro.obs.export.read_jsonl` accepts both.  A provisional
    ``meta`` header is written at run start and superseded by the final
    one at run end (readers keep the last header seen).

    SLO specs default to :func:`repro.obs.slo.default_slos` over the
    run metadata (quality floor ``Q_GE``, power budget ``H``,
    deadline-miss rate, BQ dwell); pass ``slos`` to override.  First
    violations are emitted as ``slo_violation`` events, and the
    machine-readable compliance summary lands in ``meta["slo"]`` at run
    end.
    """

    def __init__(
        self,
        *,
        spill_path: Optional[str] = None,
        slos: Optional[List[SLOSpec]] = None,
        window_width: Optional[float] = None,
        window_slide: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.aggregator = StreamAggregator(
            registry=self.metrics,
            slos=slos,
            window_width=window_width,
            window_slide=window_slide,
            on_violation=self._emit_violation,
        )
        self._spill_fh: Optional[TextIO] = None
        self._spilled = 0
        self._closed = False
        if spill_path is not None:
            self._spill_fh = open(spill_path, "w", encoding="utf-8")

    # ------------------------------------------------------------------
    # Spill plumbing
    # ------------------------------------------------------------------
    @property
    def spilled_records(self) -> int:
        """Raw records written to the spill file so far."""
        return self._spilled

    def _spill(self, record: Dict[str, Any]) -> None:
        if self._spill_fh is None:
            return
        # Single write call per record: an interrupt (SIGINT) between
        # two writes could leave a record without its newline, breaking
        # the partial-trace-is-valid-JSONL guarantee.
        self._spill_fh.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._spilled += 1

    def _spill_meta(self) -> None:
        from repro.obs.export import TRACE_SCHEMA

        self._spill({"type": "meta", "schema": TRACE_SCHEMA, "meta": dict(self.meta)})

    def _emit_violation(
        self, name: str, time: Seconds, value: float, threshold: float
    ) -> None:
        # Routed through the normal event path, so it is folded
        # (count-only: the aggregator ignores unknown kinds) and
        # spilled like any other scheduler event.
        self.event(
            "slo_violation", time, slo=name, value=float(value),
            threshold=float(threshold),
        )

    # ------------------------------------------------------------------
    # Overridden record sinks: fold + spill, never retain
    # ------------------------------------------------------------------
    def begin_span(
        self,
        name: str,
        time: Seconds,
        *,
        parent: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> SpanRecord:
        """Open a span without retaining it (folded when it closes)."""
        span = SpanRecord(
            span_id=self._next_span_id,
            name=name,
            start=float(time),
            seq=self._next_seq(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_span_id += 1
        return span

    def end_span(self, span: SpanRecord, time: Seconds, **attrs: Any) -> None:
        """Close ``span``, fold it into the aggregates and spill it."""
        span.close(time, **attrs)
        self.aggregator.on_span_close(span)
        self._spill(span.to_record())

    def event(
        self,
        kind: str,
        time: Seconds,
        *,
        span: Optional[SpanRecord] = None,
        **attrs: Any,
    ) -> EventRecord:
        """Fold and spill a point event without retaining it."""
        record = EventRecord(
            time=float(time),
            kind=kind,
            seq=self._next_seq(),
            span_id=span.span_id if span is not None else None,
            attrs=attrs,
        )
        self.aggregator.on_event(record.time, kind, attrs)
        self._spill(record.to_record())
        return record

    def job_settled(self, job: Job, time: Seconds) -> None:
        """Close the job span through the folding/spilling path."""
        span = self._job_spans.pop(job.jid, None)
        if span is None:
            return  # job predates the tracer (never happens via the harness)
        self.event("settle", time, span=span, outcome=job.outcome.value)
        self.end_span(span, time, outcome=job.outcome.value, processed=job.processed)

    def exec_end(self, span: SpanRecord, time: Seconds, done: Volume) -> None:
        """Close an execution slice through the folding/spilling path."""
        self.end_span(span, time, done=float(done))

    def sample_cores(self, machine: MulticoreServer, time: Seconds) -> None:
        """Fold and spill one quantum boundary's core samples."""
        samples = self._sampler.sample(machine, time)
        self.aggregator.on_sample_batch(float(time), samples)
        for sample in samples:
            self._spill(sample.to_record())

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def run_started(self, time: Seconds, **meta: Any) -> None:
        super().run_started(time, **meta)
        self.aggregator.start(self.meta)
        self._spill_meta()  # provisional header, superseded at run end

    def run_finished(self, machine: MulticoreServer, time: Seconds, **meta: Any) -> None:
        super().run_finished(machine, time, **meta)
        self.close(end=float(time))

    def close(self, end: Optional[float] = None) -> None:
        """Finalize the aggregates; write the spill tail, close the file.

        Idempotent.  Called automatically from :meth:`run_finished`;
        call it directly when feeding records outside a harness run.
        """
        if self._closed:
            return
        self._closed = True
        if end is None:
            end = float(self.meta.get("end", self.meta.get("start", 0.0)))
        self.aggregator.finish(end)
        assert self.aggregator.slo is not None
        self.meta["slo"] = self.aggregator.slo.summary()
        if self._spill_fh is not None:
            self._spill_meta()  # final, complete header
            for name, snap in self.metrics.snapshot().items():
                self._spill({"type": "metric", "name": name, **snap})
            self._spill_fh.close()
            self._spill_fh = None

    def summary(self) -> Dict[str, Any]:
        """The run's full streaming summary (JSON-native).

        Window series, mode intervals, per-core utilization, SLO
        compliance, record counts, the metrics snapshot and the run
        metadata — everything ``repro report`` and the run registry
        consume.
        """
        telemetry = self.aggregator.snapshot()
        telemetry["meta"] = dict(self.meta)
        telemetry["metrics"] = self.metrics.snapshot()
        return telemetry


def fold_records(
    records: Union[Trace, Iterable[Dict[str, Any]]],
    *,
    slos: Optional[List[SLOSpec]] = None,
    window_width: Optional[float] = None,
    window_slide: Optional[float] = None,
) -> StreamAggregator:
    """Replay trace records through a fresh :class:`StreamAggregator`.

    ``records`` is an iterable of JSON-native record dicts (e.g. from
    :func:`repro.obs.export.iter_jsonl` or
    :func:`repro.obs.export.trace_records`) or a materialized
    :class:`~repro.obs.tracer.Trace`.  Sample records are regrouped
    into per-boundary batches: cores are sampled in ascending index
    order, so a batch ends when the core index stops increasing (two
    consecutive batches may share a timestamp at the drain boundary,
    so time alone cannot delimit them).  Returns the finished
    aggregator, whose :meth:`~StreamAggregator.snapshot` equals the
    online one of a :class:`StreamingTracer` on the same run exactly.
    """
    from repro.obs.export import trace_records

    if isinstance(records, Trace):
        records = trace_records(records)
    agg = StreamAggregator(
        slos=slos, window_width=window_width, window_slide=window_slide
    )
    pending: List[TimelineSample] = []

    def flush_samples() -> None:
        if pending:
            agg.on_sample_batch(pending[0].time, pending)
            pending.clear()

    end: Optional[float] = None
    for record in records:
        rtype = record.get("type")
        if rtype == "sample":
            sample = TimelineSample.from_record(record)
            if pending and sample.core <= pending[-1].core:
                flush_samples()
            pending.append(sample)
            continue
        flush_samples()
        if rtype == "meta":
            agg.start(dict(record["meta"]))
            if "end" in record["meta"]:
                end = float(record["meta"]["end"])
        elif rtype == "event":
            # Spilled ``slo_violation`` events pass through here too;
            # the aggregator ignores them (the offline SLO tracker
            # re-detects its own violations from the source streams).
            agg.on_event(
                float(record["time"]), str(record["kind"]),
                dict(record.get("attrs", {})),
            )
        elif rtype == "span":
            span = SpanRecord.from_record(record)
            if span.end is not None:
                agg.on_span_close(span)
    flush_samples()
    if end is None:
        end = float(agg.meta.get("end", agg.meta.get("start", 0.0)))
    agg.finish(end)
    return agg
