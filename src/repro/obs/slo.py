"""Online SLO monitors: the paper's invariants, checked during the run.

The GE scheduler's contract is operational, not retrospective: keep
aggregate quality at or above ``Q_GE`` while total power stays inside
the budget ``H``.  These monitors evaluate that contract *while the
simulation runs*, from the same record streams the tracer already
emits — no trace buffering, no post-hoc pass:

* ``quality_floor`` — fraction of decided time with monitor quality at
  or above the floor (piecewise-constant between rounds, left value);
* ``power_budget`` — per-sample headroom ``H − ΣP(t)`` with
  constant-memory P² percentiles and a compliant-sample fraction;
* ``deadline_miss`` — expired + dropped jobs as a fraction of settled
  jobs, against a maximum rate;
* ``bq_dwell`` — fraction of decided time spent in BQ (compensation)
  mode, against a maximum dwell.

Each spec fires an ``on_violation`` callback exactly once, at the
first observation that breaches it (a :class:`repro.obs.stream.StreamingTracer`
turns that into an ``slo_violation`` trace event with context), and
:meth:`SLOTracker.summary` renders a machine-readable compliance
summary that lands in the trace metadata under ``meta["slo"]``.

Everything here is a pure fold over the observation sequence — no wall
clock, no randomness — so an offline replay of the exported JSONL
reproduces the online summary bit-for-bit (pinned by
``tests/obs/test_slo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, QuantileSketch
from repro.units import QualityFrac, Seconds, Watts

__all__ = [
    "SLO_KINDS",
    "SLOSpec",
    "SLOTracker",
    "default_slos",
]

#: Schema tag for the compliance summary (``meta["slo"]["schema"]``).
SLO_SCHEMA = "repro.slo/1"

#: The monitor kinds :class:`SLOTracker` can evaluate.
SLO_KINDS: Tuple[str, ...] = (
    "quality_floor", "power_budget", "deadline_miss", "bq_dwell",
)

#: Job outcomes that count as a deadline miss.
_MISS_OUTCOMES = frozenset({"expired", "dropped"})

#: Relative tolerance on the power budget: overshoots smaller than
#: ``eps * max(1, H)`` are float noise from the water-filling planner,
#: not violations (mirrors the runtime sanitizer's tolerance).
_REL_EPS = 1e-6

#: First-violation callback: ``(spec_name, sim_time, value, threshold)``.
ViolationCallback = Callable[[str, float, float, float], None]


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Attributes
    ----------
    name:
        Unique key in the compliance summary (and the ``slo`` attribute
        of the first-violation event).
    kind:
        One of :data:`SLO_KINDS`; selects the evaluation rule.
    threshold:
        The bound: quality floor (``>=``), power budget in watts
        (``<=``), maximum miss rate (``<=``) or maximum BQ dwell
        fraction (``<=``).
    min_samples:
        Rate-style monitors (``deadline_miss``, ``bq_dwell``) only
        report a violation once this many observations (settled jobs /
        decision rounds) have been folded, so the first unlucky job of
        a run does not trip a rate SLO.
    description:
        Free-text note carried into the summary.
    """

    name: str
    kind: str
    threshold: float
    min_samples: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"SLO {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(SLO_KINDS)})"
            )
        if self.min_samples < 0:
            raise ValueError(f"SLO {self.name!r}: min_samples must be >= 0")

    def to_record(self) -> Dict[str, Any]:
        """JSON-native spec (embedded in the compliance summary)."""
        return {
            "kind": self.kind,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "description": self.description,
        }


def default_slos(meta: Dict[str, Any]) -> List[SLOSpec]:
    """The paper's standard objectives, parameterized by run metadata.

    ``quality_floor`` comes from ``meta["q_ge"]`` and ``power_budget``
    from ``meta["budget"]`` (each omitted when absent or null, e.g.
    unbudgeted baselines).  ``deadline_miss`` (max 10 %) and
    ``bq_dwell`` (max 50 % of decided time) are always installed; on
    schedulers that emit no decisions they report ``no_data`` and count
    as vacuously compliant.
    """
    specs: List[SLOSpec] = []
    q_ge = meta.get("q_ge")
    if q_ge is not None:
        specs.append(SLOSpec(
            name="quality_floor", kind="quality_floor", threshold=float(q_ge),
            description="aggregate quality stays at or above Q_GE",
        ))
    budget = meta.get("budget")
    if budget is not None:
        specs.append(SLOSpec(
            name="power_budget", kind="power_budget", threshold=float(budget),
            description="total dynamic power stays within the budget H",
        ))
    specs.append(SLOSpec(
        name="deadline_miss", kind="deadline_miss", threshold=0.1,
        min_samples=20,
        description="expired+dropped jobs stay under 10% of settled",
    ))
    specs.append(SLOSpec(
        name="bq_dwell", kind="bq_dwell", threshold=0.5, min_samples=20,
        description="BQ (compensation) mode holds under 50% of decided time",
    ))
    return specs


class SLOTracker:
    """Folds decision / sample / settle streams into SLO compliance.

    One instance per run.  Entry points mirror the trace streams
    (:meth:`on_decision`, :meth:`on_power`, :meth:`on_settle`); call
    :meth:`finish` once at run end to close the time-weighted
    accumulators, then :meth:`summary` for the machine-readable result.

    The fold is deterministic: state depends only on the observation
    sequence, never on wall time, so online evaluation during a run and
    offline replay of its exported trace agree exactly.
    """

    def __init__(
        self,
        specs: List[SLOSpec],
        *,
        registry: Optional[MetricsRegistry] = None,
        on_violation: Optional[ViolationCallback] = None,
    ) -> None:
        seen: Dict[str, SLOSpec] = {}
        by_kind: Dict[str, SLOSpec] = {}
        for spec in specs:
            if spec.name in seen:
                raise ValueError(f"duplicate SLO name {spec.name!r}")
            if spec.kind in by_kind:
                raise ValueError(
                    f"SLOs {by_kind[spec.kind].name!r} and {spec.name!r} "
                    f"share kind {spec.kind!r} (one monitor per kind)"
                )
            seen[spec.name] = spec
            by_kind[spec.kind] = spec
        self.specs = list(specs)
        self._by_kind = by_kind
        self._on_violation = on_violation
        self._violations: Dict[str, Dict[str, Any]] = {}
        self._finished = False
        # Decision-stream state (quality_floor + bq_dwell share it).
        self._decisions = 0
        self._last_time: Optional[float] = None
        self._last_quality = 0.0
        self._last_mode = ""
        self._decided = 0.0
        self._quality_ok = 0.0
        self._bq_time = 0.0
        # Sample-stream state (power_budget).
        self._power_samples = 0
        self._power_ok = 0
        self._headroom: Optional[QuantileSketch] = None
        if "power_budget" in by_kind:
            reg = registry if registry is not None else MetricsRegistry()
            self._headroom = reg.quantiles(
                "slo.power_headroom_w", qs=(0.5, 0.9, 0.99)
            )
        # Settle-stream state (deadline_miss).
        self._settled = 0
        self._missed = 0

    # ------------------------------------------------------------------
    # Violation bookkeeping
    # ------------------------------------------------------------------
    def _violate(self, spec: SLOSpec, time: Seconds, value: float) -> None:
        if spec.name in self._violations:
            return
        self._violations[spec.name] = {
            "time": float(time),
            "value": float(value),
            "threshold": spec.threshold,
        }
        if self._on_violation is not None:
            self._on_violation(spec.name, float(time), float(value), spec.threshold)

    # ------------------------------------------------------------------
    # Stream entry points
    # ------------------------------------------------------------------
    def on_decision(self, time: Seconds, *, mode: str, quality: QualityFrac) -> None:
        """Fold one scheduling round (``decision`` event)."""
        if self._last_time is not None:
            self._accumulate(time)
        self._decisions += 1
        self._last_time = float(time)
        self._last_quality = float(quality)
        self._last_mode = mode
        spec = self._by_kind.get("quality_floor")
        if spec is not None and quality < spec.threshold:
            self._violate(spec, time, quality)
        spec = self._by_kind.get("bq_dwell")
        if (
            spec is not None
            and self._decisions >= max(1, spec.min_samples)
            and self._decided > 0.0
        ):
            fraction = self._bq_time / self._decided
            if fraction > spec.threshold:
                self._violate(spec, time, fraction)

    def _accumulate(self, until: Seconds) -> None:
        assert self._last_time is not None
        dt = float(until) - self._last_time
        if dt <= 0.0:
            return
        self._decided += dt
        quality_spec = self._by_kind.get("quality_floor")
        if quality_spec is None or self._last_quality >= quality_spec.threshold:
            self._quality_ok += dt
        if self._last_mode == "bq":
            self._bq_time += dt

    def on_power(self, time: Seconds, total_power: Watts) -> None:
        """Fold one quantum boundary's total power draw (all cores)."""
        spec = self._by_kind.get("power_budget")
        if spec is None:
            return
        headroom = spec.threshold - float(total_power)
        assert self._headroom is not None
        self._headroom.observe(headroom)
        self._power_samples += 1
        eps = _REL_EPS * max(1.0, abs(spec.threshold))
        if headroom >= -eps:
            self._power_ok += 1
        else:
            self._violate(spec, time, float(total_power))

    def on_settle(self, time: Seconds, *, outcome: str) -> None:
        """Fold one settled job (``settle`` event)."""
        self._settled += 1
        if outcome in _MISS_OUTCOMES:
            self._missed += 1
        spec = self._by_kind.get("deadline_miss")
        if spec is not None and self._settled >= max(1, spec.min_samples):
            rate = self._missed / self._settled
            if rate > spec.threshold:
                self._violate(spec, time, rate)

    def finish(self, end: Seconds) -> None:
        """Close the time-weighted accumulators at simulated ``end``."""
        if self._finished:
            return
        self._finished = True
        if self._last_time is not None:
            self._accumulate(end)
            spec = self._by_kind.get("bq_dwell")
            if spec is not None and self._decided > 0.0:
                fraction = self._bq_time / self._decided
                if fraction > spec.threshold:
                    self._violate(spec, end, fraction)

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def _observed(self, spec: SLOSpec) -> Tuple[Optional[float], Dict[str, Any], bool]:
        """(compliance, observed-detail, no_data) for one spec."""
        if spec.kind == "quality_floor":
            if self._decided <= 0.0:
                return None, {"decided_time_s": 0.0}, True
            return (
                self._quality_ok / self._decided,
                {"decided_time_s": self._decided, "ok_time_s": self._quality_ok},
                False,
            )
        if spec.kind == "power_budget":
            if self._power_samples == 0:
                return None, {"samples": 0}, True
            sketch = self._headroom
            assert sketch is not None
            detail: Dict[str, Any] = {
                "samples": self._power_samples,
                "headroom_min_w": sketch.min,
                "headroom_max_w": sketch.max,
            }
            for q in sketch.qs:
                detail[f"headroom_p{q * 100:g}_w"] = sketch.estimate(q)
            return self._power_ok / self._power_samples, detail, False
        if spec.kind == "deadline_miss":
            if self._settled == 0:
                return None, {"settled": 0, "missed": 0}, True
            rate = self._missed / self._settled
            return (
                1.0 - rate,
                {"settled": self._settled, "missed": self._missed,
                 "miss_rate": rate},
                False,
            )
        # bq_dwell
        if self._decided <= 0.0:
            return None, {"decided_time_s": 0.0}, True
        fraction = self._bq_time / self._decided
        return (
            1.0 - fraction,
            {"decided_time_s": self._decided, "bq_time_s": self._bq_time,
             "bq_fraction": fraction},
            False,
        )

    def summary(self) -> Dict[str, Any]:
        """Machine-readable compliance summary (JSON-native).

        ``slos`` maps each spec name to its record: the spec itself,
        a ``compliant`` verdict (no violation fired; vacuous on
        ``no_data``), a kind-specific ``compliance`` fraction (e.g.
        fraction of decided time at or above the quality floor) and an
        ``observed`` detail block.  The top level carries the overall
        verdict and the violation count.
        """
        slos: Dict[str, Any] = {}
        for spec in self.specs:
            compliance, observed, no_data = self._observed(spec)
            violation = self._violations.get(spec.name)
            slos[spec.name] = {
                **spec.to_record(),
                "compliant": violation is None,
                "compliance": compliance,
                "no_data": no_data,
                "first_violation": dict(violation) if violation is not None else None,
                "observed": observed,
            }
        return {
            "schema": SLO_SCHEMA,
            "compliant": not self._violations,
            "violations": len(self._violations),
            "slos": slos,
        }
