"""Online load estimation for the hybrid power switch (paper §III-D).

The hybrid policy needs to know whether the current workload is above
the *critical load*, which the paper expresses as an arrival rate
(154 requests/s at the default configuration).  Online, the scheduler
estimates the recent arrival rate with a sliding window.

:class:`ArrivalRateEstimator` counts arrivals in a trailing window —
O(1) amortized, exact over the window, and independent of job sizes.
:class:`VolumeRateEstimator` measures offered *demand volume* per
second instead, which transfers better across demand distributions;
it is the documented alternative (DESIGN.md §5) and is exercised by the
ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.errors import ConfigurationError
from repro.units import PerSecond, Seconds, Speed, Volume

__all__ = ["ArrivalRateEstimator", "VolumeRateEstimator"]


class ArrivalRateEstimator:
    """Sliding-window arrival-rate estimate (requests/second).

    Parameters
    ----------
    window:
        Trailing window length in seconds.  Two seconds spans ≥200
        arrivals at the paper's lightest load — enough to make the
        light/heavy decision stable without lagging rate changes.
    """

    def __init__(self, window: Seconds = 2.0) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window!r}")
        self.window = float(window)
        self._times: Deque[Seconds] = deque()

    def observe(self, time: Seconds) -> None:
        """Record one arrival at ``time`` (non-decreasing)."""
        if self._times and time < self._times[-1]:
            raise ValueError("arrival times must be non-decreasing")
        self._times.append(time)
        self._evict(time)

    def rate(self, now: Seconds) -> PerSecond:
        """Arrivals per second over the trailing window ending at ``now``."""
        self._evict(now)
        return len(self._times) / self.window

    def _evict(self, now: Seconds) -> None:
        cutoff = now - self.window
        times = self._times
        while times and times[0] <= cutoff:
            times.popleft()

    def is_heavy(self, now: Seconds, critical_rate: PerSecond) -> bool:
        """Whether the estimated rate exceeds the critical load."""
        return self.rate(now) > critical_rate


class VolumeRateEstimator:
    """Sliding-window offered-demand estimate (units/second)."""

    def __init__(self, window: Seconds = 2.0) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window!r}")
        self.window = float(window)
        self._events: Deque[Tuple[Seconds, Volume]] = deque()
        self._sum: Volume = 0.0

    def observe(self, time: Seconds, volume: Volume) -> None:
        """Record a job arrival with its demand volume."""
        if volume < 0:
            raise ValueError("volume must be non-negative")
        if self._events and time < self._events[-1][0]:
            raise ValueError("arrival times must be non-decreasing")
        self._events.append((time, volume))
        self._sum += volume
        self._evict(time)

    def rate(self, now: Seconds) -> Speed:
        """Offered units/second over the trailing window."""
        self._evict(now)
        return self._sum / self.window

    def _evict(self, now: Seconds) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] <= cutoff:
            _, volume = events.popleft()
            self._sum -= volume

    def is_heavy(self, now: Seconds, critical_units_per_second: Speed) -> bool:
        """Whether offered volume exceeds the critical level."""
        return self.rate(now) > critical_units_per_second
