"""Longest-First (LF) job cutting (paper §III-B).

In AES mode, GE discards the tail of the longest jobs first: by the law
of diminishing returns (concave quality), a job's head contributes more
quality per unit of work than its tail, and the *longest* job has the
cheapest tail.  The procedure levels the longest jobs down to a common
value until the aggregate quality would drop to the user target
``Q_GE``, then binary-searches the final common level so the target is
hit exactly.

Two equivalent implementations are provided:

* :func:`lf_cut_waterline` — observes that the paper's loop produces
  targets of the form ``min(p_j, L)`` for a single level ``L``, and
  binary-searches ``L`` directly on the (monotone) aggregate quality.
  This is the fast path used by the scheduler.
* :func:`lf_cut_stepwise` — follows the paper's five steps literally
  (iterative levelling, then the ``f(c) = (Q_GE(F_U + F_C) − F_U)/|C|``
  fractional step solved by binary search on ``f``).  Used to
  cross-validate the waterline form in tests.

Both accept ``base_achieved``/``base_potential`` so the target applies
to the *cumulative* quality the monitor tracks, not just the batch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.quality.aggregate import quality_ratio
from repro.quality.functions import QualityFunction
from repro.units import Dimensionless, QualityFrac, VolumeArray, VolumeSeq

__all__ = ["WaterlineMemo", "lf_cut_waterline", "lf_cut_stepwise"]


def _batch_quality(
    f: QualityFunction,
    targets: VolumeArray,
    demands: VolumeArray,
    base_achieved: Dimensionless,
    base_potential: Dimensionless,
) -> QualityFrac:
    """Aggregate quality of a batch cut to ``targets``, on top of history.

    An empty batch with zero history has ``potential == 0``; the ratio
    is then defined as 1.0 — the cut is vacuously satisfied, matching
    :func:`repro.quality.aggregate.quality_ratio` and the monitor's
    start-up convention (GE begins in AES mode).  The BQ compensation
    switch is driven by the *monitor's* cumulative quality, which only
    reports 1.0 while nothing has settled, so the convention cannot
    mask a genuine quality deficit.
    """
    achieved = base_achieved + float(np.sum(f(targets)))
    potential = base_potential + float(np.sum(f(demands)))
    return quality_ratio(achieved, potential)


class WaterlineMemo:
    """Single-entry cross-round cache for :func:`lf_cut_waterline`.

    The GE scheduler re-cuts the *same* demand vector whenever a round
    fires without the active set changing (quantum ticks between
    arrivals).  The memo keys on the exact demand bytes plus the target
    and history terms, so any change — membership, order, target, or
    monitor history — invalidates it.  Stored and returned arrays are
    copies; callers may mutate their result freely.
    """

    __slots__ = ("_key", "_targets", "hits", "misses")

    def __init__(self) -> None:
        self._key: Optional[Tuple[bytes, float, float, float]] = None
        self._targets: Optional[np.ndarray] = None
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[bytes, float, float, float]) -> Optional[np.ndarray]:
        if self._key == key and self._targets is not None:
            self.hits += 1
            return self._targets.copy()
        self.misses += 1
        return None

    def put(self, key: Tuple[bytes, float, float, float], targets: np.ndarray) -> None:
        self._key = key
        self._targets = targets.copy()


def lf_cut_waterline(
    f: QualityFunction,
    demands: VolumeSeq,
    q_target: QualityFrac,
    *,
    base_achieved: Dimensionless = 0.0,
    base_potential: Dimensionless = 0.0,
    tol: Dimensionless = 1e-6,
    max_iter: int = 60,
    memo: Optional[WaterlineMemo] = None,
) -> VolumeArray:
    """LF cut as a waterline: targets are ``min(p_j, L)``.

    Finds the smallest level ``L`` such that the aggregate quality of
    the batch (on top of the monitor history) is at least ``q_target``.
    The aggregate quality is non-decreasing in ``L``, so binary search
    applies.  Returns per-job target volumes in the input order.

    If even full processing cannot reach the target (the history is too
    far underwater), no cutting is performed (targets = demands); the
    mode controller will be in BQ mode in that situation anyway.

    Feasibility guarantee: whenever cutting happens (full processing
    would exceed the target), the returned targets satisfy
    ``_batch_quality(f, targets, demands, ...) >= q_target`` — the
    binary search keeps ``hi`` on the feasible side of the bracket at
    every step, so the returned level is never the infeasible ``lo``.

    ``memo`` optionally caches the last result across rounds; see
    :class:`WaterlineMemo`.
    """
    demands_arr = np.asarray(demands, dtype=float)
    if demands_arr.size == 0:
        return demands_arr.copy()
    if np.any(demands_arr <= 0):
        raise ValueError("demands must be positive")
    if not 0.0 < q_target <= 1.0:
        raise ValueError(f"q_target must be in (0, 1], got {q_target!r}")

    key: Optional[Tuple[bytes, float, float, float]] = None
    if memo is not None:
        key = (demands_arr.tobytes(), q_target, base_achieved, base_potential)
        cached = memo.get(key)
        if cached is not None:
            return cached

    top = float(np.max(demands_arr))
    # Evaluate f over the demand vector once; every bisection step below
    # reuses these per-job values instead of recomputing the whole batch.
    f_demands = np.asarray(f(demands_arr), dtype=float)
    sum_f_demands = float(np.sum(f_demands))
    potential = base_potential + sum_f_demands
    full_q = quality_ratio(base_achieved + sum_f_demands, potential)
    if full_q <= q_target:
        targets = demands_arr.copy()  # cannot afford any cutting
        if memo is not None and key is not None:
            memo.put(key, targets)
        return targets
    zero_q = quality_ratio(
        base_achieved + float(np.sum(f(np.zeros_like(demands_arr)))), potential
    )
    if zero_q >= q_target:
        targets = np.zeros_like(demands_arr)  # history surplus covers the batch
        if memo is not None and key is not None:
            memo.put(key, targets)
        return targets

    lo, hi = 0.0, top
    q_hi = full_q  # quality at the feasible (hi) end of the bracket
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        # min(d_j, mid) maps each job to either its own f(d_j) — already
        # in f_demands — or to f(mid); the shape-preserving select keeps
        # the summation order identical to evaluating f on the clipped
        # vector, so the search trajectory is bit-for-bit unchanged.
        f_mid = float(f(np.float64(mid)))
        achieved = base_achieved + float(
            np.sum(np.where(demands_arr <= mid, f_demands, f_mid))
        )
        q = quality_ratio(achieved, potential)
        if q < q_target:
            lo = mid
        else:
            hi = mid
            q_hi = q
        if hi - lo <= tol * max(1.0, top):
            break
    if q_hi < q_target:  # pragma: no cover - the invariant above forbids this
        hi, q_hi = top, full_q  # defensive: fall back to the known-feasible end
    targets = np.minimum(demands_arr, hi)
    if memo is not None and key is not None:
        memo.put(key, targets)
    return targets


def lf_cut_stepwise(
    f: QualityFunction,
    demands: VolumeSeq,
    q_target: QualityFrac,
    *,
    base_achieved: Dimensionless = 0.0,
    base_potential: Dimensionless = 0.0,
) -> VolumeArray:
    """The paper's §III-B procedure, step by step.

    1. Sort jobs by demand (descending).
    2. Level the longest job(s) down to the second-longest; recompute Q.
    3. Repeat while ``Q > Q_GE``.
    4. Stop if ``Q = Q_GE`` exactly.
    5. Otherwise (overshot): with ``U`` the uncut and ``C`` the cut set,
       give every cut job the volume ``c`` solving
       ``f(c) = (Q_GE·(F_U + F_C + F_base) − F_U − A_base)/|C|``
       via binary search on the concave quality function.

    Returns per-job target volumes in the *input* order.
    """
    demands_arr = np.asarray(demands, dtype=float)
    if demands_arr.size == 0:
        return demands_arr.copy()
    if np.any(demands_arr <= 0):
        raise ValueError("demands must be positive")
    if not 0.0 < q_target <= 1.0:
        raise ValueError(f"q_target must be in (0, 1], got {q_target!r}")

    potential = base_potential + float(np.sum(f(demands_arr)))
    full_q = (base_achieved + float(np.sum(f(demands_arr)))) / potential
    if full_q <= q_target:
        return demands_arr.copy()

    order = np.argsort(-demands_arr, kind="stable")
    sorted_d = demands_arr[order]
    levels = np.unique(sorted_d)[::-1]  # distinct demands, descending
    targets_sorted = sorted_d.copy()

    chosen_cut = 0  # number of leading (longest) jobs in the cut set
    for level_idx in range(1, levels.size + 1):
        # Level everything above `next_level` down to it (step 2); after
        # the last distinct level, the floor is 0 (cut everything).
        next_level = levels[level_idx] if level_idx < levels.size else 0.0
        candidate = np.minimum(sorted_d, next_level)
        q = _batch_quality(f, candidate, sorted_d, base_achieved, base_potential)
        cut_count = int(np.sum(sorted_d > next_level))
        if q > q_target:  # step 3: keep cutting
            targets_sorted = candidate
            chosen_cut = cut_count
            continue
        if q == q_target:  # step 4: exact hit
            targets_sorted = candidate
            chosen_cut = cut_count
            break
        # Step 5: this iteration overshot — solve the fractional level
        # for the current cut set.
        chosen_cut = cut_count
        cut_mask = np.zeros(sorted_d.size, dtype=bool)
        cut_mask[:chosen_cut] = True
        f_uncut = float(np.sum(f(sorted_d[~cut_mask]))) if np.any(~cut_mask) else 0.0
        desired_fc = (
            q_target * potential - f_uncut - base_achieved
        ) / float(chosen_cut)
        desired_fc = min(max(desired_fc, 0.0), 1.0)
        c = f.inverse(desired_fc)
        targets_sorted = sorted_d.copy()
        targets_sorted[cut_mask] = np.minimum(sorted_d[cut_mask], c)
        break

    targets = np.empty_like(targets_sorted)
    targets[order] = targets_sorted
    return targets
