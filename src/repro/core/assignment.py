"""Batch job-to-core assignment (paper §III-E).

When a trigger fires, the jobs waiting in the queue are assigned to
cores in a batch.  The paper uses **Cumulative Round-Robin (C-RR)**: a
plain round-robin whose pointer persists across batches, "assigning
jobs to the core where the last job distribution cycle stops" for a
more balanced long-run distribution.  Plain :class:`RoundRobin`
(pointer reset each batch) is provided for comparison, as is a
least-loaded heuristic used by ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import VolumeSeq
from repro.workload.job import Job

__all__ = ["AssignmentPolicy", "CumulativeRoundRobin", "RoundRobin", "LeastLoaded"]


class AssignmentPolicy(ABC):
    """Maps a batch of queued jobs onto core indices."""

    def __init__(self, m: int) -> None:
        if m <= 0:
            raise ConfigurationError(f"core count must be positive, got {m!r}")
        self.m = int(m)

    @abstractmethod
    def assign(self, jobs: Sequence[Job], loads: VolumeSeq) -> List[Tuple[Job, int]]:
        """Return ``(job, core_index)`` pairs for the whole batch.

        ``loads`` is the current per-core remaining volume, provided
        for load-aware policies; round-robin variants ignore it.
        """


class RoundRobin(AssignmentPolicy):
    """RR: each batch starts again from core 0."""

    def assign(self, jobs: Sequence[Job], loads: VolumeSeq) -> List[Tuple[Job, int]]:
        return [(job, i % self.m) for i, job in enumerate(jobs)]


class CumulativeRoundRobin(AssignmentPolicy):
    """C-RR: the round-robin pointer survives across batches."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self._next = 0

    @property
    def pointer(self) -> int:
        """Core index the next job will land on."""
        return self._next

    def assign(self, jobs: Sequence[Job], loads: VolumeSeq) -> List[Tuple[Job, int]]:
        out: List[Tuple[Job, int]] = []
        for job in jobs:
            out.append((job, self._next))
            self._next = (self._next + 1) % self.m
        return out

    def reset(self) -> None:
        """Rewind the pointer (between replications)."""
        self._next = 0


class LeastLoaded(AssignmentPolicy):
    """Greedy: each job goes to the core with the least remaining volume.

    Not part of the paper's design; used by the assignment ablation
    benchmark to quantify what C-RR's simplicity costs.
    """

    def assign(self, jobs: Sequence[Job], loads: VolumeSeq) -> List[Tuple[Job, int]]:
        if len(loads) != self.m:
            raise ConfigurationError(f"expected {self.m} load entries, got {len(loads)}")
        current = list(loads)
        out: List[Tuple[Job, int]] = []
        for job in jobs:
            idx = min(range(self.m), key=lambda i: (current[i], i))
            out.append((job, idx))
            current[idx] += job.remaining
        return out
