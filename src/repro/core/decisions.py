"""Structured logging of GE's scheduling decisions.

Attach a :class:`DecisionLog` to a :class:`repro.core.ge.GEScheduler`
to record one :class:`Decision` per scheduling round: when it ran, what
triggered it, the mode chosen, the power policy used, the batch size
and the resulting per-core caps.  The log is bounded (ring buffer) so
long runs stay cheap, and renders to rows for offline inspection —
``examples/diurnal_load.py``-style debugging without print statements.

The log is now a thin view over the :mod:`repro.obs` tracing layer:
construct it with a :class:`repro.obs.Tracer` and every recorded round
is also emitted as a ``decision`` trace event, putting the ring buffer
and the exported JSONL on the same stream.  The standalone (tracer-less)
usage is unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from repro.units import QualityFrac, Seconds, Watts
from typing import Deque, Iterator, List, Optional, Tuple

__all__ = ["Decision", "DecisionLog"]

#: Retained rounds when no capacity is given (or ``None`` is passed).
DEFAULT_CAPACITY = 10_000


@dataclass(frozen=True)
class Decision:
    """One scheduling round's summary."""

    time: Seconds
    mode: str  # "aes" | "bq"
    policy: str  # "ES" | "WF"
    batch_size: int  # jobs taken from the queue this round
    active_jobs: int  # unsettled jobs across all cores after assignment
    monitor_quality: QualityFrac
    caps: Tuple[Watts, ...]  # per-core power caps (W)

    @property
    def total_cap(self) -> Watts:
        """Sum of per-core caps (≤ the budget)."""
        return float(sum(self.caps))

    def row(self) -> str:
        """One formatted log line."""
        return (
            f"t={self.time:9.4f}  {self.mode:>3}/{self.policy:<2}  "
            f"batch={self.batch_size:<3} active={self.active_jobs:<4} "
            f"Q={self.monitor_quality:6.4f}  ΣP={self.total_cap:7.2f} W"
        )


class DecisionLog:
    """Bounded ring buffer of :class:`Decision` records.

    Parameters
    ----------
    capacity:
        Maximum retained rounds.  ``None`` falls back to
        :data:`DEFAULT_CAPACITY` — the log is *always* bounded, so a
        forgotten ``maxlen=None`` can no longer grow without limit over
        a long run (older rounds stay available through an attached
        tracer's event stream instead).
    tracer:
        Optional :class:`repro.obs.Tracer`; when given (and enabled),
        every :meth:`record` also emits a ``decision`` trace event.
    """

    def __init__(
        self,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        tracer: Optional[TracerLike] = None,
    ) -> None:
        if capacity is None:
            capacity = DEFAULT_CAPACITY
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._records: Deque[Decision] = deque(maxlen=capacity)
        self._total = 0
        self.tracer = tracer

    @property
    def capacity(self) -> int:
        """Maximum number of retained records."""
        return self._records.maxlen

    def record(self, decision: Decision) -> None:
        """Append one round's record (and emit it to the tracer, if any)."""
        self._records.append(decision)
        self._total += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.decision(decision)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._records)

    @property
    def total_recorded(self) -> int:
        """Rounds recorded over the whole run (including evicted ones)."""
        return self._total

    @property
    def last(self) -> Optional[Decision]:
        """Most recent record, if any."""
        return self._records[-1] if self._records else None

    def mode_changes(self) -> List[Tuple[Seconds, str]]:
        """Times at which the retained records switch mode."""
        out: List[Tuple[Seconds, str]] = []
        prev: Optional[str] = None
        for d in self._records:
            if d.mode != prev:
                out.append((d.time, d.mode))
                prev = d.mode
        return out

    def to_rows(self, limit: Optional[int] = None) -> List[str]:
        """Render the (tail of the) log as formatted lines."""
        records = list(self._records)
        if limit is not None:
            records = records[-limit:]
        return [d.row() for d in records]
