"""Quality-OPT: best quality under a per-core capacity limit.

The paper (§III-E) applies "the existing Quality-OPT algorithm [14] ...
to calculate the most efficient part of the jobs to achieve the highest
possible quality with limited power (a second cut)".  [14] is Tians
scheduling (He, Elnikety, Sun — ICDCS'11): given jobs that may be
partially processed and a limited processing capacity, choose per-job
volumes maximizing total quality.

Formally, for one core at time ``now`` with speed cap ``s`` running its
jobs sequentially in EDF order, a volume vector ``(x_1..x_n)`` is
feasible iff every prefix fits the capacity available before its
deadline:

    Σ_{i≤k} x_i ≤ C_k := s·(d_k − now)        for all k,
    0 ≤ x_i ≤ bound_i.

Maximizing ``Σ f(offset_i + x_i)`` for one shared concave ``f`` (where
``offset_i`` is volume already processed) is solved exactly by a
*nested water-filling*: the binding prefix is the one whose waterline
is lowest; its jobs are levelled at that waterline and the procedure
recurses on the suffix with the consumed capacity subtracted.  This is
the quality-domain mirror of YDS's critical-interval argument and runs
in O(n² log n) worst case (batches per core are small).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import InfeasibleError

__all__ = ["quality_opt", "prefix_feasible"]

_EPS = 1e-12


def prefix_feasible(
    volumes: np.ndarray, capacities: np.ndarray, rel_tol: float = 1e-9
) -> bool:
    """Check ``Σ_{i≤k} volumes_i ≤ capacities_k`` for every prefix k."""
    prefix = np.cumsum(volumes)
    slack = capacities - prefix
    return bool(np.all(slack >= -rel_tol * np.maximum(1.0, capacities)))


def _waterline_for_budget(
    offsets: np.ndarray, bounds: np.ndarray, budget: float
) -> float:
    """Water level ``w`` with ``Σ clip(w − offset_i, 0, bound_i) = budget``.

    Returns ``inf`` when even ``w = max(offset+bound)`` does not exhaust
    the budget (i.e. every job can be fully processed).
    """
    tops = offsets + bounds
    if float(np.sum(bounds)) <= budget + _EPS:
        return float("inf")
    # The allocation Σ clip(w − o_i, 0, b_i) is piecewise linear and
    # non-decreasing in w with breakpoints at offsets and tops.
    points = np.unique(np.concatenate([offsets, tops]))

    def allocated(w: float) -> float:
        return float(np.sum(np.clip(w - offsets, 0.0, bounds)))

    # Find the bracketing breakpoints, then solve the linear piece.
    lo = float(points[0])
    hi = float(points[-1])
    for p in points:
        if allocated(float(p)) >= budget - _EPS:
            hi = float(p)
            break
        lo = float(p)
    alloc_lo = allocated(lo)
    # On (lo, hi] the slope is the number of jobs with offset <= lo < top.
    active = np.sum((offsets <= lo + _EPS) & (tops > lo + _EPS))
    if active <= 0:
        return hi
    return lo + (budget - alloc_lo) / float(active)


def quality_opt(
    bounds: Sequence[float],
    deadlines: Sequence[float],
    now: float,
    capacity_per_second: float,
    offsets: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Optimal extra volumes under prefix capacity constraints.

    Parameters
    ----------
    bounds:
        Maximum extra volume each job may receive (remaining demand, or
        the AES cut target minus already-processed volume), EDF order.
    deadlines:
        Absolute deadlines, non-decreasing.
    now:
        Current time; capacity before deadline k is
        ``capacity_per_second · (deadlines[k] − now)``.
    capacity_per_second:
        The core's throughput at its power cap (units/second).
    offsets:
        Volume already processed per job (shifts the marginal quality);
        defaults to zero.

    Returns
    -------
    Extra-volume vector ``x`` with ``0 ≤ x ≤ bounds``, prefix-feasible,
    maximizing ``Σ f(offset + x)`` for any common concave ``f``.

    Notes
    -----
    The returned allocation is *f-independent*: levelling total volumes
    is optimal simultaneously for every shared non-decreasing concave
    quality function, so the caller does not pass ``f`` at all.  (With
    per-job quality functions this would no longer hold.)
    """
    bounds_arr = np.asarray(bounds, dtype=float)
    dls = np.asarray(deadlines, dtype=float)
    if bounds_arr.shape != dls.shape:
        raise ValueError("bounds and deadlines must have equal length")
    n = bounds_arr.size
    if n == 0:
        return np.zeros(0)
    if np.any(bounds_arr < 0):
        raise ValueError("bounds must be non-negative")
    if np.any(np.diff(dls) < 0):
        raise ValueError("deadlines must be non-decreasing (EDF order)")
    if capacity_per_second < 0:
        raise InfeasibleError(f"negative capacity {capacity_per_second!r}")
    offs = (
        np.zeros(n)
        if offsets is None
        else np.asarray(offsets, dtype=float)
    )
    if offs.shape != bounds_arr.shape or np.any(offs < 0):
        raise ValueError("offsets must be non-negative and match bounds")

    capacities = capacity_per_second * (dls - now)
    if np.any(capacities < -_EPS):
        raise InfeasibleError("a deadline lies in the past")
    capacities = np.maximum(capacities, 0.0)

    if n == 1:
        # Single-job fast path (the common case on lightly loaded cores):
        # the objective is monotone, so grant everything that fits.
        return np.array([min(bounds_arr[0], capacities[0])])

    result = np.zeros(n)
    start = 0
    consumed = 0.0
    while start < n:
        # Waterline for every candidate prefix of the remaining jobs.
        best_k = None
        best_w = float("inf")
        sub_off = offs[start:]
        sub_bnd = bounds_arr[start:]
        for k in range(n - start):
            budget = capacities[start + k] - consumed
            if budget <= _EPS:
                # No capacity before this deadline: its prefix gets 0.
                w = -float("inf") if np.any(sub_bnd[: k + 1] > _EPS) else float("inf")
                if w < best_w:
                    best_w = w
                    best_k = k
                continue
            w = _waterline_for_budget(sub_off[: k + 1], sub_bnd[: k + 1], budget)
            if w < best_w - _EPS:
                best_w = w
                best_k = k
        if best_k is None or best_w == float("inf"):
            # No prefix binds: every remaining job is fully served.
            result[start:] = bounds_arr[start:]
            break
        block = slice(start, start + best_k + 1)
        if best_w == -float("inf"):
            alloc = np.zeros(best_k + 1)
        else:
            alloc = np.clip(best_w - offs[block], 0.0, bounds_arr[block])
        result[block] = alloc
        consumed += float(np.sum(alloc))
        start = start + best_k + 1
    return result
