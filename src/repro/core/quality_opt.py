"""Quality-OPT: best quality under a per-core capacity limit.

The paper (§III-E) applies "the existing Quality-OPT algorithm [14] ...
to calculate the most efficient part of the jobs to achieve the highest
possible quality with limited power (a second cut)".  [14] is Tians
scheduling (He, Elnikety, Sun — ICDCS'11): given jobs that may be
partially processed and a limited processing capacity, choose per-job
volumes maximizing total quality.

Formally, for one core at time ``now`` with speed cap ``s`` running its
jobs sequentially in EDF order, a volume vector ``(x_1..x_n)`` is
feasible iff every prefix fits the capacity available before its
deadline:

    Σ_{i≤k} x_i ≤ C_k := s·(d_k − now)        for all k,
    0 ≤ x_i ≤ bound_i.

Maximizing ``Σ f(offset_i + x_i)`` for one shared concave ``f`` (where
``offset_i`` is volume already processed) is solved exactly by a
*nested water-filling*: the binding prefix is the one whose waterline
is lowest; its jobs are levelled at that waterline and the procedure
recurses on the suffix with the consumed capacity subtracted.  This is
the quality-domain mirror of YDS's critical-interval argument and runs
in O(n² log n) worst case (batches per core are small).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InfeasibleError
from repro.units import Seconds, SecondsSeq, Speed, Volume, VolumeArray, VolumeSeq

__all__ = ["quality_opt", "prefix_feasible"]

_EPS = 1e-12


def prefix_feasible(
    volumes: VolumeArray, capacities: VolumeArray, rel_tol: float = 1e-9
) -> bool:
    """Check ``Σ_{i≤k} volumes_i ≤ capacities_k`` for every prefix k."""
    prefix = np.cumsum(volumes)
    slack = capacities - prefix
    return bool(np.all(slack >= -rel_tol * np.maximum(1.0, capacities)))


def _waterline_for_budget(
    offsets: VolumeArray, bounds: VolumeArray, budget: Volume
) -> Volume:
    """Water level ``w`` with ``Σ clip(w − offset_i, 0, bound_i) = budget``.

    Returns ``inf`` when even ``w = max(offset+bound)`` does not exhaust
    the budget (i.e. every job can be fully processed).
    """
    tops = offsets + bounds
    if float(np.sum(bounds)) <= budget + _EPS:
        return float("inf")
    # The allocation Σ clip(w − o_i, 0, b_i) is piecewise linear and
    # non-decreasing in w with breakpoints at offsets and tops.  The
    # breakpoint set is deduped/sorted in Python — same values as the
    # ``np.unique(np.concatenate(...))`` it replaced (inputs are
    # non-negative, so no −0.0/+0.0 representative ambiguity) at a
    # fraction of the per-call cost on the small arrays seen here.
    olist = offsets.tolist()
    tlist = tops.tolist()
    points = np.asarray(sorted(set(olist) | set(tlist)))

    # Find the bracketing breakpoints, then solve the linear piece.  The
    # allocation at every breakpoint is computed in one 2-D reduction;
    # numpy's row-wise ``np.sum(..., axis=1)`` is bitwise equal to the
    # per-point 1-D ``np.sum`` scan it replaced (asserted in
    # tests/core/test_quality_opt.py).
    alloc_all = np.sum(np.clip(points[:, None] - offsets, 0.0, bounds), axis=1)
    mask = alloc_all >= budget - _EPS
    if mask.any():
        idx = int(np.argmax(mask))
        hi = float(points[idx])
        lo = float(points[idx - 1]) if idx > 0 else float(points[0])
        alloc_lo = float(alloc_all[idx - 1]) if idx > 0 else float(alloc_all[0])
    else:  # pragma: no cover - Σ bounds > budget guarantees a hit
        lo = hi = float(points[-1])
        alloc_lo = float(alloc_all[-1])
    # On (lo, hi] the slope is the number of jobs with offset <= lo < top.
    lo_eps = lo + _EPS
    active = 0
    for o, tp in zip(olist, tlist):
        if o <= lo_eps and tp > lo_eps:
            active += 1
    if active <= 0:
        return hi
    return lo + (budget - alloc_lo) / float(active)


def quality_opt(
    bounds: VolumeSeq,
    deadlines: SecondsSeq,
    now: Seconds,
    capacity_per_second: Speed,
    offsets: Optional[VolumeSeq] = None,
) -> VolumeArray:
    """Optimal extra volumes under prefix capacity constraints.

    Parameters
    ----------
    bounds:
        Maximum extra volume each job may receive (remaining demand, or
        the AES cut target minus already-processed volume), EDF order.
    deadlines:
        Absolute deadlines, non-decreasing.
    now:
        Current time; capacity before deadline k is
        ``capacity_per_second · (deadlines[k] − now)``.
    capacity_per_second:
        The core's throughput at its power cap (units/second).
    offsets:
        Volume already processed per job (shifts the marginal quality);
        defaults to zero.

    Returns
    -------
    Extra-volume vector ``x`` with ``0 ≤ x ≤ bounds``, prefix-feasible,
    maximizing ``Σ f(offset + x)`` for any common concave ``f``.

    Notes
    -----
    The returned allocation is *f-independent*: levelling total volumes
    is optimal simultaneously for every shared non-decreasing concave
    quality function, so the caller does not pass ``f`` at all.  (With
    per-job quality functions this would no longer hold.)
    """
    # Validation and the per-deadline capacities run on Python lists:
    # scalar compare/multiply/subtract are bitwise equal to the
    # elementwise numpy expressions they replaced, the interpreter beats
    # numpy's per-call overhead on these small batches, and list inputs
    # from the planner skip array construction entirely.
    if isinstance(bounds, np.ndarray):
        blist = bounds.tolist()
    else:
        blist = [float(b) for b in bounds]
    if isinstance(deadlines, np.ndarray):
        dlist = deadlines.tolist()
    else:
        dlist = [float(d) for d in deadlines]
    n = len(blist)
    if n != len(dlist):
        raise ValueError("bounds and deadlines must have equal length")
    if n == 0:
        return np.zeros(0)
    if n == 1:
        # Single-job scalar path (the common case on lightly loaded
        # cores): the objective is monotone, so grant everything that
        # fits.  Checks and arithmetic mirror the general path below.
        b0 = blist[0]
        if b0 < 0:
            raise ValueError("bounds must be non-negative")
        if capacity_per_second < 0:
            raise InfeasibleError(f"negative capacity {capacity_per_second!r}")
        if offsets is not None:
            if len(offsets) != 1 or float(offsets[0]) < 0:
                raise ValueError("offsets must be non-negative and match bounds")
        cap0 = capacity_per_second * (dlist[0] - now)
        if cap0 < -_EPS:
            raise InfeasibleError("a deadline lies in the past")
        if not cap0 > 0.0:  # matches np.maximum(cap0, 0.0), -0.0 included
            cap0 = 0.0
        return np.array([min(b0, cap0)])
    for b in blist:
        if b < 0:
            raise ValueError("bounds must be non-negative")
    for i in range(n - 1):
        if dlist[i + 1] - dlist[i] < 0:
            raise ValueError("deadlines must be non-decreasing (EDF order)")
    if capacity_per_second < 0:
        raise InfeasibleError(f"negative capacity {capacity_per_second!r}")
    if offsets is None:
        olist = [0.0] * n
    else:
        if isinstance(offsets, np.ndarray):
            olist = offsets.tolist()
        else:
            olist = [float(o) for o in offsets]
        if len(olist) != n:
            raise ValueError("offsets must be non-negative and match bounds")
        for o in olist:
            if o < 0:
                raise ValueError("offsets must be non-negative and match bounds")
    bounds_arr = np.asarray(blist)
    offs = np.asarray(olist)

    clist = []
    for d in dlist:
        c = capacity_per_second * (d - now)
        if c < -_EPS:
            raise InfeasibleError("a deadline lies in the past")
        clist.append(c if c > 0.0 else 0.0)  # == np.maximum(c, 0.0)

    # All-fits fast path: when every EDF prefix fits its capacity, no
    # prefix binds and the nested water-filling below grants every bound
    # in full (its ``best_w == inf`` exit).  Prefix sums are tracked
    # with a cheap sequential running sum; numpy's pairwise ``np.sum``
    # (which the general loop evaluates) can differ from it by at most
    # ~(k+1)·eps relative, so comparisons landing inside a conservative
    # error band are re-decided with the exact ``np.sum`` expression.
    # Taking this path therefore cannot change the result by even an
    # ulp.
    all_fit = True
    running = 0.0
    for k in range(n):
        cap_k = clist[k]
        if cap_k <= _EPS:
            all_fit = False
            break
        running += blist[k]
        gap = running - (cap_k + _EPS)
        tol = (k + 1) * 1e-14 * running  # >> (k+1)·eps·Σ summation error
        if gap > tol:
            all_fit = False
            break
        if gap > -tol and float(np.sum(bounds_arr[: k + 1])) > cap_k + _EPS:
            all_fit = False
            break
    if all_fit:
        return bounds_arr.copy()

    result = np.zeros(n)
    start = 0
    consumed = 0.0
    pos_idx = 0  # first index >= start holding a bound > _EPS (lazily advanced)
    while start < n:
        # Waterline for every candidate prefix of the remaining jobs.
        best_k = None
        best_w = float("inf")
        sub_off = offs[start:]
        sub_bnd = bounds_arr[start:]
        if pos_idx < start:
            pos_idx = start
        while pos_idx < n and not blist[pos_idx] > _EPS:
            pos_idx += 1
        for k in range(n - start):
            budget = clist[start + k] - consumed
            if budget <= _EPS:
                # No capacity before this deadline: its prefix gets 0.
                # (The prefix holds positive work iff the first positive
                # bound at or past ``start`` falls inside it — same truth
                # value as ``np.any(sub_bnd[:k+1] > _EPS)``.)
                w = -float("inf") if pos_idx <= start + k else float("inf")
                if w < best_w:
                    best_w = w
                    best_k = k
                continue
            w = _waterline_for_budget(sub_off[: k + 1], sub_bnd[: k + 1], budget)
            if w < best_w - _EPS:
                best_w = w
                best_k = k
        if best_k is None or best_w == float("inf"):
            # No prefix binds: every remaining job is fully served.
            result[start:] = bounds_arr[start:]
            break
        block = slice(start, start + best_k + 1)
        if best_w == -float("inf"):
            alloc = np.zeros(best_k + 1)
        else:
            alloc = np.clip(best_w - offs[block], 0.0, bounds_arr[block])
        result[block] = alloc
        consumed += float(np.sum(alloc))
        start = start + best_k + 1
    return result
