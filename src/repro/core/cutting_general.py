"""Generalized LF cutting for *mixed* application classes.

The paper's cut assumes one shared quality function.  When a server
hosts several job classes (e.g. web search at c=0.003 next to video
refinement at c=0.0009), "cut the longest job" is no longer the right
rule — the cheapest quality lives wherever the *marginal quality per
unit of work* is lowest, which differs across classes.

Formally: minimize total kept volume ``Σ c_j`` subject to the aggregate
quality constraint ``Σ f_j(c_j) ≥ Q_GE · Σ f_j(p_j)``.  With concave
``f_j``, KKT gives a single multiplier λ such that every job is kept
exactly up to the point where its marginal quality falls to λ:

    c_j(λ) = min(p_j, (f_j')^{-1}(λ)),

and λ is chosen (by bisection — each ``c_j(λ)`` is monotone in λ, hence
so is the aggregate quality) to hit the target exactly.  With identical
``f_j`` this reduces to the paper's common waterline, which is the
regression test anchoring the implementation.

This module is the *kernel* for class-aware cutting; the full
simulator pipeline keeps the paper's shared-``f`` model (Quality-OPT's
levelling argument requires it — see docs/algorithms.md §4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.quality.functions import QualityFunction
from repro.units import Dimensionless, PerVolume, QualityFrac, Volume, VolumeArray, VolumeSeq

__all__ = ["inverse_marginal", "lf_cut_mixed"]


def inverse_marginal(
    f: QualityFunction, slope: PerVolume, *, tol: Dimensionless = 1e-9, max_iter: int = 200
) -> Volume:
    """Largest volume whose marginal quality is at least ``slope``.

    I.e. ``(f')^{-1}(slope)`` for concave ``f`` (so ``f'`` is
    non-increasing), clamped to ``[0, x_max]``.  Bisection — works for
    any :class:`QualityFunction`, closed forms are unnecessary.
    """
    if slope <= 0:
        return f.x_max
    if float(f.derivative(0.0)) <= slope:
        return 0.0
    if float(f.derivative(f.x_max * (1 - 1e-12))) >= slope:
        return f.x_max
    lo, hi = 0.0, f.x_max
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if float(f.derivative(mid)) > slope:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, f.x_max):
            break
    return 0.5 * (lo + hi)


def lf_cut_mixed(
    functions: Sequence[QualityFunction],
    demands: VolumeSeq,
    q_target: QualityFrac,
    *,
    tol: Dimensionless = 1e-6,
    max_iter: int = 80,
) -> VolumeArray:
    """Volume-minimal cut across jobs with *per-job* quality functions.

    Parameters
    ----------
    functions:
        Quality function of each job (may repeat objects across jobs).
    demands:
        Full demand of each job.
    q_target:
        Required aggregate quality ``Σ f_j(c_j) / Σ f_j(p_j)``.

    Returns
    -------
    Per-job target volumes, in input order.  Guarantees the aggregate
    quality lands within ``tol`` of ``q_target`` (from above) and each
    target is in ``[0, p_j]``.
    """
    if len(functions) != len(demands):
        raise ValueError("functions and demands must have equal length")
    demands_arr = np.asarray(demands, dtype=float)
    if demands_arr.size == 0:
        return demands_arr.copy()
    if np.any(demands_arr <= 0):
        raise ValueError("demands must be positive")
    if not 0.0 < q_target <= 1.0:
        raise ValueError(f"q_target must be in (0, 1], got {q_target!r}")

    potential = sum(float(f(p)) for f, p in zip(functions, demands_arr))
    if potential <= 0:
        return demands_arr.copy()

    def targets_at(lam: PerVolume) -> VolumeArray:
        return np.array(
            [
                min(p, inverse_marginal(f, lam))
                for f, p in zip(functions, demands_arr)
            ]
        )

    def quality_at(lam: PerVolume) -> QualityFrac:
        return (
            sum(float(f(c)) for f, c in zip(functions, targets_at(lam))) / potential
        )

    # λ = 0 keeps everything (quality 1); raising λ cuts deeper.  Find
    # an upper bracket where quality drops below the target.
    lo = 0.0
    hi = max(float(f.derivative(0.0)) for f in functions)
    if not np.isfinite(hi):
        hi = 1.0  # PowerQuality has f'(0)=inf; expand below if needed
    while quality_at(hi) > q_target and hi < 1e12:
        hi *= 4.0
    if quality_at(hi) > q_target:  # pragma: no cover - pathological f
        return targets_at(hi)

    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if quality_at(mid) < q_target:
            hi = mid
        else:
            lo = mid
        if hi - lo <= tol * max(hi, 1.0) * 1e-3:
            break
    return targets_at(lo)
