"""Execution modes and the quality compensation policy (paper §III-C).

GE runs in **AES** (Aggressive Energy Saving — cut jobs to the target
quality) while the monitored cumulative quality is at or above the user
target, and switches to **BQ** (Best Quality — no cutting, run
everything) the moment it dips below.  Once the quality recovers, it
switches back.  :class:`ModeController` makes that decision at every
trigger and records the mode as a step timeline so Fig. 1's "percent of
time in AES mode" is an exact time integral.

Disabling compensation (``compensated=False``) pins the controller to
AES regardless of quality — this is the "No-Compensation" arm of
Fig. 5 and, with a +2 % target, the OQ baseline.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.quality.monitor import QualityMonitor
from repro.sim.timeline import StepTimeline
from repro.units import QualityFrac, Seconds

__all__ = ["ExecutionMode", "ModeController"]


class ExecutionMode(enum.Enum):
    """The two service-providing regimes of §III."""

    AES = "aes"
    BQ = "bq"


class ModeController:
    """Decides AES vs BQ from the monitored quality.

    Parameters
    ----------
    monitor:
        The online quality monitor (cumulative Σf ratios).
    q_target:
        The quality the controller defends (``Q_GE``, or
        ``Q_GE + 0.02`` for OQ).
    compensated:
        When False the controller never leaves AES (§IV-A-2's
        no-compensation arm).
    start_time:
        Simulation time of the first decision (timeline origin).
    on_switch:
        Optional observer called as ``on_switch(now, old, new)`` on
        every real AES↔BQ transition (used by the GE scheduler to emit
        ``mode_switch`` / compensation trace events).
    """

    def __init__(
        self,
        monitor: QualityMonitor,
        q_target: QualityFrac,
        *,
        compensated: bool = True,
        start_time: Seconds = 0.0,
        on_switch: Optional[
            Callable[[Seconds, ExecutionMode, ExecutionMode], None]
        ] = None,
    ) -> None:
        if not 0.0 < q_target <= 1.0:
            raise ValueError(f"q_target must be in (0, 1], got {q_target!r}")
        self.monitor = monitor
        self.q_target = float(q_target)
        self.compensated = bool(compensated)
        self.on_switch = on_switch
        self._mode = ExecutionMode.AES
        self._timeline = StepTimeline(start_time=start_time, initial_value=1.0)
        self._switches = 0

    # ------------------------------------------------------------------
    @property
    def mode(self) -> ExecutionMode:
        """Mode chosen by the most recent :meth:`decide`."""
        return self._mode

    @property
    def switches(self) -> int:
        """Number of AES↔BQ transitions so far."""
        return self._switches

    def decide(self, now: Seconds) -> ExecutionMode:
        """Pick the mode for the trigger happening at ``now``.

        AES iff the cumulative quality is at or above the target (the
        compensation policy of §III-C); always AES when compensation is
        disabled.
        """
        if self.compensated and self.monitor.quality < self.q_target:
            new = ExecutionMode.BQ
        else:
            new = ExecutionMode.AES
        if new is not self._mode:
            self._switches += 1
            if self.on_switch is not None:
                self.on_switch(now, self._mode, new)
        self._mode = new
        self._timeline.set_value(now, 1.0 if new is ExecutionMode.AES else 0.0)
        return new

    def force(self, mode: ExecutionMode, now: Seconds) -> None:
        """Pin the controller to ``mode`` at ``now`` (BE's permanent BQ)."""
        if mode is not self._mode:
            self._switches += 1
            if self.on_switch is not None:
                self.on_switch(now, self._mode, mode)
        self._mode = mode
        self._timeline.set_value(now, 1.0 if mode is ExecutionMode.AES else 0.0)

    def aes_fraction(self, until: Optional[Seconds] = None) -> float:
        """Fraction of time spent in AES mode up to ``until``.

        This is the Fig. 1 statistic.  ``until`` defaults to the last
        decision time.
        """
        end = self._timeline.last_time if until is None else until
        if end <= self._timeline.start_time:
            return 1.0
        return self._timeline.time_average(end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModeController(mode={self._mode.value}, target={self.q_target}, "
            f"switches={self._switches})"
        )
