"""The Good Enough (GE) scheduler (paper §III) and its siblings.

:class:`GEScheduler` implements the full §III-E loop.  At every trigger
(quantum / idle-core / counter, §III-E):

1. drain the waiting queue and pin the jobs to cores with Cumulative
   Round-Robin;
2. decide AES vs BQ from the monitored quality (compensation, §III-C);
3. in AES, apply the Longest-First cut across all active jobs so the
   projected cumulative quality lands on the target (§III-B);
4. estimate the load and distribute the power budget — Equal-Sharing
   below the critical load, Water-Filling above it (§III-D);
5. per core, run Quality-OPT (second cut under the power cap) and
   Energy-OPT (YDS speeds), then install the segment plan.

The BE and OQ evaluation baselines are parameterizations of the same
class (§IV-A-1) and are exposed via :func:`make_be` / :func:`make_oq`;
:func:`make_ge` builds the paper's default GE.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Literal, Optional, Tuple

import numpy as np

from repro.core.assignment import AssignmentPolicy, CumulativeRoundRobin
from repro.core.decisions import DecisionLog
from repro.errors import SchedulingError
from repro.core.cutting import WaterlineMemo, lf_cut_waterline
from repro.core.load import ArrivalRateEstimator
from repro.core.modes import ExecutionMode, ModeController
from repro.core.planner import build_core_plan, core_power_demand, edf_sort
from repro.obs.tracer import TracerLike
from repro.units import PerSecond, PowerBudget, QualityFrac, Seconds, Volume, WattsArray
from repro.power.distribution import (
    EqualSharing,
    HybridDistribution,
    PowerDistributionPolicy,
    WaterFilling,
)
from repro.server.core import Segment
from repro.server.scheduler import Scheduler
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.server.harness import SimulationHarness
    from repro.server.machine import MulticoreServer

__all__ = ["GEScheduler", "make_ge", "make_be", "make_oq"]

DistributionMode = Literal["hybrid", "es", "wf"]


class GEScheduler(Scheduler):
    """The Good Enough scheduler and its BE/OQ/no-compensation variants.

    Parameters
    ----------
    q_offset:
        Added to the configured ``Q_GE`` to form the controller target
        (0.02 for the OQ baseline, 0 for GE).
    compensated:
        Enable the AES↔BQ compensation policy (§III-C).  ``False``
        pins the scheduler to AES (OQ, and Fig. 5's no-compensation
        arm).
    cutting:
        Enable the AES job cutting at all.  ``False`` forces BQ mode
        permanently — that is the BE baseline.
    distribution:
        "hybrid" (paper default), or pin to "es" / "wf" for the Fig. 6/7
        ablation arms.
    cut_with_history:
        When True the LF cut subsidizes the batch with the monitor's
        cumulative surplus, cutting deeper after good stretches.  The
        paper's cut is batch-local (history off): deficits are repaired
        only by the BQ compensation switch, which is what makes the
        Fig. 5 ablation meaningful.  The history variant is kept as an
        ablation (see ``benchmarks/test_ablation_cut_history.py``).
    assignment:
        Batch assignment policy; defaults to C-RR.
    name:
        Reported name; defaults to "GE".
    """

    def __init__(
        self,
        *,
        q_offset: QualityFrac = 0.0,
        compensated: bool = True,
        cutting: bool = True,
        distribution: DistributionMode = "hybrid",
        assignment: Optional[AssignmentPolicy] = None,
        cut_with_history: bool = False,
        decision_log: Optional[DecisionLog] = None,
        name: str = "GE",
    ) -> None:
        super().__init__()
        if distribution not in ("hybrid", "es", "wf"):
            raise ValueError(f"unknown distribution mode {distribution!r}")
        self.name = name
        self.q_offset = float(q_offset)
        self.compensated = bool(compensated)
        self.cutting = bool(cutting)
        self.cut_with_history = bool(cut_with_history)
        #: Optional repro.core.decisions.DecisionLog for observability.
        self.decision_log = decision_log
        #: Optional second-cut allocator override (see planner.build_core_plan).
        self._allocator = None
        self.distribution_mode: DistributionMode = distribution
        self._assignment = assignment
        # Bound in bind():
        self.controller: Optional[ModeController] = None
        self.estimator = ArrivalRateEstimator()
        self._hybrid = HybridDistribution(light=EqualSharing(), heavy=WaterFilling())
        self._active: List[List[Job]] = []
        self._critical_rate: PerSecond = float("inf")
        self._q_target: QualityFrac = 1.0
        # Chaos state (repro.chaos): indices of currently-failed cores
        # and the mean demand used to rescale the critical load when
        # capacity changes.  Both stay untouched in undisturbed runs, so
        # the hot path only ever pays `if self._failed_cores:` checks.
        self._failed_cores: set[int] = set()
        self._mean_demand: Volume = 0.0
        self._reschedules = 0
        self._last_policy: Optional[str] = None
        # Hot-path caches (sized in bind(); see docs/performance.md).
        self._waterline_memo = WaterlineMemo()
        self._zero_demands = np.zeros(0)
        self._plan_keys: List[Optional[Tuple[float, float, Tuple]]] = []
        self._plan_segments: List[Optional[List[Segment]]] = []
        self._cap_memo: List[Optional[Tuple[float, float, float]]] = []

    # ------------------------------------------------------------------
    def bind(self, harness: "SimulationHarness") -> None:
        super().bind(harness)
        cfg = harness.config
        self.quantum = cfg.quantum
        self._q_target = min(1.0, cfg.q_ge + self.q_offset)
        self._critical_rate = cfg.critical_load_rate()
        self.controller = ModeController(
            harness.monitor,
            self._q_target,
            compensated=self.compensated,
            start_time=harness.sim.now,
            on_switch=self._on_mode_switch,
        )
        if self._assignment is None:
            self._assignment = CumulativeRoundRobin(cfg.m)
        self._active = [[] for _ in range(cfg.m)]
        self._failed_cores = set()
        self._mean_demand = cfg.demand_distribution().mean
        self._waterline_memo = WaterlineMemo()
        self._zero_demands = np.zeros(cfg.m)
        self._plan_keys = [None] * cfg.m
        self._plan_segments = [None] * cfg.m
        self._cap_memo = [None] * cfg.m

    # ------------------------------------------------------------------
    # Triggers (paper §III-E)
    # ------------------------------------------------------------------
    def on_arrival(self, job: Job) -> None:
        self.estimator.observe(job.arrival)
        harness = self.harness
        if len(harness.queue) >= harness.config.counter_threshold:
            self.reschedule()  # counter trigger
        elif any(
            not core.has_work and not core.failed
            for core in harness.machine.cores
        ):
            # A job arrived while at least one core sits idle: treat as
            # the idle-core trigger so short deadlines are not lost
            # waiting for the quantum (see DESIGN.md §5).
            self.reschedule()

    def on_core_idle(self, core_index: int) -> None:
        if self.harness.queue:
            self.reschedule()

    def on_quantum(self) -> None:
        self.reschedule()

    # ------------------------------------------------------------------
    # Disturbance hooks (repro.chaos)
    # ------------------------------------------------------------------
    def on_core_failed(self, core_index: int) -> None:
        """React to a core failure: forget its jobs, shrink capacity.

        The injector has already killed or re-queued the affected jobs,
        so the core's active set is stale; C-RR keeps its pinned-forever
        discipline for every *other* job.  The critical-load threshold
        is rescaled to the surviving capacity and a round runs now so
        re-queued jobs land on live cores this instant.
        """
        self._failed_cores.add(core_index)
        self._active[core_index] = []
        self._plan_keys[core_index] = None
        self._refresh_critical_rate()
        self.reschedule()

    def on_core_recovered(self, core_index: int) -> None:
        self._failed_cores.discard(core_index)
        self._plan_keys[core_index] = None
        self._refresh_critical_rate()
        self.reschedule()

    def on_budget_change(self, budget: float) -> None:
        """Re-distribute immediately under the new ``H``.

        The reschedule recomputes caps through ES/WF with the machine's
        current budget, so the instantaneous power drops (or rises) at
        the dip (or restore) instant, never one quantum later.
        """
        self._refresh_critical_rate()
        self.reschedule()

    def _refresh_critical_rate(self) -> None:
        """Rescale the light/heavy switch to the current capacity.

        With every core alive at the configured budget this reproduces
        ``config.critical_load_rate()`` exactly; under chaos the
        equal-share capacity is recomputed over the surviving cores at
        the machine's *current* budget.
        """
        harness = self.harness
        assert harness is not None
        cfg = harness.config
        machine = harness.machine
        alive = machine.alive_count
        if alive == machine.m and machine.budget == cfg.budget:
            self._critical_rate = cfg.critical_load_rate()
            return
        if alive == 0 or self._mean_demand <= 0:
            self._critical_rate = 0.0
            return
        share = machine.budget / alive
        capacity = sum(
            machine.models[i].throughput(machine.scales[i].max_speed_at_power(share))
            for i in range(machine.m)
            if i not in self._failed_cores
        )
        self._critical_rate = (
            cfg.critical_load_fraction * capacity / self._mean_demand
        )

    def _redirect(self, core_idx: int) -> int:
        """Next alive core at/after ``core_idx`` (cyclic).

        Applied to C-RR assignments only while cores are failed, so the
        undisturbed assignment sequence is untouched.
        """
        if core_idx not in self._failed_cores:
            return core_idx
        m = self.harness.machine.m  # type: ignore[union-attr]
        for step in range(1, m):
            candidate = (core_idx + step) % m
            if candidate not in self._failed_cores:
                return candidate
        return core_idx  # unreachable: the all-dead case parks the batch

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _on_mode_switch(self, now: Seconds, old: ExecutionMode, new: ExecutionMode) -> None:
        """ModeController observer → mode_switch / compensation events."""
        tracer = self.harness.tracer
        if not tracer.enabled:
            return
        tracer.scheduler_event(
            "mode_switch", now, **{"from": old.value, "to": new.value}
        )
        # A compensation episode is exactly a BQ excursion of the
        # compensated controller (§III-C).
        if self.compensated and self.cutting:
            if new is ExecutionMode.BQ:
                tracer.scheduler_event("compensation_start", now)
            elif old is ExecutionMode.BQ:
                tracer.scheduler_event("compensation_end", now)

    # ------------------------------------------------------------------
    # The scheduling round
    # ------------------------------------------------------------------
    def reschedule(self) -> None:
        """Run one full §III-E scheduling round at the current instant.

        The round is profiled as the ``scheduler.round`` phase (with
        ``cut.lf`` / ``power.distribute`` / ``planner.*`` nested inside
        it); phase timers measure host wall time only and never feed
        back into the schedule.
        """
        if self.harness is None or self.controller is None or self._assignment is None:
            raise SchedulingError(
                "GE scheduler used before bind(); attach it to a SimulationHarness first"
            )
        tracer = self.harness.tracer
        with tracer.profiler.phase("scheduler.round") as round_phase:
            self._run_round(tracer)
        if tracer.enabled:
            tracer.metrics.histogram("scheduler.round_latency_ms", bound=10.0).observe(
                round_phase.elapsed * 1e3
            )

    def _run_round(self, tracer: TracerLike) -> None:
        # reschedule() already rejected unbound use; narrow for typing.
        assert (
            self.harness is not None
            and self.controller is not None
            and self._assignment is not None
        )
        harness = self.harness
        now = harness.sim.now
        machine = harness.machine
        tracing = tracer.enabled
        prof = tracer.profiler
        queue_depth = len(harness.queue)
        self._reschedules += 1

        # Freeze in-flight progress so 'processed' is current everywhere.
        for core in machine.cores:
            core.checkpoint()

        # 1. Batch-assign the queue with C-RR (jobs stay pinned forever).
        # An empty batch skips the policy call (and the O(m·jobs) load
        # scan feeding it) — no built-in policy acts on zero jobs.
        batch = harness.take_all_queued()
        if batch and self._failed_cores and len(self._failed_cores) >= machine.m:
            # Every core is dead (chaos): park the batch back in the
            # queue until a recovery event restores capacity.
            for job in batch:
                harness.requeue_job(job)
            batch = []
        if batch:
            assigned = self._assignment.assign(batch, self._core_loads())
            if self._failed_cores:
                # C-RR is blind to failures; bounce dead-core picks to
                # the next alive core (chaos only — no-op otherwise).
                assigned = [(job, self._redirect(idx)) for job, idx in assigned]
            for job, core_idx in assigned:
                job.assign(core_idx)
                self._active[core_idx].append(job)
                if tracing:
                    tracer.job_assigned(job, core_idx, now)

        # Refresh active sets: drop settled jobs and jobs whose deadline
        # has passed (their expiry event settles them this instant).
        per_core: List[List[Job]] = []
        for idx in range(machine.m):
            live = [j for j in self._active[idx] if not j.settled and j.deadline > now]
            self._active[idx] = [j for j in self._active[idx] if not j.settled]
            per_core.append(edf_sort(live))

        # 2. Mode decision (compensation policy).
        if not self.cutting:
            mode = ExecutionMode.BQ
            self.controller.force(mode, now)
        else:
            mode = self.controller.decide(now)

        # 3. Targets: LF cut in AES, full demands in BQ.
        all_jobs = [j for jobs in per_core for j in jobs]
        with prof.phase("cut.lf"):
            target_of = self._targets_for(all_jobs, mode)
        if tracing and mode is ExecutionMode.AES and all_jobs:
            total_demand = sum(j.demand for j in all_jobs)
            total_target = sum(target_of[j.jid] for j in all_jobs)
            cut_fraction = 1.0 - total_target / total_demand if total_demand else 0.0
            tracer.scheduler_event(
                "lf_cut", now, jobs=len(all_jobs), cut_fraction=cut_fraction
            )
            tracer.metrics.histogram("scheduler.cut_fraction").observe(cut_fraction)
            # Per-job cut events only for this round's batch, so each
            # job gets at most one (targets are recomputed every round).
            for job in batch:
                target = target_of.get(job.jid)  # absent: expired this instant
                if target is not None and target < job.demand * (1.0 - 1e-12):
                    tracer.job_cut(job, target, now)

        # 4. Power demands and distribution (per-core models support the
        # heterogeneous-machine extension; identical when homogeneous).
        # The branch is picked first: ES ignores the demand values, so
        # the per-core demand scan runs only for the WF branch.
        with prof.phase("power.distribute"):
            policy = self._policy_for(now)
            if policy.needs_demands:
                demands_w = self._power_demands(per_core, target_of, now, machine)
            else:
                demands_w = self._zero_demands
            if self._failed_cores:
                caps, dist_policy = self._distribute_alive(policy, demands_w, machine)
            else:
                distribution = policy.distribute(demands_w, machine.budget)
                caps = distribution.caps
                dist_policy = distribution.policy

        if tracing and self._last_policy not in (None, dist_policy):
            tracer.scheduler_event(
                "policy_flip",
                now,
                **{"from": self._last_policy, "to": dist_policy},
            )
        self._last_policy = dist_policy

        if self.decision_log is not None or tracing:
            from repro.core.decisions import Decision

            decision = Decision(
                time=now,
                mode=mode.value,
                policy=dist_policy,
                batch_size=len(batch),
                active_jobs=len(all_jobs),
                monitor_quality=harness.monitor.quality,
                caps=tuple(float(c) for c in caps),
            )
            if self.decision_log is not None:
                self.decision_log.record(decision)
            # The log forwards to its own tracer; emit directly only
            # when that would not already have reached this tracer.
            if tracing and (
                self.decision_log is None or self.decision_log.tracer is not tracer
            ):
                tracer.decision(decision)

        # 5. Per-core planning and installation.  A core whose queue
        # state (jids, progress, targets) and power cap are unchanged
        # since the previous round *at this same instant* would rebuild
        # the exact same plan; the cached segments are reinstalled
        # instead (see docs/performance.md for the invalidation rules).
        quality_opt_calls = 0
        energy_opt_calls = 0
        plan_cache_hits = 0
        caps_n = len(caps)
        # The default allocator is a pure function of the cache key; an
        # injected one (the mixed-class extension) may read shared
        # monitor state, so plan reuse is disabled for it.
        cacheable = self._allocator is None
        with prof.phase("planner.build"):
            for idx, jobs in enumerate(per_core):
                core = machine.cores[idx]
                if not jobs:
                    # Nothing to plan.  Clearing an already-idle core is
                    # a no-op (the speed timeline dedupes same-value
                    # writes), so only cores holding stale segments need
                    # the call.
                    if core.has_work:
                        core.set_plan([])
                    self._plan_keys[idx] = None
                    continue
                cap = float(caps[idx]) if caps_n else 0.0
                key = (
                    now,
                    cap,
                    tuple((j.jid, j.processed, target_of[j.jid]) for j in jobs),
                )
                if cacheable and key == self._plan_keys[idx]:
                    segments = self._plan_segments[idx]
                    assert segments is not None
                    core.set_plan(segments)
                    plan_cache_hits += 1
                    continue
                cap_memo = self._cap_memo[idx]
                if cap_memo is not None and cap_memo[0] == cap:
                    speed_cap, capacity = cap_memo[1], cap_memo[2]
                else:
                    speed_cap = machine.scales[idx].max_speed_at_power(cap)
                    capacity = machine.models[idx].throughput(speed_cap)
                    self._cap_memo[idx] = (cap, speed_cap, capacity)
                plan = build_core_plan(
                    jobs,
                    [target_of[j.jid] for j in jobs],
                    now,
                    cap,
                    machine.models[idx],
                    machine.scales[idx],
                    allocator=self._allocator,
                    profiler=prof,
                    speed_cap=speed_cap,
                    capacity=capacity,
                )
                if tracing:
                    quality_opt_calls += 1  # Quality-OPT runs once per planned core
                    if plan.segments:
                        energy_opt_calls += 1  # Energy-OPT ran on the survivors
                core.set_plan(plan.segments)
                if plan.settle_now:
                    for job, outcome in plan.settle_now:
                        harness.settle_job(job, outcome)
                    # Settling changed the live set; the stored plan
                    # could never match the next key anyway.
                    self._plan_keys[idx] = None
                else:
                    self._plan_keys[idx] = key
                    self._plan_segments[idx] = plan.segments

        if tracing:
            metrics = tracer.metrics
            metrics.counter("scheduler.rounds").inc()
            metrics.counter("planner.quality_opt_calls").inc(quality_opt_calls)
            metrics.counter("planner.energy_opt_calls").inc(energy_opt_calls)
            metrics.counter("planner.plan_cache_hits").inc(plan_cache_hits)
            metrics.gauge("scheduler.queue_depth").set(queue_depth)
            metrics.histogram("scheduler.batch_size", bound=64).observe(len(batch))
            metrics.histogram("scheduler.active_jobs", bound=256).observe(len(all_jobs))

    # ------------------------------------------------------------------
    def _targets_for(
        self, all_jobs: List[Job], mode: ExecutionMode
    ) -> Dict[int, Volume]:
        """Per-job total target volumes for this round.

        The default is the paper's behaviour: a global LF waterline cut
        across the active jobs in AES mode, full demands in BQ mode.
        Subclasses may override (e.g. the clairvoyant reference computes
        targets offline over the whole workload).
        """
        harness = self.harness
        if mode is ExecutionMode.AES and all_jobs:
            demands = np.array([j.demand for j in all_jobs])
            base_achieved = harness.monitor.achieved if self.cut_with_history else 0.0
            base_potential = harness.monitor.potential if self.cut_with_history else 0.0
            targets = lf_cut_waterline(
                harness.quality_function,
                demands,
                self._q_target,
                base_achieved=base_achieved,
                base_potential=base_potential,
                memo=self._waterline_memo,
            )
        else:
            targets = np.array([j.demand for j in all_jobs])
        return {job.jid: float(t) for job, t in zip(all_jobs, targets)}

    def _policy_for(self, now: Seconds) -> PowerDistributionPolicy:
        """The distribution branch for this round (may tick the estimator)."""
        if self.distribution_mode == "es":
            return self._hybrid.light
        if self.distribution_mode == "wf":
            return self._hybrid.heavy
        heavy = self.estimator.is_heavy(now, self._critical_rate)
        return self._hybrid.heavy if heavy else self._hybrid.light

    def _power_demands(
        self,
        per_core: List[List[Job]],
        target_of: Dict[int, Volume],
        now: Seconds,
        machine: "MulticoreServer",
    ) -> WattsArray:
        """Per-core power demands (W) for the water-filling branch."""
        demands_w = np.zeros(machine.m)
        models = machine.models
        for idx, jobs in enumerate(per_core):
            if not jobs:
                continue  # an empty core demands exactly 0 W
            extras = [max(0.0, target_of[j.jid] - j.processed) for j in jobs]
            demands_w[idx] = core_power_demand(jobs, extras, now, models[idx])
        return demands_w

    def _distribute_alive(
        self,
        policy: PowerDistributionPolicy,
        demands_w: WattsArray,
        machine: "MulticoreServer",
    ) -> Tuple[WattsArray, str]:
        """Distribute the budget over the *alive* cores only (chaos).

        ES splits ``H`` into ``H/alive`` shares and WF water-fills the
        surviving demands; dead cores are capped at exactly 0 W.
        """
        alive = [i for i in range(machine.m) if i not in self._failed_cores]
        caps = np.zeros(machine.m)
        if not alive:
            return caps, policy.name
        sub = demands_w[alive] if policy.needs_demands else np.zeros(len(alive))
        decision = policy.distribute(sub, machine.budget)
        caps[alive] = decision.caps
        return caps, decision.policy

    def _distribute(self, demands_w: WattsArray, budget: PowerBudget, now: Seconds):
        if self.distribution_mode == "es":
            return self._hybrid.light.distribute(demands_w, budget)
        if self.distribution_mode == "wf":
            return self._hybrid.heavy.distribute(demands_w, budget)
        heavy = self.estimator.is_heavy(now, self._critical_rate)
        return self._hybrid.distribute_for_load(demands_w, budget, heavy)

    def _core_loads(self) -> List[Volume]:
        return [
            sum(j.remaining for j in jobs if not j.settled) for jobs in self._active
        ]

    # -- reporting ---------------------------------------------------------
    def aes_fraction(self) -> Optional[float]:
        """Fraction of time in AES mode (Fig. 1); None before binding."""
        if self.controller is None:
            return None
        return self.controller.aes_fraction(self.harness.sim.now)

    @property
    def reschedules(self) -> int:
        """Number of scheduling rounds executed."""
        return self._reschedules

    def describe(self) -> str:
        comp = "comp" if self.compensated else "no-comp"
        cut = "cut" if self.cutting else "no-cut"
        return f"{self.name} (target={self._q_target}, {comp}, {cut}, {self.distribution_mode})"


def make_ge(**kwargs: object) -> GEScheduler:
    """The paper's GE with default knobs."""
    return GEScheduler(name=kwargs.pop("name", "GE"), **kwargs)


def make_be() -> GEScheduler:
    """BE baseline: always Best-Quality mode, always Water-Filling."""
    return GEScheduler(name="BE", cutting=False, distribution="wf")


def make_oq() -> GEScheduler:
    """OQ baseline: target Q_GE + 2 %, no compensation policy."""
    return GEScheduler(name="OQ", q_offset=0.02, compensated=False)
