"""Energy-OPT: minimum-energy speed scheduling (Yao–Demers–Shenker).

The paper's final per-core step "executes the jobs in order of their
deadlines by the existing Energy-OPT algorithm [28] to achieve the
least power consumption".  [28] is the classic YDS result: with a
convex power function, the minimum-energy feasible schedule runs each
*critical interval* at its constant intensity.

Two implementations are provided:

* :func:`yds_schedule` — the specialization GE actually needs: all jobs
  are available *now* (a core plans only work already in hand) and are
  executed sequentially in EDF order.  The optimal speed profile is a
  non-increasing staircase found by repeatedly taking the prefix with
  the maximum intensity ``Σ volume / (deadline − now)``.  O(n²) worst
  case, linear in practice for agreeable batches.
* :func:`yds_schedule_general` — the textbook algorithm for arbitrary
  release times and deadlines (preemptive EDF), used to cross-validate
  the specialization in tests and available as library functionality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import InfeasibleError
from repro.units import Seconds, SecondsSeq, Speed, SpeedArray, VolumeSeq

__all__ = ["BlockSpeed", "yds_schedule", "yds_schedule_general"]


@dataclass(frozen=True)
class BlockSpeed:
    """One staircase step of the YDS profile.

    ``jobs`` are indices into the input arrays; every job in the block
    runs at the same constant ``speed`` (units/second).
    """

    jobs: Tuple[int, ...]
    speed: Speed


#: Batch size below which the pure-Python staircase beats the numpy one
#: (per-core GE batches are almost always this small).
_SMALL_N = 32


def _yds_staircase_small(
    vols: VolumeSeq, dls: SecondsSeq, now: Seconds, max_speed: Speed
) -> List[BlockSpeed]:
    """Pure-Python staircase for small batches.

    Mirrors the vectorized loop in :func:`yds_schedule` operation for
    operation — sequential prefix sums are bitwise equal to
    ``np.cumsum``, and max/threshold selection uses the same float
    comparisons — so both paths produce identical blocks (asserted by
    ``tests/core/test_energy_opt.py``).
    """
    vlist = vols if isinstance(vols, list) else np.asarray(vols).tolist()
    dlist = dls if isinstance(dls, list) else np.asarray(dls).tolist()
    n = len(vlist)
    prefix = [0.0] * (n + 1)
    acc = 0.0
    for i, v in enumerate(vlist):
        acc += v
        prefix[i + 1] = acc
    blocks: List[BlockSpeed] = []
    start = 0
    t = now
    cap_slack = max_speed * (1.0 + 1e-9)
    while start < n:
        base = prefix[start]
        peak = -math.inf
        intensities = []
        for k in range(start, n):
            span = dlist[k] - t
            if span <= 0:
                raise InfeasibleError(
                    "deadline at or before block start — infeasible batch"
                )
            intensity = (prefix[k + 1] - base) / span
            intensities.append(intensity)
            if intensity > peak:
                peak = intensity
        # Longest prefix achieving the peak (canonical maximal block).
        threshold = peak * (1.0 - 1e-12)
        k_sel = 0
        for i, intensity in enumerate(intensities):
            if intensity >= threshold:
                k_sel = i
        speed = intensities[k_sel]
        if speed > cap_slack:
            raise InfeasibleError(
                f"required speed {speed:.6g} exceeds cap {max_speed:.6g} units/s"
            )
        speed = min(speed, max_speed)
        blocks.append(BlockSpeed(jobs=tuple(range(start, start + k_sel + 1)), speed=speed))
        t = t + (prefix[start + k_sel + 1] - base) / speed
        start += k_sel + 1
    return blocks


def yds_schedule(
    volumes: VolumeSeq,
    deadlines: SecondsSeq,
    now: Seconds,
    *,
    max_speed: Speed = math.inf,
) -> List[BlockSpeed]:
    """Minimum-energy speeds for jobs all released at ``now``.

    Parameters
    ----------
    volumes:
        Remaining volume of each job (units), in EDF order.
    deadlines:
        Absolute deadlines, non-decreasing, all > ``now``.
    now:
        Current time.
    max_speed:
        Cap in units/second; intensities above it raise
        :class:`InfeasibleError` (callers run Quality-OPT first to
        guarantee feasibility).  A 1e-9 relative slack absorbs float
        noise.

    Returns
    -------
    list of :class:`BlockSpeed` with strictly decreasing speeds.

    Notes
    -----
    Correctness: with every job released at ``now`` and agreeable
    deadlines, the YDS critical interval is always a prefix
    ``[now, d_k]`` maximizing ``Σ_{i≤k} v_i / (d_k − now)``; jobs of the
    prefix run at exactly that intensity and finish at ``d_k``, after
    which the argument repeats on the suffix starting at ``d_k``.
    """
    # The whole small-batch path (validation included) runs on Python
    # lists: scalar compares/subtract/divide are bitwise equal to the
    # np.any/np.diff formulation they replaced, and list inputs from the
    # planner skip array construction entirely.
    if isinstance(volumes, np.ndarray):
        vlist = volumes.tolist()
    else:
        vlist = [float(v) for v in volumes]
    if isinstance(deadlines, np.ndarray):
        dlist = deadlines.tolist()
    else:
        dlist = [float(d) for d in deadlines]
    n = len(vlist)
    if n != len(dlist):
        raise ValueError("volumes and deadlines must have equal length")
    if n == 1:
        # Single-job fast path: the monotonicity check is vacuous for
        # one job; one block at the exact intensity.
        v0 = vlist[0]
        if v0 <= 0:
            raise ValueError(
                "volumes must be positive (filter zero work before calling)"
            )
        d0 = dlist[0]
        if d0 <= now:
            raise InfeasibleError(f"first deadline {d0!r} is not after now={now!r}")
        speed = v0 / (d0 - now)
        if speed > max_speed * (1.0 + 1e-9):
            raise InfeasibleError(
                f"required speed {speed:.6g} exceeds cap {max_speed:.6g} units/s"
            )
        return [BlockSpeed(jobs=(0,), speed=min(speed, max_speed))]
    for v in vlist:
        if v <= 0:
            raise ValueError(
                "volumes must be positive (filter zero work before calling)"
            )
    for i in range(n - 1):
        if dlist[i + 1] - dlist[i] < 0:
            raise ValueError("deadlines must be non-decreasing (EDF order)")
    if n and dlist[0] <= now:
        raise InfeasibleError(f"first deadline {dlist[0]!r} is not after now={now!r}")

    if n <= _SMALL_N:
        return _yds_staircase_small(vlist, dlist, now, max_speed)

    vols = np.asarray(vlist, dtype=float)
    dls = np.asarray(dlist, dtype=float)
    blocks: List[BlockSpeed] = []
    start = 0
    t = now
    prefix = np.concatenate([[0.0], np.cumsum(vols)])
    while start < n:
        # Intensity of each candidate prefix of the remaining jobs.
        cumulative = prefix[start + 1 :] - prefix[start]
        spans = dls[start:] - t
        if np.any(spans <= 0):
            raise InfeasibleError("deadline at or before block start — infeasible batch")
        intensity = cumulative / spans
        peak = float(np.max(intensity))
        # Prefer the longest prefix achieving the peak so equal-intensity
        # jobs merge into one maximal critical block (canonical YDS).
        k = int(np.nonzero(intensity >= peak * (1.0 - 1e-12))[0][-1])
        speed = float(intensity[k])
        if speed > max_speed * (1.0 + 1e-9):
            raise InfeasibleError(
                f"required speed {speed:.6g} exceeds cap {max_speed:.6g} units/s"
            )
        speed = min(speed, max_speed)
        jobs = tuple(range(start, start + k + 1))
        blocks.append(BlockSpeed(jobs=jobs, speed=speed))
        t = t + float(cumulative[k]) / speed
        start = start + k + 1
    return blocks


def per_job_speeds(
    blocks: List[BlockSpeed], n: int
) -> SpeedArray:
    """Flatten a staircase into a per-job speed array of length ``n``."""
    speeds = np.zeros(n)
    for block in blocks:
        for j in block.jobs:
            speeds[j] = block.speed
    return speeds


def yds_schedule_general(
    releases: SecondsSeq,
    deadlines: SecondsSeq,
    volumes: VolumeSeq,
) -> List[Tuple[Seconds, Seconds, Speed]]:
    """Textbook YDS for arbitrary release times (preemptive, one core).

    Returns the optimal speed profile as ``(start, end, speed)``
    critical intervals in the order they were peeled off (speeds are
    non-increasing).  O(n³) — intended for validation and small inputs,
    not the simulation hot path.
    """
    rel = [float(r) for r in releases]
    dls = [float(d) for d in deadlines]
    vols = [float(v) for v in volumes]
    if not len(rel) == len(dls) == len(vols):
        raise ValueError("releases, deadlines, volumes must have equal length")
    for r, d, v in zip(rel, dls, vols):
        if d <= r:
            raise ValueError(f"deadline {d} not after release {r}")
        if v <= 0:
            raise ValueError("volumes must be positive")

    jobs = list(range(len(vols)))
    profile: List[Tuple[float, float, float]] = []
    while jobs:
        # Candidate interval endpoints are the remaining jobs' releases
        # and deadlines.
        points = sorted({rel[j] for j in jobs} | {dls[j] for j in jobs})
        best = None  # (speed, z, d, members)
        for zi, z in enumerate(points):
            for d in points[zi + 1 :]:
                members = [j for j in jobs if rel[j] >= z and dls[j] <= d]
                if not members:
                    continue
                speed = sum(vols[j] for j in members) / (d - z)
                if best is None or speed > best[0] + 1e-15:
                    best = (speed, z, d, members)
        assert best is not None
        speed, z, d, members = best
        profile.append((z, d, speed))
        member_set = set(members)
        jobs = [j for j in jobs if j not in member_set]
        # Collapse the critical interval: times inside [z, d] are no
        # longer available, so shift the remaining jobs' windows.
        span = d - z
        for j in jobs:
            if rel[j] >= d:
                rel[j] -= span
            elif rel[j] > z:
                rel[j] = z
            if dls[j] >= d:
                dls[j] -= span
            elif dls[j] > z:
                dls[j] = z
    return profile


def energy_of_blocks(
    blocks: List[BlockSpeed],
    volumes: Sequence[float],
    power_of_speed: Callable[[float], float],
) -> float:
    """Energy of a staircase given ``power_of_speed`` in units/second.

    Each job contributes ``P(s) · v / s`` at its block speed; helper for
    tests comparing YDS against alternatives.
    """
    vols = np.asarray(volumes, dtype=float)
    total = 0.0
    for block in blocks:
        for j in block.jobs:
            total += power_of_speed(block.speed) * vols[j] / block.speed
    return total
