"""Energy-OPT: minimum-energy speed scheduling (Yao–Demers–Shenker).

The paper's final per-core step "executes the jobs in order of their
deadlines by the existing Energy-OPT algorithm [28] to achieve the
least power consumption".  [28] is the classic YDS result: with a
convex power function, the minimum-energy feasible schedule runs each
*critical interval* at its constant intensity.

Two implementations are provided:

* :func:`yds_schedule` — the specialization GE actually needs: all jobs
  are available *now* (a core plans only work already in hand) and are
  executed sequentially in EDF order.  The optimal speed profile is a
  non-increasing staircase found by repeatedly taking the prefix with
  the maximum intensity ``Σ volume / (deadline − now)``.  O(n²) worst
  case, linear in practice for agreeable batches.
* :func:`yds_schedule_general` — the textbook algorithm for arbitrary
  release times and deadlines (preemptive EDF), used to cross-validate
  the specialization in tests and available as library functionality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import InfeasibleError

__all__ = ["BlockSpeed", "yds_schedule", "yds_schedule_general"]


@dataclass(frozen=True)
class BlockSpeed:
    """One staircase step of the YDS profile.

    ``jobs`` are indices into the input arrays; every job in the block
    runs at the same constant ``speed`` (units/second).
    """

    jobs: Tuple[int, ...]
    speed: float


def yds_schedule(
    volumes: Sequence[float],
    deadlines: Sequence[float],
    now: float,
    *,
    max_speed: float = math.inf,
) -> List[BlockSpeed]:
    """Minimum-energy speeds for jobs all released at ``now``.

    Parameters
    ----------
    volumes:
        Remaining volume of each job (units), in EDF order.
    deadlines:
        Absolute deadlines, non-decreasing, all > ``now``.
    now:
        Current time.
    max_speed:
        Cap in units/second; intensities above it raise
        :class:`InfeasibleError` (callers run Quality-OPT first to
        guarantee feasibility).  A 1e-9 relative slack absorbs float
        noise.

    Returns
    -------
    list of :class:`BlockSpeed` with strictly decreasing speeds.

    Notes
    -----
    Correctness: with every job released at ``now`` and agreeable
    deadlines, the YDS critical interval is always a prefix
    ``[now, d_k]`` maximizing ``Σ_{i≤k} v_i / (d_k − now)``; jobs of the
    prefix run at exactly that intensity and finish at ``d_k``, after
    which the argument repeats on the suffix starting at ``d_k``.
    """
    vols = np.asarray(volumes, dtype=float)
    dls = np.asarray(deadlines, dtype=float)
    if vols.shape != dls.shape:
        raise ValueError("volumes and deadlines must have equal length")
    if np.any(vols <= 0):
        raise ValueError("volumes must be positive (filter zero work before calling)")
    if np.any(np.diff(dls) < 0):
        raise ValueError("deadlines must be non-decreasing (EDF order)")
    if vols.size and dls[0] <= now:
        raise InfeasibleError(f"first deadline {dls[0]!r} is not after now={now!r}")

    if vols.size == 1:
        # Single-job fast path: one block at the exact intensity.
        speed = float(vols[0]) / (float(dls[0]) - now)
        if speed > max_speed * (1.0 + 1e-9):
            raise InfeasibleError(
                f"required speed {speed:.6g} exceeds cap {max_speed:.6g} units/s"
            )
        return [BlockSpeed(jobs=(0,), speed=min(speed, max_speed))]

    blocks: List[BlockSpeed] = []
    start = 0
    t = now
    n = vols.size
    prefix = np.concatenate([[0.0], np.cumsum(vols)])
    while start < n:
        # Intensity of each candidate prefix of the remaining jobs.
        cumulative = prefix[start + 1 :] - prefix[start]
        spans = dls[start:] - t
        if np.any(spans <= 0):
            raise InfeasibleError("deadline at or before block start — infeasible batch")
        intensity = cumulative / spans
        peak = float(np.max(intensity))
        # Prefer the longest prefix achieving the peak so equal-intensity
        # jobs merge into one maximal critical block (canonical YDS).
        k = int(np.nonzero(intensity >= peak * (1.0 - 1e-12))[0][-1])
        speed = float(intensity[k])
        if speed > max_speed * (1.0 + 1e-9):
            raise InfeasibleError(
                f"required speed {speed:.6g} exceeds cap {max_speed:.6g} units/s"
            )
        speed = min(speed, max_speed)
        jobs = tuple(range(start, start + k + 1))
        blocks.append(BlockSpeed(jobs=jobs, speed=speed))
        t = t + float(cumulative[k]) / speed
        start = start + k + 1
    return blocks


def per_job_speeds(
    blocks: List[BlockSpeed], n: int
) -> np.ndarray:
    """Flatten a staircase into a per-job speed array of length ``n``."""
    speeds = np.zeros(n)
    for block in blocks:
        for j in block.jobs:
            speeds[j] = block.speed
    return speeds


def yds_schedule_general(
    releases: Sequence[float],
    deadlines: Sequence[float],
    volumes: Sequence[float],
) -> List[Tuple[float, float, float]]:
    """Textbook YDS for arbitrary release times (preemptive, one core).

    Returns the optimal speed profile as ``(start, end, speed)``
    critical intervals in the order they were peeled off (speeds are
    non-increasing).  O(n³) — intended for validation and small inputs,
    not the simulation hot path.
    """
    rel = [float(r) for r in releases]
    dls = [float(d) for d in deadlines]
    vols = [float(v) for v in volumes]
    if not len(rel) == len(dls) == len(vols):
        raise ValueError("releases, deadlines, volumes must have equal length")
    for r, d, v in zip(rel, dls, vols):
        if d <= r:
            raise ValueError(f"deadline {d} not after release {r}")
        if v <= 0:
            raise ValueError("volumes must be positive")

    jobs = list(range(len(vols)))
    profile: List[Tuple[float, float, float]] = []
    while jobs:
        # Candidate interval endpoints are the remaining jobs' releases
        # and deadlines.
        points = sorted({rel[j] for j in jobs} | {dls[j] for j in jobs})
        best = None  # (speed, z, d, members)
        for zi, z in enumerate(points):
            for d in points[zi + 1 :]:
                members = [j for j in jobs if rel[j] >= z and dls[j] <= d]
                if not members:
                    continue
                speed = sum(vols[j] for j in members) / (d - z)
                if best is None or speed > best[0] + 1e-15:
                    best = (speed, z, d, members)
        assert best is not None
        speed, z, d, members = best
        profile.append((z, d, speed))
        member_set = set(members)
        jobs = [j for j in jobs if j not in member_set]
        # Collapse the critical interval: times inside [z, d] are no
        # longer available, so shift the remaining jobs' windows.
        span = d - z
        for j in jobs:
            if rel[j] >= d:
                rel[j] -= span
            elif rel[j] > z:
                rel[j] = z
            if dls[j] >= d:
                dls[j] -= span
            elif dls[j] > z:
                dls[j] = z
    return profile


def energy_of_blocks(
    blocks: List[BlockSpeed],
    volumes: Sequence[float],
    power_of_speed: Callable[[float], float],
) -> float:
    """Energy of a staircase given ``power_of_speed`` in units/second.

    Each job contributes ``P(s) · v / s`` at its block speed; helper for
    tests comparing YDS against alternatives.
    """
    vols = np.asarray(volumes, dtype=float)
    total = 0.0
    for block in blocks:
        for j in block.jobs:
            total += power_of_speed(block.speed) * vols[j] / block.speed
    return total
