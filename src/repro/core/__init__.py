"""The paper's primary contribution: the Good Enough (GE) scheduler.

Sub-modules, matching the paper's §III structure:

* :mod:`repro.core.cutting` — Longest-First job cutting (§III-B).
* :mod:`repro.core.modes` — AES/BQ mode controller with the quality
  compensation policy (§III-C).
* :mod:`repro.core.assignment` — Round-Robin and Cumulative
  Round-Robin batch job assignment (§III-E).
* :mod:`repro.core.energy_opt` — the Energy-OPT per-core speed
  schedule, i.e. Yao–Demers–Shenker speed scaling [28].
* :mod:`repro.core.quality_opt` — the Quality-OPT partial-processing
  allocator of He et al. [14], used as the "second cut" when a core's
  power cap cannot complete its workload.
* :mod:`repro.core.load` — online load estimation for the hybrid
  power-distribution switch (§III-D).
* :mod:`repro.core.planner` — per-core plan construction shared by the
  GE family (mode → cut → Quality-OPT → Energy-OPT → segments).
* :mod:`repro.core.ge` — the GE scheduler itself, plus its BE and OQ
  siblings expressed as parameterizations.
"""

from repro.core.assignment import CumulativeRoundRobin, RoundRobin
from repro.core.cutting import lf_cut_stepwise, lf_cut_waterline
from repro.core.cutting_general import lf_cut_mixed
from repro.core.decisions import Decision, DecisionLog
from repro.core.energy_opt import yds_schedule, yds_schedule_general
from repro.core.ge import GEScheduler, make_be, make_ge, make_oq
from repro.core.load import ArrivalRateEstimator, VolumeRateEstimator
from repro.core.modes import ExecutionMode, ModeController
from repro.core.quality_opt import quality_opt

__all__ = [
    "ArrivalRateEstimator",
    "CumulativeRoundRobin",
    "Decision",
    "DecisionLog",
    "ExecutionMode",
    "GEScheduler",
    "ModeController",
    "RoundRobin",
    "VolumeRateEstimator",
    "lf_cut_mixed",
    "lf_cut_stepwise",
    "lf_cut_waterline",
    "make_be",
    "make_ge",
    "make_oq",
    "quality_opt",
    "yds_schedule",
    "yds_schedule_general",
]
