"""Per-core plan construction for the GE scheduler family (§III-E).

Given the jobs pinned to one core and their *target* total volumes
(full demands in BQ mode; LF-cut targets in AES mode), this module
produces the executable segment list:

1. jobs whose target is already reached are settled immediately
   (their tails are discarded — the first cut);
2. **Quality-OPT** trims the batch to what the core's power cap can
   actually deliver before each deadline (the second cut);
3. **Energy-OPT** (YDS) assigns the minimum-energy speed staircase to
   the surviving volumes, quantized onto the DVFS ladder when the
   machine uses discrete speed scaling.

The module also computes the per-core *power demand* used by the
Water-Filling distribution: the power of the critical YDS intensity,
i.e. the smallest constant speed at which the core meets every
deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.energy_opt import yds_schedule
from repro.core.quality_opt import quality_opt
from repro.obs.prof import NULL_PROFILER, ProfilerLike
from repro.power.dvfs import DiscreteSpeedScale, SpeedScale
from repro.power.models import PowerModel
from repro.units import Gigahertz, Seconds, Speed, Volume, VolumeSeq, Watts
from repro.server.core import Segment
from repro.workload.job import Job, JobOutcome

__all__ = ["CorePlan", "build_core_plan", "core_power_demand", "edf_sort"]

#: Work below this volume (units) is considered "no work".
_WORK_EPS = 1e-6


def edf_sort(jobs: Sequence[Job]) -> List[Job]:
    """Jobs in Earliest-Deadline-First order (jid tie-break)."""
    return sorted(jobs, key=lambda j: (j.deadline, j.jid))


def core_power_demand(
    jobs: Sequence[Job],
    extras: VolumeSeq,
    now: Seconds,
    model: PowerModel,
) -> Watts:
    """Power (W) this core needs to deliver ``extras`` by the deadlines.

    The need is the *critical intensity* ``max_k Σ_{i≤k} v_i/(d_k−now)``
    over EDF prefixes — exactly the top step of the YDS staircase, and
    therefore the smallest constant-speed power that keeps the plan
    feasible.  Jobs must already be EDF-sorted and have deadlines > now.

    Implemented as a plain Python scan: batches are a handful of jobs,
    where the interpreter loop beats numpy's per-call overhead several
    times over, and a sequential running sum is bitwise equal to the
    ``np.cumsum``/``np.max`` formulation it replaced.
    """
    cumulative = 0.0
    peak = -float("inf")
    for job, extra in zip(jobs, extras):
        if extra > _WORK_EPS:
            cumulative += extra
            intensity = cumulative / (job.deadline - now)
            if intensity > peak:
                peak = intensity
    if peak == -float("inf"):
        return 0.0
    return model.power(model.speed_for_throughput(float(peak)))


@dataclass
class CorePlan:
    """Outcome of planning one core at one trigger.

    Attributes
    ----------
    segments:
        Ordered executable segments for :meth:`Core.set_plan`.
    settle_now:
        ``(job, outcome)`` pairs the scheduler must settle immediately
        (first- or second-cut discards and already-finished targets).
    """

    segments: List[Segment] = field(default_factory=list)
    settle_now: List[Tuple[Job, JobOutcome]] = field(default_factory=list)


def _immediate_outcome(job: Job) -> JobOutcome:
    """Outcome for a job whose planning target is already reached."""
    if job.remaining <= max(1e-9, 1e-7 * job.demand):
        return JobOutcome.COMPLETED
    if job.processed > _WORK_EPS:
        return JobOutcome.CUT
    return JobOutcome.DROPPED


def build_core_plan(
    jobs: Sequence[Job],
    targets: VolumeSeq,
    now: Seconds,
    power_cap: Watts,
    model: PowerModel,
    scale: SpeedScale,
    allocator: Optional[Callable[..., np.ndarray]] = None,
    profiler: ProfilerLike = NULL_PROFILER,
    *,
    speed_cap: Optional[Gigahertz] = None,
    capacity: Optional[Speed] = None,
) -> CorePlan:
    """Plan one core: first cut → Quality-OPT → Energy-OPT → segments.

    Parameters
    ----------
    jobs:
        Unsettled jobs pinned to this core, EDF-sorted, deadlines > now.
    targets:
        Per-job *total* target volume (same order as ``jobs``).  BQ mode
        passes full demands, AES passes LF-cut targets.
    power_cap:
        The core's power allocation from the distribution policy (W).
    allocator:
        The second-cut routine; signature of
        :func:`repro.core.quality_opt.quality_opt` plus a leading
        ``jobs`` argument.  Defaults to the shared-quality-function
        Quality-OPT; the mixed-class extension substitutes a
        marginal-levelling variant (see :mod:`repro.mixed`).
    profiler:
        Phase profiler recording the ``planner.quality_opt`` and
        ``planner.energy_opt`` wall-time phases; defaults to the
        zero-cost null profiler.
    speed_cap, capacity:
        Optional precomputed ``scale.max_speed_at_power(power_cap)`` and
        ``model.throughput(speed_cap)``.  Both are pure functions of
        ``power_cap``, so schedulers that replan the same cap every
        round memoize them per core; when omitted they are computed
        here.
    """
    plan = CorePlan()
    if not jobs:
        return plan
    # The hot path works on Python lists: per-element scalar arithmetic
    # is bitwise equal to the elementwise numpy expressions it replaced
    # and several times cheaper on the small per-core batches planned
    # here.  Only the custom-allocator branch still builds arrays (its
    # implementations expect them).
    processed = [j.processed for j in jobs]
    extras = []
    for t, p in zip(targets, processed):
        e = float(t) - p
        extras.append(e if e > 0.0 else 0.0)  # == np.maximum(0.0, t - p)

    if speed_cap is None:
        speed_cap = scale.max_speed_at_power(power_cap)
    if capacity is None:
        capacity = model.throughput(speed_cap)  # units/second at the cap

    # Second cut: fit the extras into the capacity before each deadline.
    deadlines = [j.deadline for j in jobs]
    with profiler.phase("planner.quality_opt"):
        if allocator is None:
            granted = quality_opt(extras, deadlines, now, capacity, offsets=processed)
        else:
            granted = allocator(
                jobs,
                np.asarray(extras, dtype=float),
                np.asarray(deadlines, dtype=float),
                now,
                capacity,
                np.asarray(processed, dtype=float),
            )
    glist = granted.tolist() if isinstance(granted, np.ndarray) else list(granted)

    live_idx = [i for i in range(len(jobs)) if glist[i] > _WORK_EPS]
    for i in range(len(jobs)):
        if glist[i] <= _WORK_EPS:
            plan.settle_now.append((jobs[i], _immediate_outcome(jobs[i])))
    if not live_idx:
        return plan

    live_vols = [glist[i] for i in live_idx]
    live_dls = [deadlines[i] for i in live_idx]
    with profiler.phase("planner.energy_opt"):
        blocks = yds_schedule(
            live_vols, live_dls, now, max_speed=capacity * (1 + 1e-9)
        )

    discrete = isinstance(scale, DiscreteSpeedScale)
    for block in blocks:
        speed_ghz = model.speed_for_throughput(block.speed)
        if discrete:
            # Round the staircase step up to the ladder (finishing early
            # is always deadline-safe) but never beyond the rectified cap.
            speed_ghz = min(scale.ceil(speed_ghz), speed_cap)
            speed_ghz = max(speed_ghz, 1e-12)
        else:
            speed_ghz = min(speed_ghz, speed_cap)
        for local_j in block.jobs:
            job = jobs[live_idx[local_j]]
            plan.segments.append(
                Segment(job=job, volume=float(live_vols[local_j]), speed=speed_ghz)
            )
    return plan
