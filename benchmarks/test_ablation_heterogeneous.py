"""Ablation: GE on heterogeneous (big.LITTLE-style) machines.

The paper's future work points at "different hardware platforms (such
as many-core processors)".  This bench runs GE on three 16-core
machines with the same budget — all-performance, mixed 8+8, and
all-efficient — and checks that the hybrid power distribution exploits
the efficient cores without violating the quality target.
"""

from __future__ import annotations

from repro.core.ge import make_ge
from repro.experiments.runner import run_single, scaled_config

MACHINES = {
    "performance": None,
    "big.LITTLE": tuple([0.6] * 8 + [1.0] * 8),
    "efficient": tuple([0.6] * 16),
}


def test_ablation_heterogeneous_machines(benchmark):
    def sweep():
        out = {}
        for name, scales in MACHINES.items():
            cfg = scaled_config(
                0.02, 11, arrival_rate=140.0, core_power_scales=scales
            )
            out[name] = run_single(cfg, make_ge)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name:<12} {r.row()}")
    for r in results.values():
        assert r.quality > 0.87
    assert (
        results["efficient"].energy
        < results["big.LITTLE"].energy
        < results["performance"].energy
    )
