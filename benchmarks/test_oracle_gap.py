"""Bench: the price of online operation (GE vs the clairvoyant oracle).

GE-Oracle computes the LF cut offline over the whole workload and never
compensates; comparing it with online GE isolates what batch-local
cutting + compensation cost in energy and how close online GE's quality
tracking is to the ideal.
"""

from __future__ import annotations

from repro.baselines.clairvoyant import make_oracle
from repro.core.ge import make_be, make_ge
from repro.experiments.runner import run_single, scaled_config


def test_oracle_gap(benchmark):
    rates = (110.0, 150.0, 190.0)

    def sweep():
        out = {}
        for rate in rates:
            cfg = scaled_config(0.02, 11, arrival_rate=rate)
            out[rate] = {
                "GE": run_single(cfg, make_ge),
                "Oracle": run_single(cfg, make_oracle),
                "BE": run_single(cfg, make_be),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"  {'λ':>5} {'GE Q':>7} {'Orc Q':>7} {'GE E':>9} {'Orc E':>9} {'online cost':>12}")
    for rate, row in results.items():
        ge, oracle = row["GE"], row["Oracle"]
        cost = ge.energy / oracle.energy - 1.0
        print(
            f"  {rate:5.0f} {ge.quality:7.4f} {oracle.quality:7.4f} "
            f"{ge.energy:8.0f}J {oracle.energy:8.0f}J {cost:11.1%}"
        )
    for rate, row in results.items():
        ge, oracle, be = row["GE"], row["Oracle"], row["BE"]
        # The oracle never spends more than online GE (beyond noise),
        # and both stay far below BE.
        assert oracle.energy <= ge.energy * 1.03
        assert oracle.energy < be.energy
        # Online GE's quality tracking stays close to the ideal cut.
        assert abs(ge.quality - oracle.quality) < 0.05
