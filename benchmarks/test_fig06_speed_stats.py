"""Bench: regenerate Fig. 6 — WF vs ES core-speed statistics."""

from __future__ import annotations

from repro.experiments import fig06_speed_stats


def test_fig06_speed_stats(run_figure):
    fig = run_figure(fig06_speed_stats.run)
    wf_mean = fig.series("average_speed", "Water-Filling")
    es_mean = fig.series("average_speed", "Equal-Sharing")
    wf_var = fig.series("speed_variance", "Water-Filling")
    es_var = fig.series("speed_variance", "Equal-Sharing")
    light = wf_mean.x[0]

    # Mean speeds nearly equal under light load (paper Fig. 6a) ...
    assert wf_mean.y_at(light) / es_mean.y_at(light) < 1.1
    # ... but WF's speed variance dominates ES's at every load (Fig. 6b),
    # and clearly so (>1.2x) somewhere before overload: the
    # core-speed-thrashing signature.
    for x in wf_var.x:
        assert wf_var.y_at(x) > es_var.y_at(x)
    pre_overload = [x for x in wf_var.x if x <= 180.0]
    assert max(wf_var.y_at(x) / es_var.y_at(x) for x in pre_overload) > 1.2
    # WF's mean is >= ES's once the load is heavy (WF uses the budget).
    heavy = wf_mean.x[-1]
    assert wf_mean.y_at(heavy) >= es_mean.y_at(heavy) - 1e-6
