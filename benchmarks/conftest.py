"""Shared helpers for the benchmark suite.

Every ``test_figNN_*`` benchmark regenerates one paper figure (at a
reduced horizon — see DESIGN.md §4), prints the series so the output is
directly comparable with the paper's plot, and asserts the figure's
*shape* properties.  ``pytest benchmarks/ --benchmark-only`` therefore
doubles as the reproduction report generator.

Figure benchmarks run exactly once (``pedantic`` with one round): the
simulations are deterministic, so repeated rounds would only measure
the same work again.
"""

from __future__ import annotations

import pytest

#: Horizon scale used by the figure benchmarks (1.0 = the paper's 10 min).
BENCH_SCALE = 0.02
#: Seed shared by the whole benchmark suite.
BENCH_SEED = 11


@pytest.fixture
def run_figure(benchmark):
    """Benchmark a figure module's ``run`` once and print the result."""

    def _run(figure_fn, **kwargs):
        kwargs.setdefault("scale", BENCH_SCALE)
        kwargs.setdefault("seed", BENCH_SEED)
        result = benchmark.pedantic(
            figure_fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.to_text())
        return result

    return _run
