"""Ablation: the paper's static-power caveat made quantitative.

§IV-G-3 notes "we ignore the effect of static power here" when arguing
that more cores are always better.  With per-core static power enabled
(an extension of this implementation), the core-count sweep develops an
energy optimum: dynamic energy falls with m (convexity) while static
energy rises linearly, so total energy is U-shaped.
"""

from __future__ import annotations

from repro.core.ge import make_ge
from repro.experiments.runner import run_single, scaled_config


def test_ablation_static_power_core_sweep(benchmark):
    def sweep():
        out = {}
        for m in (4, 16, 64):
            cfg = scaled_config(
                0.01, 11, arrival_rate=150.0, m=m, static_power_per_core=5.0
            )
            out[m] = run_single(cfg, make_ge)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for m, r in results.items():
        print(
            f"  m={m:<3} Q={r.quality:6.4f}  dynamic={r.energy:9.1f} J  "
            f"static={r.static_energy:9.1f} J  total={r.total_energy:9.1f} J"
        )
    # Dynamic-only energy keeps falling with m (the paper's claim) ...
    assert results[64].energy < results[4].energy
    # ... but with static power the 64-core machine is no longer the
    # cheapest in total: the U-shape appears.
    assert results[64].total_energy > results[16].total_energy
    # Static accounting is exactly linear in m and time.
    assert results[64].static_energy > results[16].static_energy > results[4].static_energy
