"""Microbenchmarks of the algorithmic kernels.

These measure the per-call cost of the pieces that run on every
scheduling round (LF cut, water-filling, Quality-OPT, YDS) and the raw
event-loop throughput — the quantities that bound how far the
simulation scales.
"""

from __future__ import annotations

import numpy as np

from repro.core.cutting import lf_cut_waterline
from repro.core.energy_opt import yds_schedule
from repro.core.quality_opt import quality_opt
from repro.power.distribution import water_fill
from repro.quality.functions import ExponentialQuality
from repro.sim.engine import Simulator

F = ExponentialQuality(c=0.003, x_max=1000.0)
RNG = np.random.default_rng(0)

DEMANDS_64 = RNG.uniform(130.0, 1000.0, 64)
DEADLINES_64 = np.sort(RNG.uniform(0.01, 0.15, 64))
POWER_DEMANDS_16 = RNG.uniform(0.0, 60.0, 16)


def test_bench_lf_cut_64_jobs(benchmark):
    out = benchmark(lf_cut_waterline, F, DEMANDS_64, 0.9)
    assert out.shape == (64,)


def test_bench_water_fill_16_cores(benchmark):
    out = benchmark(water_fill, POWER_DEMANDS_16, 320.0)
    assert out.sum() <= 320.0 + 1e-6


def test_bench_quality_opt_32_jobs(benchmark):
    bounds = DEMANDS_64[:32]
    dls = DEADLINES_64[:32]
    out = benchmark(quality_opt, bounds, dls, 0.0, 2000.0)
    assert out.shape == (32,)


def test_bench_yds_32_jobs(benchmark):
    vols = DEMANDS_64[:32]
    dls = np.sort(RNG.uniform(0.05, 2.0, 32))
    blocks = benchmark(yds_schedule, vols, dls, 0.0)
    assert sum(len(b.jobs) for b in blocks) == 32


def test_bench_event_loop_throughput(benchmark):
    """Events per second of the bare DES kernel (chained timers)."""

    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count

    assert benchmark(run_10k_events) == 10_000


def test_bench_ge_simulated_second(benchmark):
    """Wall-clock cost of one simulated second of GE at λ=150."""
    from repro.config import SimulationConfig
    from repro.core.ge import make_ge
    from repro.server.harness import SimulationHarness

    def run_one_second():
        cfg = SimulationConfig(arrival_rate=150.0, horizon=1.0, seed=5)
        return SimulationHarness(cfg, make_ge()).run()

    result = benchmark.pedantic(run_one_second, rounds=3, iterations=1)
    assert result.jobs > 100
