"""Ablation benchmarks for GE's design choices (DESIGN.md §4).

The paper motivates several design decisions without isolating all of
them; these benches quantify each one on the default workload:

* **C-RR vs RR vs least-loaded** batch assignment (§III-E);
* **batch-local vs history-subsidized** LF cutting (DESIGN.md §5);
* **hybrid vs pinned** power distribution (the Fig. 6/7 pair, summarized
  as a single three-arm comparison here);
* **trigger sensitivity**: quantum length and counter threshold.
"""

from __future__ import annotations

from repro.core.assignment import LeastLoaded, RoundRobin
from repro.core.ge import GEScheduler, make_ge
from repro.experiments.runner import run_single, scaled_config

SCALE = 0.02
SEED = 11


def _run(benchmark, factories, rate=150.0, **overrides):
    cfg = scaled_config(SCALE, SEED, arrival_rate=rate, **overrides)

    def sweep():
        return {name: run_single(cfg, f) for name, f in factories.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name:<12} {r.row()}")
    return results


def test_ablation_assignment_policy(benchmark):
    m = scaled_config(SCALE, SEED).m
    results = _run(
        benchmark,
        {
            "C-RR": make_ge,
            "RR": lambda: GEScheduler(name="GE-RR", assignment=RoundRobin(m)),
            "LeastLoaded": lambda: GEScheduler(
                name="GE-LL", assignment=LeastLoaded(m)
            ),
        },
    )
    # C-RR matches the load-aware greedy on both axes, at zero state
    # beyond one pointer — the §III-E design point.
    assert results["C-RR"].quality > 0.85
    assert results["LeastLoaded"].quality > 0.85
    assert results["C-RR"].energy < results["LeastLoaded"].energy * 1.15
    # Plain RR (pointer reset each batch) collapses: GE's frequent small
    # batches all land on the first cores, starving the rest.  This is
    # the strongest justification for the *cumulative* pointer.
    assert results["RR"].quality < results["C-RR"].quality


def test_ablation_cut_history(benchmark):
    results = _run(
        benchmark,
        {
            "batch-local": make_ge,
            "with-history": lambda: GEScheduler(
                name="GE-hist", cut_with_history=True
            ),
        },
        rate=120.0,
    )
    # Both hold the quality target; the history-subsidized cut rides the
    # cumulative surplus, cutting deeper per AES round and compensating
    # more often — visible as a lower AES-mode share for ~equal volume.
    assert results["with-history"].quality > 0.85
    assert results["batch-local"].quality > 0.85
    assert results["with-history"].aes_fraction < results["batch-local"].aes_fraction
    volume_ratio = (
        results["with-history"].completed_volume
        / results["batch-local"].completed_volume
    )
    assert 0.9 < volume_ratio < 1.1


def test_ablation_distribution(benchmark):
    results = _run(
        benchmark,
        {
            "hybrid": make_ge,
            "es-only": lambda: GEScheduler(name="GE-ES", distribution="es"),
            "wf-only": lambda: GEScheduler(name="GE-WF", distribution="wf"),
        },
        rate=120.0,
    )
    # At light load the hybrid behaves like ES (cheap), not WF.
    assert results["hybrid"].energy <= results["wf-only"].energy * 1.05


def test_ablation_quantum_length(benchmark):
    cfg_fast = scaled_config(SCALE, SEED, arrival_rate=150.0, quantum=0.25)
    cfg_slow = scaled_config(SCALE, SEED, arrival_rate=150.0, quantum=1.0)

    def sweep():
        return {
            "quantum=0.25": run_single(cfg_fast, make_ge),
            "quantum=1.0": run_single(cfg_slow, make_ge),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name:<12} {r.row()}")
    # GE's quality guarantee must be robust to the quantum choice.
    for r in results.values():
        assert r.quality > 0.85


def test_ablation_counter_threshold(benchmark):
    cfg_small = scaled_config(SCALE, SEED, arrival_rate=150.0, counter_threshold=2)
    cfg_large = scaled_config(SCALE, SEED, arrival_rate=150.0, counter_threshold=32)

    def sweep():
        return {
            "counter=2": run_single(cfg_small, make_ge),
            "counter=32": run_single(cfg_large, make_ge),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name:<12} {r.row()}")
    for r in results.values():
        assert r.quality > 0.85
