"""Bench: regenerate Fig. 10 — power-budget sensitivity."""

from __future__ import annotations

from repro.experiments import fig10_power_budget


def test_fig10_power_budget(run_figure):
    fig = run_figure(fig10_power_budget.run)
    heavy = fig.series("quality", "budget=320").x[-1]
    light = fig.series("quality", "budget=320").x[0]

    # Quality is monotone in the budget under load.
    q_heavy = [
        fig.series("quality", f"budget={b:g}").y_at(heavy)
        for b in fig10_power_budget.BUDGETS
    ]
    assert q_heavy == sorted(q_heavy)

    # A small budget saturates: its energy barely grows past mid-load,
    # while the large budget's energy keeps climbing.
    e80 = fig.series("energy", "budget=80")
    e480 = fig.series("energy", "budget=480")
    assert e80.y[-1] < e80.y[1] * 1.3
    assert e480.y[-1] > e480.y[0] * 1.5

    # Light load: raising the budget does not meaningfully raise energy
    # (paper: 'High power budget is not at all necessary when load is light').
    e320_light = fig.series("energy", "budget=320").y_at(light)
    e480_light = e480.y_at(light)
    assert e480_light < e320_light * 1.1
