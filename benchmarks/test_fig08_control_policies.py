"""Bench: regenerate Fig. 8 — GE vs BE-P vs BE-S control policies.

The heaviest figure (each point bisects a calibration), so it runs at a
smaller scale and a thinner rate axis than the rest.
"""

from __future__ import annotations

from repro.experiments import fig08_control_policies


def test_fig08_control_policies(run_figure):
    fig = run_figure(
        fig08_control_policies.run,
        scale=0.01,
        rates=(110.0, 170.0, 240.0),
        iterations=4,
    )
    ge_q = fig.series("quality", "GE")
    bep_q = fig.series("quality", "BE-P")
    bes_q = fig.series("quality", "BE-S")

    # All three meet the target at light load.
    for s in (ge_q, bep_q, bes_q):
        assert s.y_at(110.0) > 0.85
    # Under overload the three policies converge (paper §IV-F).
    assert abs(ge_q.y_at(240.0) - bep_q.y_at(240.0)) < 0.03
    assert abs(ge_q.y_at(240.0) - bes_q.y_at(240.0)) < 0.03
