"""Bench: regenerate Fig. 12 — continuous vs discrete speed scaling."""

from __future__ import annotations

from repro.experiments import fig12_discrete_speed


def test_fig12_discrete_speed(run_figure):
    fig = run_figure(fig12_discrete_speed.run)
    cont_q = fig.series("quality", "Continuous")
    disc_q = fig.series("quality", "Discrete")
    cont_e = fig.series("energy", "Continuous")
    disc_e = fig.series("energy", "Discrete")

    for x in cont_q.x:
        # Discrete tracks continuous closely, losing at most a little
        # quality (paper Fig. 12a).
        assert disc_q.y_at(x) > cont_q.y_at(x) - 0.05
        assert disc_q.y_at(x) < cont_q.y_at(x) + 0.02
        # ... and never uses meaningfully more energy (Fig. 12b).
        assert disc_e.y_at(x) < cont_e.y_at(x) * 1.05
