"""Bench: regenerate Fig. 1 — AES-mode time share vs arrival rate."""

from __future__ import annotations

from repro.experiments import fig01_aes_fraction


def test_fig01_aes_fraction(run_figure):
    fig = run_figure(fig01_aes_fraction.run)
    s = fig.series("aes_fraction", "GE")
    # Paper shape: high AES share at light load, collapsing by overload.
    assert s.y[0] > 0.5
    assert s.y[-1] < 0.3
    assert s.y[-1] < s.y[0]
