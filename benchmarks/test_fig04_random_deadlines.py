"""Bench: regenerate Fig. 4 — random deadline windows (150–500 ms)."""

from __future__ import annotations

from repro.experiments import fig04_random_deadlines


def test_fig04_random_deadlines(run_figure):
    fig = run_figure(fig04_random_deadlines.run)
    q = {name: fig.series("quality", name) for name in fig04_random_deadlines.FACTORIES}
    mid = q["GE"].x[1]

    # GE still pins the target with non-agreeable deadlines.
    assert abs(q["GE"].y_at(mid) - 0.9) < 0.04
    # FDFS (deadline order) dominates the other one-at-a-time baselines.
    for other in ("FCFS", "LJF", "SJF"):
        assert q["FDFS"].y_at(mid) > q[other].y_at(mid)
    # FCFS degrades much more than with agreeable deadlines (paper:
    # 'FCFS performs extremely bad in this case').
    assert q["FCFS"].y_at(mid) < 0.8
