"""Bench: regenerate Fig. 7 — WF vs ES quality and energy."""

from __future__ import annotations

from repro.experiments import fig07_power_policies


def test_fig07_power_policies(run_figure):
    fig = run_figure(fig07_power_policies.run)
    wf_q = fig.series("quality", "Water-Filling")
    es_q = fig.series("quality", "Equal-Sharing")
    wf_e = fig.series("energy", "Water-Filling")
    es_e = fig.series("energy", "Equal-Sharing")
    light = wf_q.x[0]
    heavy = wf_q.x[-2]  # heavy but not absurdly overloaded

    # Light load: same quality, ES cheaper (justifies ES below the
    # critical load).
    assert es_q.y_at(light) == wf_q.y_at(light) or abs(
        es_q.y_at(light) - wf_q.y_at(light)
    ) < 0.02
    assert es_e.y_at(light) <= wf_e.y_at(light)
    # Heavy load: WF's quality is at least ES's (justifies WF above it).
    assert wf_q.y_at(heavy) >= es_q.y_at(heavy) - 5e-3
