"""Bench: regenerate Fig. 2 — the LF job-cutting illustration."""

from __future__ import annotations

from repro.experiments import fig02_job_cutting


def test_fig02_job_cutting(run_figure):
    fig = run_figure(fig02_job_cutting.run, scale=1.0)
    before = fig.series("volumes", "demand p_j")
    after = fig.series("volumes", "cut target c_j")
    # Longest jobs levelled to a common value, shortest untouched.
    assert after.y[0] == after.y[1]
    assert after.y[2] == before.y[2]
    assert after.y[3] == before.y[3]
    assert sum(after.y) < sum(before.y)
