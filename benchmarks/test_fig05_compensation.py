"""Bench: regenerate Fig. 5 — compensation-policy ablation."""

from __future__ import annotations

from repro.experiments import fig05_compensation


def test_fig05_compensation(run_figure):
    fig = run_figure(fig05_compensation.run)
    comp_q = fig.series("quality", "Compensation")
    nocomp_q = fig.series("quality", "No-Compensation")
    comp_e = fig.series("energy", "Compensation")
    nocomp_e = fig.series("energy", "No-Compensation")

    # Compensation never yields lower quality, and buys its guarantee
    # with a little extra energy (paper Fig. 5b).
    pre_overload = [x for x in comp_q.x if x <= 180.0]
    assert pre_overload, "sweep must include pre-overload rates"
    for x in pre_overload:
        assert comp_q.y_at(x) >= nocomp_q.y_at(x) - 5e-3
        assert comp_e.y_at(x) >= nocomp_e.y_at(x) * 0.98
    # Somewhere before overload the gap is visible.
    gaps = [comp_q.y_at(x) - nocomp_q.y_at(x) for x in pre_overload]
    assert max(gaps) > 0.003
