"""Bench: mixed application classes — what class-awareness buys.

A server hosting two error-tolerant services with very different
quality shapes (sharply-saturating search vs. linear-quality
analytics), 50/50.  Three arms on identical arrivals:

* **GE-Mixed** — class-aware cutting/allocation (KKT marginal levelling);
* **GE-blind** — the paper's single-f GE judged by the true mixed
  aggregate (its class-aware monitor still drives compensation);
* **BE** — best effort.

Expected: GE-Mixed lands on the target with the least energy; blind GE
mis-targets (over-delivery) and pays for it; both stay far below BE.
"""

from __future__ import annotations

from repro.core.ge import make_be, make_ge
from repro.experiments.runner import scaled_config
from repro.mixed import ClassAwareMonitor, MixedClassWorkload, make_mixed_ge
from repro.quality.functions import ExponentialQuality, LinearQuality
from repro.server.harness import SimulationHarness
from repro.sim.rng import RandomStreams

FUNCTIONS = [ExponentialQuality(c=0.009, x_max=1000.0), LinearQuality(x_max=1000.0)]


def test_mixed_classes(benchmark):
    cfg = scaled_config(0.02, 11, arrival_rate=130.0)

    def workload():
        return MixedClassWorkload(
            cfg.workload(), [0.5, 0.5], streams=RandomStreams(seed=77)
        )

    def sweep():
        aware_sched, aware_mon = make_mixed_ge(FUNCTIONS)
        aware = SimulationHarness(
            cfg, aware_sched, workload=workload(), monitor=aware_mon
        ).run()
        blind = SimulationHarness(
            cfg, make_ge(), workload=workload(), monitor=ClassAwareMonitor(FUNCTIONS)
        ).run()
        be = SimulationHarness(
            cfg, make_be(), workload=workload(), monitor=ClassAwareMonitor(FUNCTIONS)
        ).run()
        return {"GE-Mixed": aware, "GE-blind": blind, "BE": be}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, r in results.items():
        print(f"  {name:<9} {r.row()}")

    aware, blind, be = results["GE-Mixed"], results["GE-blind"], results["BE"]
    # Class-aware lands on the true mixed target...
    assert abs(aware.quality - 0.9) < 0.02
    # ... at least as accurately as the blind arm, for no more energy.
    assert abs(aware.quality - 0.9) <= abs(blind.quality - 0.9) + 5e-3
    assert aware.energy <= blind.energy * 1.02
    # Both GE arms crush BE on energy.
    assert aware.energy < 0.8 * be.energy
