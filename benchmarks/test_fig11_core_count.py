"""Bench: regenerate Fig. 11 — core-count sensitivity."""

from __future__ import annotations

from repro.experiments import fig11_core_count


def test_fig11_core_count(run_figure):
    fig = run_figure(fig11_core_count.run)
    q = fig.series("quality", "GE")
    e = fig.series("energy", "GE")

    # Few cores: poor quality at high energy; 16 cores: target quality
    # at much lower energy (paper Fig. 11).
    assert q.y_at(0) < 0.6
    assert q.y_at(4) > 0.85
    assert e.y_at(4) < e.y_at(0)

    # The WF arm shows the saturation plateau at very high core counts
    # (see EXPERIMENTS.md on the ES-capping dip).
    q_wf = fig.series("quality", "GE-WF")
    assert q_wf.y_at(6) > 0.85
