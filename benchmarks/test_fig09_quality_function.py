"""Bench: regenerate Fig. 9 — quality-function concavity sweep."""

from __future__ import annotations

from repro.experiments import fig09_quality_function


def test_fig09_quality_function(run_figure):
    fig = run_figure(fig09_quality_function.run)
    rate = fig.series("service_quality", "c=0.003").x[-1]
    qualities = [
        fig.series("service_quality", f"c={c:g}").y_at(rate)
        for c in fig09_quality_function.C_VALUES
    ]
    # Paper: GE's achieved quality under stress increases with c.
    assert qualities == sorted(qualities), qualities
    # The analytic curves are ordered at every sampled x < x_max.
    f_mid = [
        fig.series("quality_function", f"c={c:g}").y_at(500.0)
        for c in fig09_quality_function.C_VALUES
    ]
    assert f_mid == sorted(f_mid)
