"""Bench: regenerate Fig. 3 — six schedulers, fixed deadlines.

Also checks the paper's headline: GE saves a large fraction of BE's
energy (paper: up to 23.9 %) while holding the quality target.
"""

from __future__ import annotations

from repro.experiments import fig03_schedulers


def test_fig03_schedulers(run_figure):
    fig = run_figure(fig03_schedulers.run)
    light = fig.series("quality", "GE").x[0]

    q = {name: fig.series("quality", name) for name in fig03_schedulers.FACTORIES}
    e = {name: fig.series("energy", name) for name in fig03_schedulers.FACTORIES}

    # GE pins ~Q_GE at light load; BE has the best quality.
    assert abs(q["GE"].y_at(light) - 0.9) < 0.03
    assert q["BE"].y_at(light) == max(s.y_at(light) for s in q.values())

    # Headline: GE uses at least 15 % less energy than BE at light load.
    assert e["GE"].y_at(light) < 0.85 * e["BE"].y_at(light)

    # LJF and SJF have the worst quality under load; SJF is the floor.
    heavy = q["GE"].x[-1]
    assert q["SJF"].y_at(heavy) == min(s.y_at(heavy) for s in q.values())
    assert q["LJF"].y_at(heavy) < q["FCFS"].y_at(heavy)

    # SJF's energy decreases (or stays flat) as overload grows.
    assert e["SJF"].y[-1] <= e["SJF"].y[0] * 1.5
