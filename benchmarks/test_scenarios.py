"""Bench: GE's energy saving across the paper's motivating domains.

The paper evaluates web search only; its introduction claims the
approach generalizes to video rendering, financial analytics, process
monitoring and GPS tracking.  This bench runs GE vs BE on the stylized
preset of each domain (``repro/workload/scenarios.py``) and reports the
saving at the scenario's quality target.
"""

from __future__ import annotations

from repro.core.ge import make_be, make_ge
from repro.server.harness import SimulationHarness
from repro.workload.scenarios import SCENARIOS, scenario_config


def test_scenario_savings(benchmark):
    def sweep():
        out = {}
        for name in sorted(SCENARIOS):
            cfg = scenario_config(name, horizon=10.0, seed=11)
            ge = SimulationHarness(cfg, make_ge()).run()
            be = SimulationHarness(cfg, make_be()).run()
            out[name] = (ge, be)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"  {'scenario':<20} {'GE Q':>7} {'BE Q':>7} {'GE E':>9} {'BE E':>9} {'saving':>7}")
    for name, (ge, be) in results.items():
        saving = 1.0 - ge.energy / be.energy
        print(
            f"  {name:<20} {ge.quality:7.4f} {be.quality:7.4f} "
            f"{ge.energy:8.0f}J {be.energy:8.0f}J {saving:7.1%}"
        )
    for name, (ge, be) in results.items():
        # GE meets the target on every domain shape...
        assert ge.quality > 0.86, name
        # ... and never spends more energy than Best-Effort.
        assert ge.energy <= be.energy * 1.02, name
    # On the strongly concave domains the saving is substantial.
    for name in ("web_search", "video_rendering"):
        ge, be = results[name]
        assert ge.energy < 0.85 * be.energy, name
