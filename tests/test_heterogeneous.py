"""Tests for the heterogeneous-cores extension (big.LITTLE-style)."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_be, make_ge
from repro.errors import ConfigurationError
from repro.server.harness import SimulationHarness


def hetero_config(**overrides):
    """8 efficient cores (60 % of the power per speed) + 8 normal ones."""
    scales = tuple([0.6] * 8 + [1.0] * 8)
    return SimulationConfig(
        arrival_rate=110.0, horizon=4.0, seed=3, core_power_scales=scales
    ).with_overrides(**overrides)


class TestConfig:
    def test_core_models_apply_scales(self):
        cfg = hetero_config()
        models = cfg.core_models()
        assert len(models) == 16
        assert models[0].a == pytest.approx(3.0)
        assert models[15].a == pytest.approx(5.0)

    def test_homogeneous_default(self):
        cfg = SimulationConfig()
        models = cfg.core_models()
        assert len(set(id(m) for m in models)) == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(core_power_scales=(1.0, 1.0))  # m=16

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(m=2, core_power_scales=(1.0, 0.0))


class TestSimulation:
    def test_ge_runs_and_meets_target(self):
        result = SimulationHarness(hetero_config(), make_ge()).run()
        assert result.quality == pytest.approx(0.9, abs=0.02)
        assert sum(result.outcomes.values()) == result.jobs

    def test_efficient_machine_uses_less_energy(self):
        """Uniformly more efficient cores (a×0.6) must save energy at
        equal quality vs the homogeneous baseline."""
        base_cfg = SimulationConfig(arrival_rate=110.0, horizon=4.0, seed=3)
        eff_cfg = base_cfg.with_overrides(core_power_scales=tuple([0.6] * 16))
        base = SimulationHarness(base_cfg, make_ge()).run()
        eff = SimulationHarness(eff_cfg, make_ge()).run()
        assert eff.quality == pytest.approx(base.quality, abs=0.02)
        assert eff.energy < base.energy

    def test_mixed_machine_between_pure_machines(self):
        """The big.LITTLE mix lands between all-efficient and all-normal
        in energy (same quality target)."""
        base = SimulationConfig(arrival_rate=110.0, horizon=4.0, seed=3)
        runs = {}
        for name, scales in (
            ("normal", None),
            ("mixed", tuple([0.6] * 8 + [1.0] * 8)),
            ("efficient", tuple([0.6] * 16)),
        ):
            cfg = base.with_overrides(core_power_scales=scales)
            runs[name] = SimulationHarness(cfg, make_ge()).run()
        assert runs["efficient"].energy < runs["mixed"].energy < runs["normal"].energy

    def test_be_on_heterogeneous_machine(self):
        result = SimulationHarness(hetero_config(), make_be()).run()
        assert result.quality > 0.95

    def test_queue_order_baseline_on_heterogeneous_machine(self):
        from repro.baselines.queue_order import FCFS

        result = SimulationHarness(hetero_config(), FCFS()).run()
        assert sum(result.outcomes.values()) == result.jobs
        assert 0.5 < result.quality <= 1.0

    def test_capacity_reflects_heterogeneity(self):
        cfg = hetero_config()
        harness = SimulationHarness(cfg, make_ge())
        # Efficient cores sustain a higher speed on the same share, so
        # capacity beats the homogeneous machine's 32 000 units/s.
        assert harness.machine.equal_share_capacity > 32000.0
