"""The fleet executor: grids, determinism, crash isolation, persistence.

The multi-process tests (real spawn workers, injected hard kills) are
marked ``slow`` and excluded from the default pytest run; CI's
fleet-smoke job runs them with ``-m slow``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.experiments.fleet import (
    FleetResult,
    execute_task,
    fleet_compliance,
    fleet_run_id,
    parallel_map,
    run_fleet,
    run_sequential,
)
from repro.experiments.registry import FleetTask, fleet_grid
from repro.experiments.runner import scaled_config, sweep_rates
from repro.obs.runs import FLEET_SCHEMA, RunStore
from repro.obs.report import write_report

SCALE = 0.005  # 3 simulated seconds per task — enough for real telemetry


def grid_2x2():
    return fleet_grid(["ge_light", "ge_nominal"], [1, 2], scale=SCALE)


def strip_wall_clock(payload):
    """The comparable slice of a task payload: everything host-independent.

    ``wall_s`` and the profiler's wall-clock phase totals are the only
    host-dependent fields; the RunResult and all simulated telemetry
    must match bit-for-bit across execution modes.
    """
    summary = dict(payload["summary"])
    summary.pop("metrics", None)
    return {
        "task": payload["task"],
        "result": payload["result"],
        "summary": summary,
        "events": payload["events"],
    }


class TestGrid:
    def test_grid_order_and_keys(self):
        tasks = fleet_grid(["ge_light"], [1, 2], rates=[120.0], scale=0.02)
        assert [t.key for t in tasks] == [
            "ge_light-s1-x0.02-r120", "ge_light-s2-x0.02-r120",
        ]

    def test_grid_without_rates(self):
        tasks = grid_2x2()
        assert len(tasks) == 4
        assert tasks[0].rate is None
        # scenarios outer, seeds inner
        assert [t.scenario for t in tasks] == [
            "ge_light", "ge_light", "ge_nominal", "ge_nominal",
        ]

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            fleet_grid([], [1])
        with pytest.raises(ValueError, match="at least one seed"):
            fleet_grid(["ge_light"], [])
        with pytest.raises(ValueError, match="empty rates"):
            fleet_grid(["ge_light"], [1], rates=[])
        with pytest.raises(KeyError):
            fleet_grid(["no_such_scenario"], [1])

    def test_inject_validation(self):
        with pytest.raises(ValueError, match="inject"):
            FleetTask(scenario="ge_light", seed=1, inject="segfault")

    def test_fleet_run_id_is_order_free(self):
        tasks = grid_2x2()
        assert fleet_run_id(tasks) == fleet_run_id(list(reversed(tasks)))
        assert fleet_run_id(tasks).startswith("fleet-")
        assert fleet_run_id(tasks) != fleet_run_id(tasks[:2])


class TestExecuteTask:
    def test_payload_shape_and_json_native(self):
        task = FleetTask(scenario="ge_light", seed=1, scale=SCALE)
        payload = execute_task(task)
        assert payload["task"]["scenario"] == "ge_light"
        assert payload["result"]["jobs"] > 0
        assert payload["events"] > 0 and payload["wall_s"] > 0
        assert payload["summary"]["slo"]["schema"] == "repro.slo/1"
        json.dumps(payload)

    def test_rate_override_changes_config(self):
        base = execute_task(FleetTask(scenario="ge_light", seed=1, scale=SCALE))
        bumped = execute_task(
            FleetTask(scenario="ge_light", seed=1, scale=SCALE, rate=250.0)
        )
        assert bumped["result"]["jobs"] > base["result"]["jobs"]

    def test_unknown_scenario_and_exit_inject_rejected(self):
        with pytest.raises(ReproError, match="unknown fleet scenario"):
            execute_task(FleetTask(scenario="nope", seed=1))
        with pytest.raises(ReproError, match="worker process"):
            execute_task(FleetTask(scenario="ge_light", seed=1, inject="exit"))


class TestSequentialMode:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        runs_dir = tmp_path_factory.mktemp("fleet-seq")
        return run_sequential(grid_2x2(), runs_dir=str(runs_dir)), runs_dir

    def test_all_tasks_succeed(self, outcome):
        fleet, _ = outcome
        assert isinstance(fleet, FleetResult)
        assert fleet.ok and fleet.exit_code == 0
        assert sorted(fleet.results) == sorted(t.key for t in grid_2x2())

    def test_summary_document(self, outcome):
        fleet, _ = outcome
        doc = fleet.summary
        assert doc["schema"] == FLEET_SCHEMA
        assert doc["run_id"] == fleet.fleet_id
        assert doc["meta"]["mode"] == "sequential"
        assert doc["meta"]["succeeded"] == 4 and doc["meta"]["failed"] == 0
        assert doc["rollup"]["tasks"]["total"] == 4
        assert {row["scenario"] for row in doc["tasks"]} == {
            "ge_light", "ge_nominal",
        }
        assert all(row["ok"] and row["run_id"] for row in doc["tasks"])
        json.dumps(doc)

    def test_persisted_into_store(self, outcome):
        fleet, runs_dir = outcome
        store = RunStore(runs_dir)
        loaded = store.load(fleet.fleet_id)
        assert loaded["schema"] == FLEET_SCHEMA
        # Every per-task run/1 summary landed too and loads cleanly.
        for run_id in fleet.run_ids.values():
            assert store.load(run_id)["schema"] == "repro.run/1"

    def test_fleet_report_renders(self, outcome, tmp_path):
        fleet, _ = outcome
        out = tmp_path / "fleet.html"
        size = write_report(fleet.summary, out)
        html = out.read_text(encoding="utf-8")
        assert size == len(html.encode("utf-8"))
        for section in ("repro fleet", "Per-scenario rollup", "Workers",
                        "Per-run grid"):
            assert section in html

    def test_compliance_rollup(self, outcome):
        fleet, _ = outcome
        compliance = fleet_compliance(fleet.summary["rollup"])
        assert compliance is not None and 0.0 <= compliance <= 1.0
        assert fleet_compliance({"scenarios": {}}) is None

    def test_raise_injection_isolates_failure(self, tmp_path):
        tasks = [
            FleetTask(scenario="ge_light", seed=1, scale=SCALE),
            FleetTask(scenario="ge_light", seed=2, scale=SCALE,
                      inject="raise"),
        ]
        fleet = run_sequential(tasks, store=False)
        assert not fleet.ok and fleet.exit_code == 1
        assert tasks[0].key in fleet.results
        (record,) = fleet.errors
        assert record["kind"] == "exception"
        assert record["task"] == tasks[1].key
        assert "injected failure" in record["exception"]
        assert "RuntimeError" in record["traceback"]

    def test_validation_rejects_bad_grids(self):
        with pytest.raises(ReproError, match="empty grid"):
            run_sequential([], store=False)
        task = FleetTask(scenario="ge_light", seed=1, scale=SCALE)
        with pytest.raises(ReproError, match="duplicate"):
            run_sequential([task, task], store=False)
        with pytest.raises(ReproError, match="unknown fleet scenario"):
            run_sequential([FleetTask(scenario="nope", seed=1)], store=False)


@pytest.mark.slow
class TestParallelMode:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        tasks = grid_2x2()
        sequential = run_sequential(tasks, store=False)
        parallel = run_fleet(
            tasks, workers=2,
            runs_dir=str(tmp_path_factory.mktemp("fleet-par")),
        )
        return sequential, parallel

    def test_parallel_matches_sequential_bit_for_bit(self, pair):
        sequential, parallel = pair
        assert parallel.ok
        assert sorted(parallel.results) == sorted(sequential.results)
        for key in sequential.results:
            par = strip_wall_clock(parallel.results[key])
            seq = strip_wall_clock(sequential.results[key])
            # Bit-identity: == on floats, no approx.
            assert par == seq, f"divergence in task {key}"

    def test_parallel_summary_and_store(self, pair):
        _, parallel = pair
        doc = parallel.summary
        assert doc["meta"]["mode"] == "parallel"
        assert doc["meta"]["workers"] == 2
        workers = doc["rollup"]["workers"]
        assert all(row["hello"] and row["bye"] for row in workers.values())
        # Work actually spread across both workers' queues is not
        # guaranteed (one may drain the grid), but both must report in.
        assert len(workers) == 2

    def test_same_grid_same_fleet_id(self, pair):
        sequential, parallel = pair
        assert parallel.fleet_id == sequential.summary["run_id"]

    def test_killed_worker_yields_error_while_siblings_finish(self, tmp_path):
        tasks = [
            FleetTask(scenario="ge_light", seed=1, scale=SCALE),
            FleetTask(scenario="ge_light", seed=2, scale=SCALE,
                      inject="exit"),
            FleetTask(scenario="ge_nominal", seed=1, scale=SCALE),
            FleetTask(scenario="ge_nominal", seed=2, scale=SCALE),
        ]
        fleet = run_fleet(tasks, workers=2, store=False)
        assert not fleet.ok and fleet.exit_code == 1
        survivors = {t.key for t in tasks if t.inject is None}
        assert survivors <= set(fleet.results)
        death = [e for e in fleet.errors if e["kind"] == "worker-death"]
        assert len(death) == 1
        assert death[0]["task"] == tasks[1].key
        assert "exitcode 43" in death[0]["exception"]
        # The dead worker's exitcode is recorded in the worker table.
        workers = fleet.summary["rollup"]["workers"]
        assert any(row["exitcode"] == 43 for row in workers.values())

    def test_worker_count_validation(self):
        with pytest.raises(ReproError, match="at least one worker"):
            run_fleet(grid_2x2(), workers=0, store=False)


class TestParallelMap:
    def test_workers_one_runs_in_process(self):
        assert parallel_map(len, ["a", "bb", "ccc"], workers=1) == [1, 2, 3]

    @pytest.mark.slow
    def test_pool_preserves_order(self):
        items = list(range(7))
        assert parallel_map(_square, items, workers=2) == [
            n * n for n in items
        ]

    @pytest.mark.slow
    def test_sweep_rates_parallel_equivalence(self):
        from repro.experiments.fig03_schedulers import FACTORIES

        config = scaled_config(SCALE, 7)
        factories = {"GE": FACTORIES["GE"]}
        rates = [120.0, 200.0]
        sequential = sweep_rates(config, factories, rates)
        parallel = sweep_rates(config, factories, rates, parallel=2)
        assert parallel == sequential


def _square(n):
    """Module-level so the spawn pool can pickle it."""
    return n * n
