"""Tests for the experiment runner machinery."""

from __future__ import annotations

import pytest

from repro.core.ge import make_ge
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    default_rates,
    quality_energy_series,
    run_single,
    scaled_config,
    sweep_rates,
)


def test_scaled_config_scales_horizon():
    cfg = scaled_config(0.01, seed=3)
    assert cfg.horizon == pytest.approx(6.0)
    assert cfg.seed == 3


def test_scaled_config_passes_overrides():
    cfg = scaled_config(0.01, seed=3, arrival_rate=222.0, m=4)
    assert cfg.arrival_rate == 222.0
    assert cfg.m == 4


def test_scaled_config_invalid_scale():
    with pytest.raises(ValueError):
        scaled_config(0.0, seed=1)


def test_default_rates_paper_axis_at_large_scale():
    assert default_rates(0.1)[0] == 100.0
    assert len(default_rates(0.1)) == 7
    assert len(default_rates(0.01)) == 5


def test_run_single_returns_result():
    cfg = scaled_config(0.005, seed=1, arrival_rate=120.0)
    result = run_single(cfg, make_ge)
    assert result.scheduler == "GE"
    assert result.jobs > 100


def test_sweep_rates_identical_arrivals_per_rate():
    cfg = scaled_config(0.005, seed=1)
    results = sweep_rates(cfg, {"A": make_ge, "B": make_ge}, [110.0])
    # Same policy, same seed, same rate -> bit-identical runs.
    assert results["A"][0].energy == results["B"][0].energy
    assert results["A"][0].quality == results["B"][0].quality


def test_quality_energy_series_fills_panels():
    cfg = scaled_config(0.005, seed=1)
    rates = [100.0, 200.0]
    results = sweep_rates(cfg, {"GE": make_ge}, rates)
    fig = FigureResult(figure_id="t", title="t", x_label="rate")
    quality_energy_series(fig, results, rates)
    q = fig.series("quality", "GE")
    e = fig.series("energy", "GE")
    assert q.x == rates
    assert len(e.y) == 2
    assert all(0 <= v <= 1 for v in q.y)
    assert all(v > 0 for v in e.y)


def test_scaled_config_explicit_horizon_override_wins():
    cfg = scaled_config(0.01, seed=3, horizon=42.0)
    assert cfg.horizon == 42.0


def test_scaled_config_seed_cannot_be_smuggled_in_overrides():
    # ``seed`` is a named parameter, so a duplicate in overrides is a
    # call-site TypeError rather than a silent precedence surprise.
    with pytest.raises(TypeError):
        scaled_config(0.01, 3, **{"seed": 7})


def test_scaled_config_near_zero_scale_is_valid():
    cfg = scaled_config(1e-9, seed=1)
    assert cfg.horizon == pytest.approx(6.0e-7)


def test_scaled_config_negative_scale_rejected():
    with pytest.raises(ValueError):
        scaled_config(-0.5, seed=1)


def test_sweep_rates_empty_rates_yields_empty_series():
    cfg = scaled_config(0.005, seed=1)
    results = sweep_rates(cfg, {"GE": make_ge}, [])
    assert results == {"GE": []}


def test_sweep_rates_no_factories():
    cfg = scaled_config(0.005, seed=1)
    assert sweep_rates(cfg, {}, [100.0]) == {}
