"""Smoke + shape tests for every figure module at miniature scale.

These run each experiment end-to-end with tiny horizons and assert the
*paper-shape* properties that must hold even at reduced scale (the
benchmark suite re-asserts them at larger scale and prints the series).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_aes_fraction,
    fig02_job_cutting,
    fig03_schedulers,
    fig04_random_deadlines,
    fig05_compensation,
    fig06_speed_stats,
    fig07_power_policies,
    fig09_quality_function,
    fig10_power_budget,
    fig11_core_count,
    fig12_discrete_speed,
)

SCALE = 0.008  # ~5 simulated seconds: smoke-level, shapes still visible
SEED = 3


@pytest.fixture(scope="module")
def fig01():
    return fig01_aes_fraction.run(scale=SCALE, seed=SEED, rates=(100.0, 200.0))


def test_fig01_aes_share_decreases(fig01):
    s = fig01.series("aes_fraction", "GE")
    assert s.y_at(200.0) < s.y_at(100.0)
    assert all(0.0 <= v <= 1.0 for v in s.y)


def test_fig02_cut_is_exact_and_levelled():
    fig = fig02_job_cutting.run()
    before = fig.series("volumes", "demand p_j")
    after = fig.series("volumes", "cut target c_j")
    assert all(a <= b + 1e-9 for a, b in zip(after.y, before.y))
    # The two longest jobs share a level; the two shortest are uncut.
    assert after.y[0] == pytest.approx(after.y[1], rel=1e-3)
    assert after.y[2] == before.y[2]
    assert after.y[3] == before.y[3]


@pytest.fixture(scope="module")
def fig03():
    return fig03_schedulers.run(scale=SCALE, seed=SEED, rates=(110.0, 240.0))


def test_fig03_ge_meets_target_at_light_load(fig03):
    assert fig03.series("quality", "GE").y_at(110.0) == pytest.approx(0.9, abs=0.03)


def test_fig03_ge_saves_energy_vs_be(fig03):
    assert fig03.series("energy", "GE").y_at(110.0) < fig03.series(
        "energy", "BE"
    ).y_at(110.0)


def test_fig03_be_quality_highest(fig03):
    q = {label: fig03.series("quality", label).y_at(110.0) for label in
         ("GE", "OQ", "BE", "FCFS", "LJF", "SJF")}
    assert q["BE"] == max(q.values())


def test_fig03_sjf_worst_under_load(fig03):
    q = {label: fig03.series("quality", label).y_at(240.0) for label in
         ("GE", "BE", "FCFS", "LJF", "SJF")}
    assert q["SJF"] == min(q.values())


@pytest.fixture(scope="module")
def fig04():
    return fig04_random_deadlines.run(scale=SCALE, seed=SEED, rates=(150.0,))


def test_fig04_fdfs_beats_fcfs(fig04):
    assert fig04.series("quality", "FDFS").y_at(150.0) > fig04.series(
        "quality", "FCFS"
    ).y_at(150.0)


def test_fig05_compensation_quality_not_lower():
    fig = fig05_compensation.run(scale=SCALE, seed=SEED, rates=(150.0,))
    comp = fig.series("quality", "Compensation").y_at(150.0)
    nocomp = fig.series("quality", "No-Compensation").y_at(150.0)
    assert comp >= nocomp - 1e-6


@pytest.fixture(scope="module")
def fig06():
    return fig06_speed_stats.run(scale=SCALE, seed=SEED, rates=(110.0,))


def test_fig06_wf_variance_exceeds_es(fig06):
    wf = fig06.series("speed_variance", "Water-Filling").y_at(110.0)
    es = fig06.series("speed_variance", "Equal-Sharing").y_at(110.0)
    assert wf > es


def test_fig06_mean_speeds_close_at_light_load(fig06):
    wf = fig06.series("average_speed", "Water-Filling").y_at(110.0)
    es = fig06.series("average_speed", "Equal-Sharing").y_at(110.0)
    assert wf == pytest.approx(es, rel=0.1)


def test_fig07_es_saves_energy_at_light_load():
    fig = fig07_power_policies.run(scale=SCALE, seed=SEED, rates=(110.0,))
    es = fig.series("energy", "Equal-Sharing").y_at(110.0)
    wf = fig.series("energy", "Water-Filling").y_at(110.0)
    assert es <= wf
    assert fig.series("quality", "Equal-Sharing").y_at(110.0) == pytest.approx(
        fig.series("quality", "Water-Filling").y_at(110.0), abs=0.03
    )


def test_fig09_larger_c_higher_quality():
    fig = fig09_quality_function.run(scale=SCALE, seed=SEED, rates=(220.0,))
    q_small = fig.series("service_quality", "c=0.0005").y_at(220.0)
    q_large = fig.series("service_quality", "c=0.009").y_at(220.0)
    assert q_large > q_small
    # The analytic curves are ordered too.
    f_small = fig.series("quality_function", "c=0.0005").y_at(500.0)
    f_large = fig.series("quality_function", "c=0.009").y_at(500.0)
    assert f_large > f_small


def test_fig10_bigger_budget_not_worse():
    fig = fig10_power_budget.run(
        scale=SCALE, seed=SEED, rates=(180.0,), budgets=(80.0, 320.0)
    )
    q80 = fig.series("quality", "budget=80").y_at(180.0)
    q320 = fig.series("quality", "budget=320").y_at(180.0)
    assert q320 > q80


def test_fig11_more_cores_help():
    fig = fig11_core_count.run(scale=SCALE, seed=SEED, exponents=(0, 4))
    q = fig.series("quality", "GE")
    e = fig.series("energy", "GE")
    assert q.y_at(4) > q.y_at(0)
    assert e.y_at(4) < e.y_at(0)


def test_fig12_discrete_close_to_continuous():
    fig = fig12_discrete_speed.run(scale=SCALE, seed=SEED, rates=(150.0,))
    cont = fig.series("quality", "Continuous").y_at(150.0)
    disc = fig.series("quality", "Discrete").y_at(150.0)
    assert disc == pytest.approx(cont, abs=0.05)
