"""Tests for the bench snapshot/regression harness (repro.experiments.bench)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.experiments.bench import (
    BENCH_SCHEMA,
    SUITE,
    collect_snapshot,
    compare_snapshots,
    load_snapshot,
    run_scenario,
    write_snapshot,
)

# One tiny simulated run (~1.2 s of arrivals) keeps this module fast.
_SCALE = 0.002


@pytest.fixture(scope="module")
def snapshot():
    return collect_snapshot(
        "test", scale=_SCALE, scenarios=["ge_nominal", "fcfs_nominal"]
    )


def test_suite_covers_required_scenarios():
    assert len(SUITE) >= 5
    assert {"ge_light", "ge_nominal", "ge_heavy", "ge_discrete"} <= set(SUITE)
    for scenario in SUITE.values():
        assert scenario.description


def test_run_scenario_record_shape():
    record = run_scenario(SUITE["ge_nominal"], scale=_SCALE)
    assert record["name"] == "ge_nominal"
    assert record["scheduler"] == "GE"
    assert record["wall_s"] > 0
    assert record["events"] > 0
    assert record["events_per_sec"] > 0
    assert record["counters"]["reschedules"] > 0
    assert record["counters"]["jobs"] == sum(record["counters"]["outcomes"].values())
    assert 0 <= record["quality"] <= 1
    assert record["energy"] > 0
    assert len(record["config_fingerprint"]) == 12
    # The profiler was on: the GE hot-path phases are populated.
    for phase in ("scheduler.round", "cut.lf", "planner.quality_opt", "sim.run"):
        assert record["phases"][phase]["count"] > 0


def test_run_scenario_repeats_keep_deterministic_counters():
    one = run_scenario(SUITE["ge_nominal"], scale=_SCALE, repeats=1)
    two = run_scenario(SUITE["ge_nominal"], scale=_SCALE, repeats=2)
    assert one["counters"] == two["counters"]
    assert one["quality"] == two["quality"]
    assert one["energy"] == two["energy"]


def test_run_scenario_rejects_bad_repeats():
    with pytest.raises(ValueError):
        run_scenario(SUITE["ge_nominal"], scale=_SCALE, repeats=0)


def test_run_scenario_mem_records_tracemalloc_peak():
    record = run_scenario(SUITE["fcfs_nominal"], scale=_SCALE, mem=True)
    assert record["tracemalloc_peak_kb"] > 0


def test_collect_snapshot_metadata(snapshot):
    assert snapshot["schema"] == BENCH_SCHEMA
    assert snapshot["label"] == "test"
    assert snapshot["seed"] == 1
    assert snapshot["scale"] == _SCALE
    assert snapshot["python"]
    assert [s["name"] for s in snapshot["scenarios"]] == [
        "ge_nominal",
        "fcfs_nominal",
    ]


def test_collect_snapshot_rejects_unknown_scenario():
    with pytest.raises(KeyError, match="no_such"):
        collect_snapshot("test", scale=_SCALE, scenarios=["no_such"])


def test_snapshot_round_trip(tmp_path, snapshot):
    path = tmp_path / "BENCH_rt.json"
    write_snapshot(snapshot, path)
    assert load_snapshot(path) == snapshot


def test_load_snapshot_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "repro.bench/999", "scenarios": []}))
    with pytest.raises(ValueError, match="repro.bench/999"):
        load_snapshot(path)


def test_self_compare_passes(snapshot):
    comparison = compare_snapshots(snapshot, snapshot)
    assert comparison.ok
    assert "no regressions" in comparison.render()


def test_compare_detects_wall_time_regression(snapshot):
    slow = copy.deepcopy(snapshot)
    slow["scenarios"][0]["wall_s"] *= 10.0
    comparison = compare_snapshots(snapshot, slow, threshold=1.5)
    assert not comparison.ok
    assert any("wall time" in r for r in comparison.regressions)


def test_compare_detects_phase_regression(snapshot):
    slow = copy.deepcopy(snapshot)
    phases = slow["scenarios"][0]["phases"]
    phases["scheduler.round"]["total_s"] = (
        max(0.02, phases["scheduler.round"]["total_s"]) * 10.0
    )
    base = copy.deepcopy(snapshot)
    base["scenarios"][0]["phases"]["scheduler.round"]["total_s"] = max(
        0.02, base["scenarios"][0]["phases"]["scheduler.round"]["total_s"]
    )
    comparison = compare_snapshots(base, slow, threshold=1.5)
    assert any("phase scheduler.round" in r for r in comparison.regressions)


def test_compare_ignores_noise_phases(snapshot):
    # A 10x blowup of a sub-10ms phase is noise, not a regression.
    slow = copy.deepcopy(snapshot)
    base = copy.deepcopy(snapshot)
    base["scenarios"][0]["phases"]["scheduler.round"]["total_s"] = 0.001
    slow["scenarios"][0]["phases"]["scheduler.round"]["total_s"] = 0.009
    slow["scenarios"][0]["wall_s"] = base["scenarios"][0]["wall_s"]
    comparison = compare_snapshots(base, slow, threshold=1.5)
    assert not any("phase scheduler.round" in r for r in comparison.regressions)


def test_compare_detects_fidelity_drift(snapshot):
    drifted = copy.deepcopy(snapshot)
    drifted["scenarios"][0]["quality"] += 0.01
    comparison = compare_snapshots(snapshot, drifted)
    assert any("quality drifted" in r for r in comparison.regressions)


def test_compare_detects_determinism_break(snapshot):
    broken = copy.deepcopy(snapshot)
    broken["scenarios"][0]["counters"]["events"] += 1
    comparison = compare_snapshots(snapshot, broken)
    assert any("determinism break" in r for r in comparison.regressions)


def test_compare_skips_fidelity_across_configs(snapshot):
    other = copy.deepcopy(snapshot)
    other["scenarios"][0]["config_fingerprint"] = "ffffffffffff"
    other["scenarios"][0]["quality"] += 0.5
    comparison = compare_snapshots(snapshot, other)
    assert comparison.ok


def test_compare_detects_missing_scenario(snapshot):
    partial = copy.deepcopy(snapshot)
    partial["scenarios"] = partial["scenarios"][:1]
    comparison = compare_snapshots(snapshot, partial)
    assert any("missing" in r for r in comparison.regressions)


def test_compare_rejects_bad_threshold(snapshot):
    with pytest.raises(ValueError):
        compare_snapshots(snapshot, snapshot, threshold=1.0)


def test_compare_scenarios_filter_ignores_absent(snapshot):
    """A filtered compare of a partial snapshot must not flag the
    unselected scenarios as missing (the smoke-bench CI contract)."""
    partial = copy.deepcopy(snapshot)
    partial["scenarios"] = [
        s for s in partial["scenarios"] if s["name"] == "ge_nominal"
    ]
    unfiltered = compare_snapshots(snapshot, partial)
    assert any("missing" in r for r in unfiltered.regressions)
    filtered = compare_snapshots(snapshot, partial, scenarios=["ge_nominal"])
    assert filtered.ok
    assert "fcfs_nominal" not in filtered.render()


def test_compare_scenarios_filter_rejects_unknown(snapshot):
    with pytest.raises(ValueError, match="unknown scenario"):
        compare_snapshots(snapshot, snapshot, scenarios=["nope"])


# ---------------------------------------------------------------- CLI


def test_cli_bench_writes_snapshot(tmp_path, capsys):
    out = tmp_path / "BENCH_cli.json"
    code = main([
        "bench", "--out", str(out), "--label", "cli",
        "--scale", str(_SCALE), "--scenarios", "fcfs_nominal",
    ])
    assert code == 0
    snap = load_snapshot(out)
    assert snap["label"] == "cli"
    assert [s["name"] for s in snap["scenarios"]] == ["fcfs_nominal"]
    assert "wrote bench snapshot" in capsys.readouterr().out


def test_cli_bench_unknown_scenario_is_usage_error(tmp_path):
    code = main([
        "bench", "--out", str(tmp_path / "x.json"), "--scenarios", "nope",
    ])
    assert code == 2


def test_cli_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "ge_nominal" in out and "fcfs_nominal" in out


def test_cli_compare_exit_codes(tmp_path, snapshot, capsys):
    good = tmp_path / "good.json"
    bad = tmp_path / "bad.json"
    write_snapshot(snapshot, good)
    slow = copy.deepcopy(snapshot)
    slow["scenarios"][0]["wall_s"] *= 10.0
    write_snapshot(slow, bad)

    assert main(["bench", "compare", str(good), str(good)]) == 0
    assert main(["bench", "compare", str(good), str(bad)]) == 1
    assert main(["bench", "compare", str(good), str(tmp_path / "none.json")]) == 2
    capsys.readouterr()  # drain


def test_cli_compare_threshold_flag(tmp_path, snapshot, capsys):
    good = tmp_path / "good.json"
    mild = tmp_path / "mild.json"
    write_snapshot(snapshot, good)
    slower = copy.deepcopy(snapshot)
    for record in slower["scenarios"]:
        record["wall_s"] *= 2.0
    write_snapshot(slower, mild)
    assert main(["bench", "compare", str(good), str(mild), "--threshold", "3"]) == 0
    assert main(["bench", "compare", str(good), str(mild), "--threshold", "1.5"]) == 1
    capsys.readouterr()
