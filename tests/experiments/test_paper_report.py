"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.experiments.paper_report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(scale=0.004, seed=2, figures=["2", "fig01"])


def test_report_contains_requested_figures(report):
    assert "## fig02" in report
    assert "## fig01" in report
    assert "## fig03" not in report


def test_report_metadata(report):
    assert "# Reproduction report" in report
    assert "seed: 2" in report
    assert "scale: 0.004" in report


def test_report_embeds_figure_tables(report):
    assert "aes_fraction" in report
    assert "cut target" in report
    assert "generated in" in report


def test_report_default_scale_mentioned():
    text = generate_report(scale=None, seed=1, figures=["2"])
    assert "per-figure default" in text


def test_report_unknown_figure_raises():
    with pytest.raises(KeyError):
        generate_report(figures=["99"])
