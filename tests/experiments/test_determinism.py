"""End-to-end determinism of the experiment pipeline.

Reproducibility is the product here: the same (scale, seed) must give
byte-identical figure output, or EXPERIMENTS.md numbers could not be
checked by anyone else.
"""

from __future__ import annotations

from repro.experiments import fig01_aes_fraction, fig02_job_cutting


def test_fig01_is_deterministic():
    a = fig01_aes_fraction.run(scale=0.004, seed=9, rates=(110.0, 200.0))
    b = fig01_aes_fraction.run(scale=0.004, seed=9, rates=(110.0, 200.0))
    assert a.to_text() == b.to_text()
    assert a.series("aes_fraction", "GE").y == b.series("aes_fraction", "GE").y


def test_fig01_seed_changes_output():
    a = fig01_aes_fraction.run(scale=0.004, seed=9, rates=(110.0,))
    b = fig01_aes_fraction.run(scale=0.004, seed=10, rates=(110.0,))
    assert a.series("aes_fraction", "GE").y != b.series("aes_fraction", "GE").y


def test_fig02_is_deterministic():
    assert fig02_job_cutting.run().to_text() == fig02_job_cutting.run().to_text()


def test_csv_and_text_share_values():
    fig = fig02_job_cutting.run()
    text = fig.to_text()
    csv = fig.to_csv()
    # The cut level appears in both renderings (different precision).
    assert "455.3" in text
    assert "455.27945" in csv
