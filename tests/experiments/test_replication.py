"""Tests for the replication framework."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.experiments.replication import replicate, replicate_many

CFG = SimulationConfig(arrival_rate=110.0, horizon=4.0, seed=100)


@pytest.fixture(scope="module")
def summary():
    return replicate(CFG, make_ge, n=3)


def test_replicate_runs_n_seeds(summary):
    assert summary.n == 3
    assert len(summary.runs) == 3
    seeds_energy = {r.energy for r in summary.runs}
    assert len(seeds_energy) == 3  # different seeds -> different runs


def test_replicate_summary_statistics(summary):
    assert 0.85 < summary.quality.mean < 0.95
    assert summary.quality.low <= summary.quality.mean <= summary.quality.high
    assert summary.energy.mean > 0


def test_replicate_row_renders(summary):
    row = summary.row()
    assert "GE" in row and "n=3" in row and "[" in row


def test_replicate_rejects_zero_n():
    with pytest.raises(ValueError):
        replicate(CFG, make_ge, n=0)


def test_replicate_many():
    out = replicate_many(CFG, {"GE": make_ge}, n=2)
    assert set(out) == {"GE"}
    assert out["GE"].n == 2


def test_replication_is_deterministic():
    a = replicate(CFG, make_ge, n=2)
    b = replicate(CFG, make_ge, n=2)
    assert a.energy.mean == b.energy.mean
