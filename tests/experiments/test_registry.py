"""Tests for the figure registry."""

from __future__ import annotations

import pytest

from repro.experiments.registry import FIGURES, get_figure, list_figures


def test_all_twelve_figures_registered():
    assert len(FIGURES) == 12
    assert sorted(FIGURES) == [f"fig{i:02d}" for i in range(1, 13)]


def test_get_figure_accepts_aliases():
    assert get_figure("fig03").figure_id == "fig03"
    assert get_figure("3").figure_id == "fig03"
    assert get_figure("03").figure_id == "fig03"
    assert get_figure("12").figure_id == "fig12"


def test_get_figure_unknown_raises():
    with pytest.raises(KeyError):
        get_figure("13")
    with pytest.raises(ValueError):
        get_figure("nope")


def test_list_figures_sorted():
    ids = [spec.figure_id for spec in list_figures()]
    assert ids == sorted(ids)


def test_every_spec_is_callable_with_scale():
    for spec in list_figures():
        assert callable(spec.run)
        assert spec.default_scale > 0
