"""Tests for figure-result containers and text rendering."""

from __future__ import annotations

import pytest

from repro.experiments.report import FigureResult, Series, ascii_plot, format_table


def test_series_add_and_pairs():
    s = Series(label="GE")
    s.add(100, 0.9)
    s.add(150, 0.89)
    assert s.as_pairs() == [(100.0, 0.9), (150.0, 0.89)]
    assert s.y_at(150) == 0.89
    with pytest.raises(KeyError):
        s.y_at(999)


def test_figure_series_lookup():
    fig = FigureResult(figure_id="figXX", title="t", x_label="x")
    s = fig.add_series("quality", Series(label="GE"))
    assert fig.series("quality", "GE") is s
    assert fig.panel("quality") == [s]
    with pytest.raises(KeyError):
        fig.series("quality", "BE")
    with pytest.raises(KeyError):
        fig.panel("nope")


def test_to_text_contains_all_labels():
    fig = FigureResult(figure_id="fig99", title="Demo", x_label="rate")
    a = Series(label="GE")
    b = Series(label="BE")
    for x in (1.0, 2.0):
        a.add(x, x * 0.1)
        b.add(x, x * 0.2)
    fig.add_series("quality", a)
    fig.add_series("quality", b)
    fig.notes.append("a note")
    text = fig.to_text()
    assert "fig99" in text
    assert "GE" in text and "BE" in text
    assert "a note" in text
    assert "0.2" in text


def test_to_csv_round_trips_values():
    fig = FigureResult(figure_id="fig99", title="Demo", x_label="rate")
    s = Series(label='with,comma "quoted"')
    s.add(1.0, 0.125)
    s.add(2.0, 0.25)
    fig.add_series("quality", s)
    csv_text = fig.to_csv()
    assert "# panel: quality" in csv_text
    assert '"with,comma ""quoted"""' in csv_text
    assert "0.125" in csv_text
    # Data rows parse back with the csv module.
    import csv as csv_mod
    import io

    rows = [
        r
        for r in csv_mod.reader(io.StringIO(csv_text))
        if r and not r[0].startswith("#")
    ]
    assert rows[0] == ["rate", 'with,comma "quoted"']
    assert float(rows[1][1]) == 0.125


def test_format_table_alignment():
    table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
    lines = table.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows padded to equal width


def test_ascii_plot_renders():
    s = Series(label="GE")
    for i in range(10):
        s.add(i, i * i)
    art = ascii_plot([s], width=20, height=5)
    assert "o" in art
    assert "GE" in art


def test_ascii_plot_empty():
    assert ascii_plot([]) == "(empty plot)"
