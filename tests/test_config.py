"""Tests for the simulation configuration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import PAPER_DEFAULTS, SimulationConfig
from repro.errors import ConfigurationError
from repro.power.dvfs import ContinuousSpeedScale, DiscreteSpeedScale


def test_paper_defaults_match_section_iv_b():
    cfg = PAPER_DEFAULTS
    assert cfg.m == 16
    assert cfg.budget == 320.0
    assert cfg.q_ge == 0.9
    assert cfg.quality_c == 0.003
    assert cfg.quantum == 0.5
    assert cfg.counter_threshold == 8
    assert cfg.horizon == 600.0
    assert cfg.window_low == cfg.window_high == 0.150
    assert cfg.demand_distribution().mean == pytest.approx(192.0, abs=0.5)


def test_derived_operating_points():
    cfg = PAPER_DEFAULTS
    assert cfg.equal_share_speed() == pytest.approx(2.0)
    assert cfg.equal_share_capacity() == pytest.approx(32000.0)
    # §IV-B: critical load 154 r/s at the defaults.
    assert cfg.critical_load_rate() == pytest.approx(154.0, abs=1.0)
    assert cfg.saturation_rate() == pytest.approx(166.7, abs=0.5)


def test_with_overrides_creates_variant():
    cfg = PAPER_DEFAULTS.with_overrides(arrival_rate=200.0, m=8)
    assert cfg.arrival_rate == 200.0
    assert cfg.m == 8
    assert PAPER_DEFAULTS.arrival_rate == 150.0  # original untouched


def test_config_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        PAPER_DEFAULTS.m = 4  # type: ignore[misc]


def test_speed_scale_continuous_by_default():
    assert isinstance(PAPER_DEFAULTS.speed_scale(), ContinuousSpeedScale)


def test_speed_scale_discrete_when_levels_given():
    cfg = PAPER_DEFAULTS.with_overrides(discrete_levels=(0.5, 1.0, 2.0))
    scale = cfg.speed_scale()
    assert isinstance(scale, DiscreteSpeedScale)
    assert scale.top_speed == 2.0


def test_top_speed_caps_continuous():
    cfg = PAPER_DEFAULTS.with_overrides(top_speed=1.5)
    assert cfg.speed_scale().max_speed_at_power(1e9) == 1.5


def test_top_speed_trims_ladder():
    cfg = PAPER_DEFAULTS.with_overrides(
        discrete_levels=(0.5, 1.0, 2.0, 3.0), top_speed=1.5
    )
    assert cfg.speed_scale().top_speed == 1.0


def test_workload_is_seeded():
    a = PAPER_DEFAULTS.with_overrides(horizon=2.0).workload().materialize()
    b = PAPER_DEFAULTS.with_overrides(horizon=2.0).workload().materialize()
    assert [j.arrival for j in a] == [j.arrival for j in b]


def test_critical_rate_scales_with_capacity():
    doubled = PAPER_DEFAULTS.with_overrides(m=32)
    assert doubled.critical_load_rate() == pytest.approx(
        2**0.5 * PAPER_DEFAULTS.critical_load_rate(), rel=1e-6
    )


def test_invalid_configs_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(arrival_rate=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(q_ge=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(quantum=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(counter_threshold=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(critical_load_fraction=0.0)
