"""Tests for the dynamic power model P = a·s^β."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.models import PowerModel

PAPER = PowerModel(a=5.0, beta=2.0, units_per_ghz_second=1000.0)


def test_paper_operating_point():
    """§IV-B: 'The average speed for each core is 2GHz' at 320W/16 = 20W."""
    assert PAPER.power(2.0) == pytest.approx(20.0)
    assert PAPER.speed(20.0) == pytest.approx(2.0)
    assert PAPER.throughput(2.0) == pytest.approx(2000.0)


def test_power_speed_inverse_round_trip():
    for s in (0.0, 0.5, 1.0, 2.0, 3.5):
        assert PAPER.speed(PAPER.power(s)) == pytest.approx(s)


def test_convexity():
    s = np.linspace(0, 4, 50)
    p = PAPER.power(s)
    mid = PAPER.power((s[:-1] + s[1:]) / 2)
    assert np.all(mid <= (p[:-1] + p[1:]) / 2 + 1e-12)


def test_equal_speed_minimizes_total_power():
    """The §III-D thrashing argument: for a fixed total throughput,
    equal speeds minimize Σ P(s_i)."""
    unequal = PAPER.power(1.0) + PAPER.power(3.0)
    equal = 2 * PAPER.power(2.0)
    assert equal < unequal


def test_throughput_round_trip():
    assert PAPER.speed_for_throughput(PAPER.throughput(1.7)) == pytest.approx(1.7)


def test_power_for_work():
    # 2000 units in 1 s needs 2 GHz -> 20 W.
    assert PAPER.power_for_work(2000.0, 1.0) == pytest.approx(20.0)
    with pytest.raises(ValueError):
        PAPER.power_for_work(100.0, 0.0)


def test_energy():
    assert PAPER.energy(2.0, 10.0) == pytest.approx(200.0)
    with pytest.raises(ValueError):
        PAPER.energy(2.0, -1.0)


def test_energy_for_volume_increases_with_speed():
    """Racing wastes energy: E(v, s) grows with s for β > 1."""
    e_slow = PAPER.energy_for_volume(1000.0, 1.0)
    e_fast = PAPER.energy_for_volume(1000.0, 2.0)
    assert e_fast > e_slow
    # Specifically E = a·v/u · s^{β−1} = 5·1·s for the paper model.
    assert e_slow == pytest.approx(5.0)
    assert e_fast == pytest.approx(10.0)


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        PowerModel(a=0.0)
    with pytest.raises(ConfigurationError):
        PowerModel(beta=1.0)
    with pytest.raises(ConfigurationError):
        PowerModel(units_per_ghz_second=0.0)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        PAPER.power(-1.0)
    with pytest.raises(ValueError):
        PAPER.speed(-1.0)


def test_vectorized():
    speeds = np.array([1.0, 2.0, 3.0])
    assert PAPER.power(speeds) == pytest.approx([5.0, 20.0, 45.0])


@given(
    a=st.floats(min_value=0.5, max_value=20.0),
    beta=st.floats(min_value=1.1, max_value=4.0),
    s=st.floats(min_value=0.0, max_value=10.0),
)
def test_inverse_property(a, beta, s):
    model = PowerModel(a=a, beta=beta)
    assert model.speed(model.power(s)) == pytest.approx(s, abs=1e-9, rel=1e-9)


class TestScalarArrayBitwise:
    """The scalar fast paths must return the very same bits as the
    vectorized path (the contract stated in power/models.py).  Only the
    mul/div-only methods take scalar shortcuts: IEEE ``*`` and ``/`` are
    correctly rounded everywhere, so scalar and array results agree
    bitwise.  ``power``/``speed`` deliberately have NO scalar shortcut —
    numpy's vectorized ``**`` and libm ``pow`` disagree by an ulp on a
    few percent of inputs — so their scalar results must equal the
    1-element-array results by construction."""

    def test_throughput_roundtrip_bitwise(self):
        rng = np.random.default_rng(42)
        for _ in range(500):
            model = PowerModel(
                a=float(rng.uniform(0.5, 20.0)),
                beta=float(rng.uniform(1.1, 4.0)),
                units_per_ghz_second=float(rng.uniform(1.0, 2000.0)),
            )
            s = float(rng.uniform(0.0, 10.0))
            u = float(rng.uniform(0.0, 5000.0))
            assert model.throughput(s) == float(model.throughput(np.array([s]))[0])
            assert model.speed_for_throughput(u) == float(
                model.speed_for_throughput(np.array([u]))[0]
            )

    def test_power_speed_scalar_semantics_pinned(self):
        # Pin the pow-path semantics the comment in power/models.py
        # documents: a scalar into ``power`` stays a 0-d ufunc pow and
        # matches the array path bitwise, while a scalar into ``speed``
        # demotes to np.float64 after the division and takes libm pow
        # (== the plain Python formula).  Any "optimization" of these
        # methods that flips either pin changes simulated bits.
        rng = np.random.default_rng(43)
        for _ in range(500):
            a = float(rng.uniform(0.5, 20.0))
            beta = float(rng.uniform(1.1, 4.0))
            model = PowerModel(a=a, beta=beta)
            s = float(rng.uniform(0.0, 10.0))
            p = float(rng.uniform(0.0, 500.0))
            assert model.power(s) == float(model.power(np.array([s]))[0])
            assert model.speed(p) == (p / a) ** (1.0 / beta)
            assert model.speed(p) == pytest.approx(
                float(model.speed(np.array([p]))[0]), rel=1e-12
            )

    def test_int_inputs_match_float(self):
        assert PAPER.power(2) == PAPER.power(2.0)
        assert PAPER.speed(20) == PAPER.speed(20.0)
        assert PAPER.throughput(3) == PAPER.throughput(3.0)
        assert PAPER.speed_for_throughput(1500) == PAPER.speed_for_throughput(1500.0)

    def test_scalar_paths_return_python_floats(self):
        assert type(PAPER.power(1.5)) is float
        assert type(PAPER.speed(11.0)) is float
        assert type(PAPER.throughput(1.5)) is float
        assert type(PAPER.speed_for_throughput(800.0)) is float

    def test_np_float64_input_takes_array_path(self):
        s = np.float64(1.7)
        assert PAPER.power(s) == PAPER.power(float(s))
