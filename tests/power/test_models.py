"""Tests for the dynamic power model P = a·s^β."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.models import PowerModel

PAPER = PowerModel(a=5.0, beta=2.0, units_per_ghz_second=1000.0)


def test_paper_operating_point():
    """§IV-B: 'The average speed for each core is 2GHz' at 320W/16 = 20W."""
    assert PAPER.power(2.0) == pytest.approx(20.0)
    assert PAPER.speed(20.0) == pytest.approx(2.0)
    assert PAPER.throughput(2.0) == pytest.approx(2000.0)


def test_power_speed_inverse_round_trip():
    for s in (0.0, 0.5, 1.0, 2.0, 3.5):
        assert PAPER.speed(PAPER.power(s)) == pytest.approx(s)


def test_convexity():
    s = np.linspace(0, 4, 50)
    p = PAPER.power(s)
    mid = PAPER.power((s[:-1] + s[1:]) / 2)
    assert np.all(mid <= (p[:-1] + p[1:]) / 2 + 1e-12)


def test_equal_speed_minimizes_total_power():
    """The §III-D thrashing argument: for a fixed total throughput,
    equal speeds minimize Σ P(s_i)."""
    unequal = PAPER.power(1.0) + PAPER.power(3.0)
    equal = 2 * PAPER.power(2.0)
    assert equal < unequal


def test_throughput_round_trip():
    assert PAPER.speed_for_throughput(PAPER.throughput(1.7)) == pytest.approx(1.7)


def test_power_for_work():
    # 2000 units in 1 s needs 2 GHz -> 20 W.
    assert PAPER.power_for_work(2000.0, 1.0) == pytest.approx(20.0)
    with pytest.raises(ValueError):
        PAPER.power_for_work(100.0, 0.0)


def test_energy():
    assert PAPER.energy(2.0, 10.0) == pytest.approx(200.0)
    with pytest.raises(ValueError):
        PAPER.energy(2.0, -1.0)


def test_energy_for_volume_increases_with_speed():
    """Racing wastes energy: E(v, s) grows with s for β > 1."""
    e_slow = PAPER.energy_for_volume(1000.0, 1.0)
    e_fast = PAPER.energy_for_volume(1000.0, 2.0)
    assert e_fast > e_slow
    # Specifically E = a·v/u · s^{β−1} = 5·1·s for the paper model.
    assert e_slow == pytest.approx(5.0)
    assert e_fast == pytest.approx(10.0)


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        PowerModel(a=0.0)
    with pytest.raises(ConfigurationError):
        PowerModel(beta=1.0)
    with pytest.raises(ConfigurationError):
        PowerModel(units_per_ghz_second=0.0)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        PAPER.power(-1.0)
    with pytest.raises(ValueError):
        PAPER.speed(-1.0)


def test_vectorized():
    speeds = np.array([1.0, 2.0, 3.0])
    assert PAPER.power(speeds) == pytest.approx([5.0, 20.0, 45.0])


@given(
    a=st.floats(min_value=0.5, max_value=20.0),
    beta=st.floats(min_value=1.1, max_value=4.0),
    s=st.floats(min_value=0.0, max_value=10.0),
)
def test_inverse_property(a, beta, s):
    model = PowerModel(a=a, beta=beta)
    assert model.speed(model.power(s)) == pytest.approx(s, abs=1e-9, rel=1e-9)
