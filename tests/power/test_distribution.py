"""Tests for ES / WF / hybrid power distribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InfeasibleError
from repro.power.distribution import (
    EqualSharing,
    HybridDistribution,
    WaterFilling,
    water_fill,
)


class TestWaterFill:
    def test_all_demands_met_when_budget_suffices(self):
        demands = np.array([5.0, 10.0, 3.0])
        alloc = water_fill(demands, 100.0)
        assert alloc == pytest.approx(demands)

    def test_budget_exhausted_when_scarce(self):
        demands = np.array([5.0, 50.0, 50.0])
        alloc = water_fill(demands, 45.0)
        assert float(np.sum(alloc)) == pytest.approx(45.0)

    def test_low_demands_satisfied_first(self):
        """§III-D: 'satisfying the low demand first'."""
        demands = np.array([2.0, 100.0, 3.0])
        alloc = water_fill(demands, 25.0)
        assert alloc[0] == pytest.approx(2.0)
        assert alloc[2] == pytest.approx(3.0)
        assert alloc[1] == pytest.approx(20.0)

    def test_equal_demands_share_equally(self):
        alloc = water_fill(np.array([50.0, 50.0, 50.0]), 90.0)
        assert alloc == pytest.approx([30.0, 30.0, 30.0])

    def test_water_level_property(self):
        """Capped entries share a common level above every met demand."""
        demands = np.array([1.0, 9.0, 20.0, 30.0])
        alloc = water_fill(demands, 30.0)
        capped = alloc < demands - 1e-9
        levels = alloc[capped]
        assert np.allclose(levels, levels[0])
        assert np.all(alloc[~capped] <= levels[0] + 1e-9)

    def test_zero_budget(self):
        alloc = water_fill(np.array([5.0, 10.0]), 0.0)
        assert alloc == pytest.approx([0.0, 0.0])

    def test_empty_demands(self):
        assert water_fill(np.array([]), 10.0).size == 0

    def test_negative_budget_raises(self):
        with pytest.raises(InfeasibleError):
            water_fill(np.array([1.0]), -1.0)

    def test_negative_demand_raises(self):
        with pytest.raises(ValueError):
            water_fill(np.array([-1.0]), 1.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=32),
        st.floats(min_value=0.0, max_value=500.0),
    )
    def test_invariants(self, demands, budget):
        demands_arr = np.asarray(demands)
        alloc = water_fill(demands_arr, budget)
        assert np.all(alloc >= -1e-9)
        assert np.all(alloc <= demands_arr + 1e-9)
        total = float(np.sum(alloc))
        assert total <= budget + 1e-6
        # Either every demand is met or the budget is exhausted.
        if not np.allclose(alloc, demands_arr):
            assert total == pytest.approx(budget, abs=1e-6)


class TestPolicies:
    def test_equal_sharing_ignores_demands(self):
        es = EqualSharing()
        decision = es.distribute(np.array([100.0, 0.0, 3.0, 7.0]), 80.0)
        assert decision.caps == pytest.approx([20.0] * 4)
        assert decision.policy == "ES"

    def test_equal_sharing_empty(self):
        assert EqualSharing().distribute(np.array([]), 80.0).caps.size == 0

    def test_wf_grants_surplus(self):
        wf = WaterFilling(grant_surplus=True)
        decision = wf.distribute(np.array([10.0, 10.0]), 100.0)
        assert float(np.sum(decision.caps)) == pytest.approx(100.0)
        assert decision.caps == pytest.approx([50.0, 50.0])

    def test_wf_without_surplus(self):
        wf = WaterFilling(grant_surplus=False)
        decision = wf.distribute(np.array([10.0, 10.0]), 100.0)
        assert decision.caps == pytest.approx([10.0, 10.0])

    def test_wf_scarce_budget_matches_water_fill(self):
        demands = np.array([5.0, 50.0, 45.0])
        wf = WaterFilling()
        assert wf.distribute(demands, 45.0).caps == pytest.approx(
            water_fill(demands, 45.0)
        )

    def test_hybrid_switches_on_load(self):
        hybrid = HybridDistribution()
        demands = np.array([2.0, 100.0])
        light = hybrid.distribute_for_load(demands, 40.0, heavy_load=False)
        heavy = hybrid.distribute_for_load(demands, 40.0, heavy_load=True)
        assert light.policy == "ES"
        assert heavy.policy == "WF"
        assert light.caps == pytest.approx([20.0, 20.0])
        assert heavy.caps[0] == pytest.approx(2.0)

    def test_hybrid_default_is_light(self):
        hybrid = HybridDistribution()
        assert hybrid.distribute(np.array([1.0, 1.0]), 10.0).policy == "ES"


# ---------------------------------------------------------------------------
# S2: float-drift renormalization — the cap-sum invariant Σ caps ≤ budget
# must hold EXACTLY (not just within epsilon), because the runtime
# sanitizer's power_budget invariant audits Σ core power ≤ H every
# quantum and cumulative ulp drift previously tripped it.
# ---------------------------------------------------------------------------


class TestCapSumInvariant:
    def test_known_overshoot_case_is_renormalized(self):
        """Regression: this concrete vector makes the raw closed-form
        level overshoot the budget by ~3.4e-13; water_fill must charge
        the excess to the largest cap."""
        rng = np.random.default_rng(2698)
        n = int(rng.integers(2, 24))
        demands = rng.uniform(0.0, 80.0, n)
        budget = float(np.sum(demands)) * float(rng.uniform(0.3, 0.95))

        # Reproduce the raw (un-renormalized) closed-form level.
        order = np.argsort(demands, kind="stable")
        sorted_d = demands[order]
        prefix = np.cumsum(sorted_d)
        below = np.concatenate([[0.0], prefix[:-1]])
        lo_bounds = np.concatenate([[0.0], sorted_d[:-1]])
        candidates = (budget - below) / (n - np.arange(n))
        valid = (lo_bounds - 1e-12 <= candidates) & (candidates <= sorted_d + 1e-12)
        level = float(candidates[int(np.argmax(valid))])
        raw = np.minimum(demands, level)
        assert float(np.sum(raw)) > budget  # the drift this test pins

        caps = water_fill(demands, budget)
        assert float(np.sum(caps)) <= budget
        assert np.all(caps >= 0.0)
        assert np.all(caps <= demands + 1e-12)
        # Renormalization shifts one cap by a few ulps, nothing more.
        assert np.max(np.abs(caps - raw)) < 1e-9

    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=32
        ),
        frac=st.floats(min_value=0.05, max_value=1.5),
    )
    def test_property_water_fill_never_exceeds_budget(self, demands, frac):
        demands = np.asarray(demands)
        budget = float(np.sum(demands)) * frac + 1e-9
        caps = water_fill(demands, budget)
        assert float(np.sum(caps)) <= budget
        assert np.all(caps >= 0.0)

    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=32
        ),
        frac=st.floats(min_value=0.05, max_value=1.5),
    )
    def test_property_wf_policy_never_exceeds_budget(self, demands, frac):
        """The surplus-granting WF policy branch must uphold the same
        exact invariant after spreading headroom."""
        demands = np.asarray(demands)
        budget = float(np.sum(demands)) * frac + 1e-9
        decision = WaterFilling().distribute(demands, budget)
        assert float(np.sum(decision.caps)) <= budget


class TestDecisionCaches:
    """ES/WF memoize their last decision; repeats must return the very
    same object and any input change must rebuild it."""

    def test_es_cache_ignores_demand_values(self):
        es = EqualSharing()
        first = es.distribute(np.array([1.0, 2.0]), 40.0)
        second = es.distribute(np.array([30.0, 7.0]), 40.0)  # values differ
        assert second is first  # ES only reads the count
        third = es.distribute(np.array([1.0, 2.0, 3.0]), 40.0)
        assert third is not first
        fourth = es.distribute(np.array([1.0, 2.0, 3.0]), 50.0)
        assert fourth is not third

    def test_wf_cache_keys_on_demand_bytes_and_budget(self):
        wf = WaterFilling()
        d = np.array([30.0, 10.0, 50.0])
        first = wf.distribute(d, 60.0)
        second = wf.distribute(d.copy(), 60.0)  # equal bytes, new array
        assert second is first
        third = wf.distribute(np.array([30.0, 10.0, 50.1]), 60.0)
        assert third is not first
        fourth = wf.distribute(np.array([30.0, 10.0, 50.1]), 61.0)
        assert fourth is not third

    def test_cached_decision_matches_fresh_policy(self):
        rng = np.random.default_rng(3)
        wf_cached = WaterFilling()
        for _ in range(20):
            d = rng.uniform(0.0, 100.0, 8)
            budget = float(rng.uniform(50.0, 500.0))
            a = wf_cached.distribute(d, budget)
            b = wf_cached.distribute(d, budget)  # hit
            fresh = WaterFilling().distribute(d, budget)
            assert a is b
            assert a.caps.tolist() == fresh.caps.tolist()

    def test_needs_demands_flags(self):
        assert EqualSharing.needs_demands is False
        assert WaterFilling.needs_demands is True
        assert HybridDistribution.needs_demands is True  # inherited default
