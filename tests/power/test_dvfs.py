"""Tests for continuous and discrete speed scaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.dvfs import ContinuousSpeedScale, DiscreteSpeedScale
from repro.power.models import PowerModel

MODEL = PowerModel()


class TestContinuous:
    def test_quantize_is_identity_below_top(self):
        scale = ContinuousSpeedScale(MODEL)
        assert scale.quantize(1.234) == 1.234
        assert scale.ceil(1.234) == 1.234

    def test_top_speed_clamps(self):
        scale = ContinuousSpeedScale(MODEL, top_speed=2.0)
        assert scale.quantize(5.0) == 2.0
        assert scale.max_speed_at_power(1000.0) == 2.0

    def test_max_speed_at_power(self):
        scale = ContinuousSpeedScale(MODEL)
        assert scale.max_speed_at_power(20.0) == pytest.approx(2.0)

    def test_invalid_top(self):
        with pytest.raises(ConfigurationError):
            ContinuousSpeedScale(MODEL, top_speed=0.0)

    def test_negative_rejected(self):
        scale = ContinuousSpeedScale(MODEL)
        with pytest.raises(ValueError):
            scale.quantize(-1.0)


class TestDiscrete:
    def ladder(self):
        return DiscreteSpeedScale(MODEL, levels=[0.5, 1.0, 1.5, 2.0, 2.5, 3.0])

    def test_quantize_rounds_down(self):
        scale = self.ladder()
        assert scale.quantize(1.7) == 1.5
        assert scale.quantize(0.4) == 0.0
        assert scale.quantize(2.0) == 2.0
        assert scale.quantize(99.0) == 3.0

    def test_ceil_rounds_up(self):
        scale = self.ladder()
        assert scale.ceil(1.7) == 2.0
        assert scale.ceil(0.1) == 0.5
        assert scale.ceil(2.0) == 2.0
        assert scale.ceil(0.0) == 0.0
        assert scale.ceil(99.0) == 3.0  # clamps at the top level

    def test_next_below(self):
        scale = self.ladder()
        assert scale.next_below(1.5) == 1.0
        assert scale.next_below(0.5) == 0.0
        assert scale.next_below(1.7) == 1.5

    def test_max_speed_at_power_quantizes(self):
        scale = self.ladder()
        # 20 W allows exactly 2.0 GHz.
        assert scale.max_speed_at_power(20.0) == 2.0
        # 19 W allows at most 1.949 GHz -> level 1.5.
        assert scale.max_speed_at_power(19.0) == 1.5

    def test_default_ladder(self):
        scale = DiscreteSpeedScale(MODEL)
        assert scale.top_speed == pytest.approx(3.0)
        assert scale.levels[0] == pytest.approx(0.25)

    def test_invalid_ladders(self):
        with pytest.raises(ConfigurationError):
            DiscreteSpeedScale(MODEL, levels=[])
        with pytest.raises(ConfigurationError):
            DiscreteSpeedScale(MODEL, levels=[0.0, 1.0])

    def test_rectify_respects_budget(self):
        scale = self.ladder()
        speeds = np.array([0.8, 1.2, 1.9, 2.3])
        budget = float(np.sum(MODEL.power(speeds))) + 1.0
        out = scale.rectify(speeds, budget)
        assert float(np.sum(MODEL.power(out))) <= budget + 1e-6
        for level in out:
            assert level == 0.0 or level in scale.levels

    def test_rectify_rounds_up_when_affordable(self):
        scale = self.ladder()
        speeds = np.array([0.7])
        out = scale.rectify(speeds, budget=MODEL.power(1.0) + 1e-9)
        assert out[0] == 1.0

    def test_rectify_rounds_down_when_tight(self):
        scale = self.ladder()
        speeds = np.array([0.7])
        out = scale.rectify(speeds, budget=MODEL.power(0.9))
        assert out[0] == 0.5

    def test_rectify_zero_speed_stays_zero(self):
        scale = self.ladder()
        out = scale.rectify(np.array([0.0, 1.0]), budget=100.0)
        assert out[0] == 0.0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=3.5), min_size=1, max_size=16),
        st.floats(min_value=0.0, max_value=400.0),
    )
    def test_rectify_invariants(self, speeds, extra):
        scale = self.ladder()
        speeds_arr = np.asarray(speeds)
        budget = float(np.sum(MODEL.power(np.minimum(speeds_arr, 3.0)))) + extra
        out = scale.rectify(speeds_arr, budget)
        assert float(np.sum(MODEL.power(out))) <= budget + 1e-6
        for v in out:
            assert v == 0.0 or any(abs(v - l) < 1e-12 for l in scale.levels)
