"""Graceful SIGINT: interrupted CLI runs flush valid partial telemetry.

Real subprocess drills (spawn the CLI, let it stream, kill it with
SIGINT) — slow-marked; CI's fleet-smoke job runs them with ``-m slow``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def spawn_cli(*argv, cwd):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=cwd, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        # The child must lead its own process group so the test's
        # SIGINT hits only it, not the pytest process.
        start_new_session=True,
    )


def wait_for_spill(path, *, min_bytes=2000, timeout=60.0):
    """Block until the run is demonstrably mid-stream (spill growing)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path) and os.path.getsize(path) >= min_bytes:
            return
        time.sleep(0.05)
    raise AssertionError(f"spill file never reached {min_bytes} bytes")


@pytest.mark.slow
class TestSigint:
    def test_interrupted_run_flushes_valid_jsonl(self, tmp_path):
        spill = tmp_path / "partial.jsonl"
        # A horizon far beyond what can finish before the interrupt.
        proc = spawn_cli(
            "run", "--scheduler", "GE", "--rate", "150",
            "--horizon", "600", "--seed", "1",
            "--stream", "--trace-out", str(spill),
            cwd=tmp_path,
        )
        try:
            wait_for_spill(spill)
            proc.send_signal(signal.SIGINT)
            stdout, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "interrupted at simulated t=" in stdout
        assert "flushed" in stdout

        # Every spilled line — including the last — is complete JSON.
        lines = spill.read_text(encoding="utf-8").splitlines()
        assert len(lines) > 10
        records = [json.loads(line) for line in lines]
        # The close() path appended the meta tail, flagged interrupted.
        headers = [r for r in records if r.get("type") == "meta"]
        assert headers, "no meta records in the partial spill"
        assert (headers[-1]["meta"] or {}).get("interrupted") is True, (
            "final meta record does not flag the run as interrupted"
        )

    def test_interrupted_run_lands_in_store_when_requested(self, tmp_path):
        spill = tmp_path / "partial.jsonl"
        runs_dir = tmp_path / "runs"
        proc = spawn_cli(
            "run", "--scheduler", "GE", "--rate", "150",
            "--horizon", "600", "--seed", "2",
            "--store", "--runs-dir", str(runs_dir),
            "--trace-out", str(spill),
            cwd=tmp_path,
        )
        try:
            wait_for_spill(spill)
            proc.send_signal(signal.SIGINT)
            stdout, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "stored interrupted run" in stdout

        from repro.obs.runs import RunStore

        store = RunStore(runs_dir)
        (run_id,) = store.ids()
        doc = store.load(run_id)
        assert doc["result"] is None
        assert doc["meta"]["interrupted"] is True
