"""Regression tests for bugs surfaced by the static-analysis pass."""

from __future__ import annotations

import math

import pytest

from repro.core.ge import GEScheduler
from repro.errors import SchedulingError
from repro.power.dvfs import ContinuousSpeedScale
from repro.power.models import PowerModel
from repro.quality.functions import LogQuality


class TestUnboundSchedulerGuard:
    def test_reschedule_before_bind_raises_scheduling_error(self):
        # Previously died with AttributeError on the unbound Optional
        # controller/assignment; now a clean, catchable SchedulingError.
        scheduler = GEScheduler()
        with pytest.raises(SchedulingError, match="before bind"):
            scheduler.reschedule()


class TestQualityInverseEdgeCases:
    def test_inverse_of_zero_is_zero(self):
        f = LogQuality()
        assert f.inverse(0.0) == 0.0

    def test_inverse_of_negative_zero_is_zero(self):
        # The old `q == 0.0` guard happened to accept -0.0 too; the
        # `q <= 0.0` form makes the intent explicit.  Pin it.
        f = LogQuality()
        assert f.inverse(-0.0) == 0.0

    def test_inverse_monotone_near_zero(self):
        f = LogQuality()
        assert f.inverse(1e-6) >= 0.0


class TestInfinityDefaults:
    def test_continuous_scale_defaults_to_unbounded(self):
        # float("inf") in a signature default is a B008 call-in-default;
        # the math.inf rewrite must keep the same semantics.
        scale = ContinuousSpeedScale(PowerModel())
        assert scale.top_speed == math.inf

    def test_yds_schedule_default_is_unbounded(self):
        from repro.core.energy_opt import yds_schedule

        blocks = yds_schedule([100.0], [1.0], 0.0)
        assert blocks
        assert all(b.speed < math.inf for b in blocks)
