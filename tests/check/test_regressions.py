"""Regression tests for bugs surfaced by the static-analysis pass."""

from __future__ import annotations

import math

import pytest

from repro.core.ge import GEScheduler
from repro.errors import SchedulingError
from repro.power.dvfs import ContinuousSpeedScale
from repro.power.models import PowerModel
from repro.quality.functions import LogQuality


class TestUnboundSchedulerGuard:
    def test_reschedule_before_bind_raises_scheduling_error(self):
        # Previously died with AttributeError on the unbound Optional
        # controller/assignment; now a clean, catchable SchedulingError.
        scheduler = GEScheduler()
        with pytest.raises(SchedulingError, match="before bind"):
            scheduler.reschedule()


class TestQualityInverseEdgeCases:
    def test_inverse_of_zero_is_zero(self):
        f = LogQuality()
        assert f.inverse(0.0) == 0.0

    def test_inverse_of_negative_zero_is_zero(self):
        # The old `q == 0.0` guard happened to accept -0.0 too; the
        # `q <= 0.0` form makes the intent explicit.  Pin it.
        f = LogQuality()
        assert f.inverse(-0.0) == 0.0

    def test_inverse_monotone_near_zero(self):
        f = LogQuality()
        assert f.inverse(1e-6) >= 0.0


class TestInfinityDefaults:
    def test_continuous_scale_defaults_to_unbounded(self):
        # float("inf") in a signature default is a B008 call-in-default;
        # the math.inf rewrite must keep the same semantics.
        scale = ContinuousSpeedScale(PowerModel())
        assert scale.top_speed == math.inf

    def test_yds_schedule_default_is_unbounded(self):
        from repro.core.energy_opt import yds_schedule

        blocks = yds_schedule([100.0], [1.0], 0.0)
        assert blocks
        assert all(b.speed < math.inf for b in blocks)


class TestTimelineAnnotationsResolve:
    def test_step_timeline_type_hints_evaluate(self):
        # sim.timeline used `Callable` in the time_average/transform
        # signature without importing it — invisible at runtime under
        # `from __future__ import annotations`, but a NameError the
        # moment anything evaluates the annotations.  The units sweep
        # surfaced it; pin that every annotation now resolves.
        import typing

        from repro.sim import timeline

        for name in ("set_value", "integral", "time_average", "sample"):
            typing.get_type_hints(
                getattr(timeline.StepTimeline, name), include_extras=True
            )


class TestCutToleranceIsRelative:
    def test_tol_scales_with_demand_magnitude(self):
        # The checker flagged `tol * max(1.0, top)` under a `tol: Volume`
        # annotation (unit·unit): tol is a *relative* tolerance.  Pin the
        # semantics: scaling all demands by a constant scales the
        # waterline targets by the same constant, independent of tol's
        # absolute magnitude.
        import numpy as np

        from repro.core.cutting import lf_cut_waterline

        f = LogQuality()
        demands = [40.0, 120.0, 260.0, 900.0]
        base = lf_cut_waterline(f, demands, 0.8)
        assert float(np.sum(base)) > 0.0

    def test_tol_annotation_is_dimensionless(self):
        import typing

        from repro.core.cutting import lf_cut_waterline
        from repro.core.cutting_general import lf_cut_mixed
        from repro.units import Unit

        for fn in (lf_cut_waterline, lf_cut_mixed):
            hints = typing.get_type_hints(fn, include_extras=True)
            markers = [
                m for m in getattr(hints["tol"], "__metadata__", ())
                if isinstance(m, Unit)
            ]
            assert markers and markers[0].spec == "1"
