"""The `python -m repro.check` command-line interface."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.check.cli import main

REPO = Path(__file__).resolve().parents[2]


def write(tmp_path: Path, name: str, source: str) -> Path:
    p = tmp_path / name
    p.write_text(source)
    return p


BAD = "import time\n\ndef f(x):\n    return time.time()\n"
GOOD = "def f(x: int) -> int:\n    return x\n"


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = write(tmp_path, "good.py", GOOD)
        assert main(["lint", str(p), "--module", "repro.sim.good"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad"]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM006" in out

    def test_select_narrows(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad",
                     "--select", "SIM006"]) == 1
        out = capsys.readouterr().out
        assert "SIM006" in out and "SIM001" not in out

    def test_ignore_drops(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad",
                     "--ignore", "SIM001,SIM006"]) == 0

    def test_unknown_code_exits_two(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--select", "SIM999"]) == 2

    def test_json_output(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) > 0
        assert set(payload["by_rule"]) == {"SIM001", "SIM006"}

    def test_statistics_footer(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        main(["lint", str(p), "--module", "repro.sim.bad", "--statistics"])
        out = capsys.readouterr().out
        assert "SIM001" in out.splitlines()[-3] or "SIM001" in out

    def test_directory_walk(self, tmp_path, capsys):
        write(tmp_path, "a.py", GOOD)
        write(tmp_path, "b.py", "def g(y: int) -> int:\n    return y\n")
        assert main(["lint", str(tmp_path)]) == 0


UNITS_BAD = (
    "from repro.units import Joules, Watts\n"
    "\n"
    "def bad(p: Watts, e: Joules) -> Joules:\n"
    "    return e + p\n"
)
UNITS_GOOD = (
    "from repro.units import Joules, Seconds, Watts\n"
    "\n"
    "def ok(p: Watts, t: Seconds) -> Joules:\n"
    "    return p * t\n"
)


class TestUnitsCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = write(tmp_path, "good.py", UNITS_GOOD)
        assert main(["units", str(p), "--module", "repro.core.good"]) == 0
        assert "sim-units: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", UNITS_BAD)
        assert main(["units", str(p), "--module", "repro.core.bad"]) == 1
        assert "UNITS001" in capsys.readouterr().out

    def test_select_and_ignore(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", UNITS_BAD)
        assert main(["units", str(p), "--module", "repro.core.bad",
                     "--select", "UNITS002"]) == 0
        assert main(["units", str(p), "--module", "repro.core.bad",
                     "--ignore", "UNITS001"]) == 0

    def test_unknown_units_code_exits_two(self, tmp_path):
        p = write(tmp_path, "bad.py", UNITS_BAD)
        assert main(["units", str(p), "--select", "UNITS999"]) == 2

    def test_json_output(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", UNITS_BAD)
        assert main(["units", str(p), "--module", "repro.core.bad",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["by_rule"] == {"UNITS001": 1}

    def test_coverage_report_never_fails(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", UNITS_BAD)
        assert main(["units", str(p), "--module", "repro.core.bad",
                     "--coverage"]) == 0
        out = capsys.readouterr().out
        assert "repro.core.bad" in out and "TOTAL" in out

    def test_coverage_json(self, tmp_path, capsys):
        p = write(tmp_path, "good.py", UNITS_GOOD)
        assert main(["units", str(p), "--module", "repro.core.good",
                     "--coverage", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["modules"]["repro.core.good"]["unit_slots"] == 3


class TestGateCommand:
    def test_gate_runs_both_passes(self, tmp_path, capsys):
        # One file violating sim-lint, one violating sim-units: the
        # gate must report findings from both and exit 1.
        write(tmp_path, "lintbad.py", BAD)
        write(tmp_path, "unitsbad.py", UNITS_BAD)
        assert main(["gate", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        # Fixture files outside the package tree get generic module
        # names, so only the layer-independent rules apply — SIM006
        # (missing annotations) from sim-lint, UNITS001 from sim-units.
        assert "SIM006" in out and "UNITS001" in out

    def test_gate_clean_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "good.py", "def f(x: int) -> int:\n    return x\n")
        assert main(["gate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sim-lint: clean" in out and "sim-units: clean" in out

    def test_gate_on_library_source_is_clean(self, capsys):
        assert main(["gate", str(REPO / "src" / "repro")]) == 0


class TestRulesCommand:
    def test_rules_lists_catalog(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM004", "SIM008", "SIM009", "UNITS001", "UNITS005"):
            assert code in out


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "rules"],
            capture_output=True, text=True,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "SIM001" in proc.stdout
