"""The `python -m repro.check` command-line interface."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.check.cli import main

REPO = Path(__file__).resolve().parents[2]


def write(tmp_path: Path, name: str, source: str) -> Path:
    p = tmp_path / name
    p.write_text(source)
    return p


BAD = "import time\n\ndef f(x):\n    return time.time()\n"
GOOD = "def f(x: int) -> int:\n    return x\n"


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = write(tmp_path, "good.py", GOOD)
        assert main(["lint", str(p), "--module", "repro.sim.good"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad"]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM006" in out

    def test_select_narrows(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad",
                     "--select", "SIM006"]) == 1
        out = capsys.readouterr().out
        assert "SIM006" in out and "SIM001" not in out

    def test_ignore_drops(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad",
                     "--ignore", "SIM001,SIM006"]) == 0

    def test_unknown_code_exits_two(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--select", "SIM999"]) == 2

    def test_json_output(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        assert main(["lint", str(p), "--module", "repro.sim.bad",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) > 0
        assert set(payload["by_rule"]) == {"SIM001", "SIM006"}

    def test_statistics_footer(self, tmp_path, capsys):
        p = write(tmp_path, "bad.py", BAD)
        main(["lint", str(p), "--module", "repro.sim.bad", "--statistics"])
        out = capsys.readouterr().out
        assert "SIM001" in out.splitlines()[-3] or "SIM001" in out

    def test_directory_walk(self, tmp_path, capsys):
        write(tmp_path, "a.py", GOOD)
        write(tmp_path, "b.py", "def g(y: int) -> int:\n    return y\n")
        assert main(["lint", str(tmp_path)]) == 0


class TestRulesCommand:
    def test_rules_lists_catalog(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM004", "SIM008"):
            assert code in out


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "rules"],
            capture_output=True, text=True,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "SIM001" in proc.stdout
