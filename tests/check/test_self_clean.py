"""The library source must stay sim-lint clean (the PR gate CI runs)."""

from __future__ import annotations

from pathlib import Path

from repro.check import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_repro_is_sim_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_rule_catalog_is_complete_and_unique():
    from repro.check import RULES, rule_catalog

    codes = [rule.code for rule in RULES]
    assert len(codes) == len(set(codes))
    assert len(codes) >= 8
    catalog = rule_catalog()
    for rule in RULES:
        assert rule.code in catalog
        assert rule.summary
        assert rule.rationale
