"""Table tests for the unit-spec grammar and dimension algebra."""

from __future__ import annotations

import pytest

from repro.units import (
    ALIAS_SPECS,
    DIMENSIONLESS,
    Unit,
    UnitError,
    dim_div,
    dim_mul,
    dim_pow,
    format_dim,
    parse_spec,
)


class TestParseSpec:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("s", (("s", 1),)),
            ("W", (("W", 1),)),
            ("unit", (("unit", 1),)),
            ("GHz", (("GHz", 1),)),
            ("1", ()),
            # J is derived: W·s.
            ("J", (("W", 1), ("s", 1))),
            ("W*s", (("W", 1), ("s", 1))),
            ("unit/s", (("s", -1), ("unit", 1))),
            # '/' binds everything after it: a/b/c = a·b⁻¹·c⁻¹.
            ("unit/GHz/s", (("GHz", -1), ("s", -1), ("unit", 1))),
            ("1/s", (("s", -1),)),
            ("1/unit", (("unit", -1),)),
            ("GHz^2", (("GHz", 2),)),
            ("s^-1", (("s", -1),)),
            # Whitespace is ignored; cancelling exponents vanish.
            (" W * s ", (("W", 1), ("s", 1))),
            ("s/s", ()),
            ("J/s", (("W", 1),)),
            ("J/W", (("s", 1),)),
        ],
    )
    def test_grammar(self, spec, expected):
        assert parse_spec(spec) == expected

    @pytest.mark.parametrize("bad", ["", "watts", "W^", "W//s", "2*W", "s^1.5"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(UnitError):
            parse_spec(bad)

    def test_every_alias_spec_parses(self):
        for name, spec in ALIAS_SPECS.items():
            parse_spec(spec)  # must not raise

    def test_unit_marker_dim(self):
        assert Unit("J").dim() == parse_spec("W*s")
        assert str(Unit("unit/s")) == "unit/s"


class TestAlgebra:
    def test_watts_times_seconds_is_joules(self):
        assert dim_mul(parse_spec("W"), parse_spec("s")) == parse_spec("J")

    def test_volume_over_speed_is_seconds(self):
        assert dim_div(parse_spec("unit"), parse_spec("unit/s")) == parse_spec("s")

    def test_speed_times_seconds_is_volume(self):
        assert dim_mul(parse_spec("unit/s"), parse_spec("s")) == parse_spec("unit")

    def test_ghz_times_machine_constant_is_speed(self):
        assert dim_mul(parse_spec("GHz"), parse_spec("unit/GHz/s")) == parse_spec(
            "unit/s"
        )

    def test_joules_over_seconds_is_watts(self):
        assert dim_div(parse_spec("J"), parse_spec("s")) == parse_spec("W")

    def test_mul_is_commutative_and_div_inverts(self):
        a, b = parse_spec("W"), parse_spec("unit/GHz/s")
        assert dim_mul(a, b) == dim_mul(b, a)
        assert dim_div(dim_mul(a, b), b) == a

    def test_dimensionless_is_identity(self):
        a = parse_spec("J")
        assert dim_mul(a, DIMENSIONLESS) == a
        assert dim_div(a, DIMENSIONLESS) == a
        assert dim_div(a, a) == DIMENSIONLESS

    @pytest.mark.parametrize(
        "spec, k, expected",
        [("s", 2, "s^2"), ("unit/s", 2, "unit^2/s^2"), ("GHz", 0, "1"), ("s", -1, "1/s")],
    )
    def test_pow(self, spec, k, expected):
        assert dim_pow(parse_spec(spec), k) == parse_spec(expected)


class TestFormatDim:
    @pytest.mark.parametrize(
        "spec, text",
        [
            ("1", "1"),
            ("W", "W"),
            ("J", "W·s"),
            ("unit/s", "unit/s"),
            ("unit/GHz/s", "unit/GHz/s"),
            ("1/s", "1/s"),
            ("GHz^2", "GHz^2"),
            ("s^-2", "1/s^2"),
        ],
    )
    def test_rendering(self, spec, text):
        assert format_dim(parse_spec(spec)) == text

    def test_roundtrip_through_parse(self):
        for spec in ALIAS_SPECS.values():
            dim = parse_spec(spec)
            assert parse_spec(format_dim(dim).replace("·", "*")) == dim
