"""The library source must stay sim-units clean (mirrors the sim-lint
self-clean pin), and the annotation coverage must not regress."""

from __future__ import annotations

import json
from pathlib import Path

from repro.check import UNITS_RULES, check_paths
from repro.check.units import coverage_json, coverage_table

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_repro_is_sim_units_clean():
    report = check_paths([SRC])
    assert report.findings == [], "\n" + "\n".join(
        f.format() for f in report.findings
    )


def test_units_rule_catalog_is_complete():
    codes = list(UNITS_RULES)
    assert codes == sorted(codes)
    assert codes == [f"UNITS{i:03d}" for i in range(1, len(codes) + 1)]
    assert len(codes) == 5
    for summary in UNITS_RULES.values():
        assert summary


def test_core_layers_are_substantially_annotated():
    # The sweep's floor: the physics-heavy packages must keep a high
    # share of their float-typed slots carrying unit aliases.  These
    # thresholds are below current levels; they pin against backsliding,
    # not against adding new unannotated helpers elsewhere.
    report = check_paths([SRC])
    floors = {
        "repro.power.models": 0.80,
        "repro.power.distribution": 0.90,
        "repro.power.dvfs": 0.90,
        "repro.server.core": 0.90,
        "repro.server.machine": 0.75,
        "repro.core.energy_opt": 0.75,
        "repro.core.quality_opt": 0.80,
        "repro.quality.monitor": 0.80,
        "repro.workload.job": 0.90,
        "repro.metrics.collector": 0.60,
    }
    for module, floor in floors.items():
        unit_slots, floaty_slots = report.coverage[module]
        assert floaty_slots > 0, module
        pct = unit_slots / floaty_slots
        assert pct >= floor, (
            f"{module}: annotation coverage {pct:.0%} fell below {floor:.0%}"
        )


def test_overall_coverage_floor():
    report = check_paths([SRC])
    total_unit = sum(u for u, _ in report.coverage.values())
    total_float = sum(f for _, f in report.coverage.values())
    assert total_unit / total_float >= 0.50


def test_coverage_table_renders():
    report = check_paths([SRC / "power"])
    table = coverage_table(report.coverage)
    assert "repro.power.models" in table
    assert "TOTAL" in table


def test_coverage_json_is_machine_readable():
    report = check_paths([SRC / "power"])
    payload = json.loads(coverage_json(report.coverage))
    assert payload["total"]["float_slots"] >= payload["total"]["unit_slots"] > 0
    assert "repro.power.models" in payload["modules"]
