"""The runtime invariant sanitizer: clean runs pass, corrupted runs trip."""

from __future__ import annotations

import pytest

from repro.check.sanitizer import (
    SanitizerViolation,
    SanitizingTracer,
    sanitize_requested,
)
from repro.config import SimulationConfig
from repro.core.ge import GEScheduler, make_ge
from repro.server.core import Segment
from repro.server.harness import SimulationHarness
from repro.server.scheduler import Scheduler
from repro.workload.job import Job


def make_job(jid=1, arrival=0.0, deadline=10.0, demand=100.0) -> Job:
    return Job(jid=jid, arrival=arrival, deadline=deadline, demand=demand)


class TestSanitizeRequested:
    def test_flag_wins(self):
        assert sanitize_requested(True)

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_requested(False)
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert not sanitize_requested(False)

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_requested(False)


class TestForRun:
    def test_ge_arms_quality_floor(self):
        config = SimulationConfig(horizon=1.0)
        tracer = SanitizingTracer.for_run(config, make_ge())
        assert tracer.q_floor == config.q_ge
        assert tracer.budget == config.budget

    def test_uncompensated_scheduler_disarms_floor(self):
        config = SimulationConfig(horizon=1.0)
        scheduler = GEScheduler(name="GE-NoComp", compensated=False)
        tracer = SanitizingTracer.for_run(config, scheduler)
        assert tracer.q_floor is None

    def test_non_cutting_scheduler_disarms_floor(self):
        config = SimulationConfig(horizon=1.0)
        tracer = SanitizingTracer.for_run(config, GEScheduler(cutting=False))
        assert tracer.q_floor is None


class TestCleanRun:
    def test_seeded_ten_second_scenario_passes(self):
        config = SimulationConfig(arrival_rate=150.0, horizon=10.0, seed=3)
        scheduler = make_ge()
        tracer = SanitizingTracer.for_run(config, scheduler)
        result = SimulationHarness(config, scheduler, tracer=tracer).run()
        assert result.jobs > 0
        assert tracer.checks_run > 1000

    def test_sanitized_result_matches_untraced(self):
        config = SimulationConfig(arrival_rate=120.0, horizon=5.0, seed=7)
        plain = SimulationHarness(config, make_ge()).run()
        scheduler = make_ge()
        tracer = SanitizingTracer.for_run(config, scheduler)
        sanitized = SimulationHarness(config, scheduler, tracer=tracer).run()
        assert sanitized == plain


class TestClockMonotonic:
    def test_backwards_event_trips(self):
        tr = SanitizingTracer()
        tr.begin_span("round", 1.0)
        with pytest.raises(SanitizerViolation) as err:
            tr.event("decision", 0.5)
        assert err.value.invariant == "clock_monotonic"
        assert err.value.context["time"] == 0.5

    def test_equal_times_are_fine(self):
        tr = SanitizingTracer()
        tr.begin_span("round", 1.0)
        tr.event("decision", 1.0)


class TestVolumeInvariants:
    def test_exec_slice_above_demand_trips(self):
        tr = SanitizingTracer()
        job = make_job(demand=50.0)
        tr.job_arrived(job, 0.0)
        span = tr.exec_start(job, core=0, speed=1.0, volume=200.0, time=0.0)
        with pytest.raises(SanitizerViolation) as err:
            tr.exec_end(span, 1.0, 200.0)
        assert err.value.invariant == "volume_bounded"
        assert err.value.context["jid"] == job.jid

    def test_negative_slice_trips(self):
        tr = SanitizingTracer()
        job = make_job()
        tr.job_arrived(job, 0.0)
        span = tr.exec_start(job, core=0, speed=1.0, volume=10.0, time=0.0)
        with pytest.raises(SanitizerViolation) as err:
            tr.exec_end(span, 1.0, -5.0)
        assert err.value.invariant == "volume_monotone"

    def test_cumulative_slices_cannot_exceed_demand(self):
        tr = SanitizingTracer()
        job = make_job(demand=100.0)
        tr.job_arrived(job, 0.0)
        for k in range(2):
            span = tr.exec_start(job, core=0, speed=1.0, volume=60.0, time=float(k))
            if k == 0:
                tr.exec_end(span, k + 0.5, 60.0)
            else:
                with pytest.raises(SanitizerViolation):
                    tr.exec_end(span, k + 0.5, 60.0)

    def test_within_demand_passes(self):
        tr = SanitizingTracer()
        job = make_job(demand=100.0)
        tr.job_arrived(job, 0.0)
        span = tr.exec_start(job, core=0, speed=1.0, volume=100.0, time=0.0)
        tr.exec_end(span, 1.0, 100.0)


class TestQualityInvariants:
    def test_quality_above_one_trips(self):
        tr = SanitizingTracer()
        with pytest.raises(SanitizerViolation) as err:
            tr.event("decision", 0.0, mode="bq", monitor_quality=1.5)
        assert err.value.invariant == "quality_bounds"

    def test_aes_below_floor_trips(self):
        tr = SanitizingTracer(q_floor=0.9)
        with pytest.raises(SanitizerViolation) as err:
            tr.event("decision", 0.0, mode="aes", monitor_quality=0.5)
        assert err.value.invariant == "quality_floor"
        assert err.value.context["q_floor"] == 0.9

    def test_bq_below_floor_is_legal(self):
        # BQ *is* the compensation response to a dip — never a violation.
        tr = SanitizingTracer(q_floor=0.9)
        tr.event("decision", 0.0, mode="bq", monitor_quality=0.5)

    def test_unarmed_floor_ignores_aes_dips(self):
        tr = SanitizingTracer(q_floor=None)
        tr.event("decision", 0.0, mode="aes", monitor_quality=0.5)


class _OverBudgetScheduler(Scheduler):
    """A corrupted policy: plans every core at top speed, ignoring H."""

    name = "BAD"
    quantum = 0.5

    def on_arrival(self, job: Job) -> None:
        harness = self.harness
        harness.take_from_queue(job)
        core = harness.machine.cores[job.jid % harness.machine.m]
        job.assign(core.index)
        # 4 GHz under the default 5·s² model is 80 W/core — way past an
        # equal share of any sane budget.
        core.enqueue(Segment(job=job, volume=job.demand, speed=4.0))

    def on_core_idle(self, core_index: int) -> None:
        pass


class TestEndToEndTrip:
    def test_over_budget_plan_trips_power_check(self):
        # 2 cores × 80 W against H = 40 W: the first quantum sample fails.
        config = SimulationConfig(
            arrival_rate=80.0, horizon=4.0, seed=5, m=2, budget=40.0
        )
        scheduler = _OverBudgetScheduler()
        tracer = SanitizingTracer.for_run(config, scheduler)
        with pytest.raises(SanitizerViolation) as err:
            SimulationHarness(config, scheduler, tracer=tracer).run()
        assert err.value.invariant == "power_budget"
        assert err.value.context["total_power"] > 40.0

    def test_same_plan_passes_with_roomy_budget(self):
        config = SimulationConfig(
            arrival_rate=80.0, horizon=4.0, seed=5, m=2, budget=400.0
        )
        scheduler = _OverBudgetScheduler()
        tracer = SanitizingTracer.for_run(config, scheduler)
        SimulationHarness(config, scheduler, tracer=tracer).run()


class TestEnergyCrossCheck:
    def test_corrupted_cumulative_energy_trips(self):
        config = SimulationConfig(arrival_rate=100.0, horizon=2.0, seed=2)
        scheduler = make_ge()
        tracer = SanitizingTracer.for_run(config, scheduler)
        harness = SimulationHarness(config, scheduler, tracer=tracer)
        original = tracer._sampler.sample

        def corrupting(machine, time):
            samples = original(machine, time)
            if time > 1.0:
                samples[0].energy += 100.0  # inject drift
            return samples

        tracer._sampler.sample = corrupting
        with pytest.raises(SanitizerViolation) as err:
            harness.run()
        assert err.value.invariant == "energy_conservation"


class _DriftingCapScheduler(Scheduler):
    """Plans every core exactly at its water-filling cap times a drift
    factor — a stand-in for the pre-renormalization bug where float
    rounding let Σ caps creep past H across rounds."""

    name = "DRIFT"
    quantum = 0.5

    def __init__(self, drift: float) -> None:
        super().__init__()
        self.drift = drift

    def on_arrival(self, job: Job) -> None:
        import numpy as np

        from repro.power.distribution import water_fill

        harness = self.harness
        harness.take_from_queue(job)
        m = harness.machine.m
        core = harness.machine.cores[job.jid % m]
        job.assign(core.index)
        # Every core demands 3/4 of the budget -> scarce branch: the
        # water level splits the budget exactly evenly.
        budget = harness.config.budget
        caps = water_fill(np.full(m, 0.75 * budget), budget)
        target_power = float(caps[core.index]) * self.drift
        speed = (target_power / 5.0) ** 0.5  # invert P(s) = 5 s^2
        core.enqueue(Segment(job=job, volume=job.demand, speed=speed))

    def on_core_idle(self, core_index: int) -> None:
        pass


class TestCapDriftTrip:
    """S2 regression: caps amplified by more than the sanitizer's 1e-6
    relative slack trip the power_budget invariant, while exact
    water-filling caps saturate the budget and pass.  Before water_fill
    renormalized its closed-form level, cumulative rounding produced
    exactly this kind of over-budget plan."""

    def _config(self):
        return SimulationConfig(
            arrival_rate=80.0, horizon=4.0, seed=5, m=2, budget=40.0
        )

    def test_drifted_caps_trip_power_check(self):
        scheduler = _DriftingCapScheduler(drift=1.0 + 5e-6)
        tracer = SanitizingTracer.for_run(self._config(), scheduler)
        with pytest.raises(SanitizerViolation) as err:
            SimulationHarness(self._config(), scheduler, tracer=tracer).run()
        assert err.value.invariant == "power_budget"
        assert err.value.context["total_power"] > 40.0

    def test_exact_caps_saturate_budget_and_pass(self):
        scheduler = _DriftingCapScheduler(drift=1.0)
        tracer = SanitizingTracer.for_run(self._config(), scheduler)
        SimulationHarness(self._config(), scheduler, tracer=tracer).run()
        assert tracer.checks_run > 0
