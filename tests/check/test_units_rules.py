"""Fixture corpus for the sim-units rules (UNITS001–UNITS005).

Each rule gets a bad snippet it must flag and a matching good snippet
it must stay quiet on — including the three seeded acceptance
mutations from the issue: adding W to J, passing a Speed where a
Volume is expected, and returning W where J is promised (a missing
``P · t``).
"""

from __future__ import annotations

from repro.check.units import check_source

HEADER = (
    "from repro.units import (\n"
    "    Dimensionless, Gigahertz, Joules, PerSecond, QualityFrac,\n"
    "    Seconds, Speed, Volume, Watts,\n"
    ")\n"
)


def codes(body: str, **kwargs):
    return [f.code for f in check_source(HEADER + body, **kwargs)]


class TestUNITS001Addition:
    def test_flags_watts_plus_joules(self):
        src = "def bad(p: Watts, e: Joules) -> Joules:\n    return e + p\n"
        assert "UNITS001" in codes(src)

    def test_flags_seconds_minus_volume(self):
        src = "def bad(t: Seconds, v: Volume) -> Seconds:\n    return t - v\n"
        assert "UNITS001" in codes(src)

    def test_flags_min_across_units(self):
        src = "def bad(t: Seconds, v: Volume) -> Seconds:\n    return min(t, v)\n"
        assert "UNITS001" in codes(src)

    def test_flags_augmented_add(self):
        src = (
            "def bad(e: Joules, p: Watts) -> Joules:\n"
            "    e += p\n"
            "    return e\n"
        )
        assert "UNITS001" in codes(src)

    def test_allows_same_unit_sum(self):
        src = "def ok(a: Watts, b: Watts) -> Watts:\n    return a + b\n"
        assert codes(src) == []

    def test_allows_energy_accumulation(self):
        # The fundamental identity: E += P · Δt.
        src = (
            "def ok(e: Joules, p: Watts, dt: Seconds) -> Joules:\n"
            "    e += p * dt\n"
            "    return e\n"
        )
        assert codes(src) == []

    def test_allows_dimensionless_scaling(self):
        src = "def ok(p: Watts, frac: Dimensionless) -> Watts:\n    return p * frac + p\n"
        assert codes(src) == []

    def test_allows_literal_scaling(self):
        src = "def ok(t: Seconds) -> Seconds:\n    return 0.5 * t + t\n"
        assert codes(src) == []


class TestUNITS002Comparison:
    def test_flags_seconds_vs_watts(self):
        src = "def bad(t: Seconds, p: Watts) -> bool:\n    return t < p\n"
        assert "UNITS002" in codes(src)

    def test_flags_derived_mismatch(self):
        # unit/s compared against unit — a speed is not a volume.
        src = "def bad(s: Speed, v: Volume) -> bool:\n    return s >= v\n"
        assert "UNITS002" in codes(src)

    def test_allows_same_unit_compare(self):
        src = "def ok(a: Seconds, b: Seconds) -> bool:\n    return a <= b\n"
        assert codes(src) == []

    def test_allows_derived_equality_of_dims(self):
        # v / t has dimension unit/s: comparable against a Speed.
        src = (
            "def ok(v: Volume, t: Seconds, cap: Speed) -> bool:\n"
            "    return v / t > cap\n"
        )
        assert codes(src) == []


class TestUNITS003CallArgument:
    def test_flags_speed_passed_as_volume(self):
        src = (
            "def duration(volume: Volume, speed: Speed) -> Seconds:\n"
            "    return volume / speed\n"
            "\n"
            "def bad(s: Speed) -> Seconds:\n"
            "    return duration(s, s)\n"
        )
        assert "UNITS003" in codes(src)

    def test_flags_keyword_argument(self):
        src = (
            "def dissipate(power: Watts, duration: Seconds) -> Joules:\n"
            "    return power * duration\n"
            "\n"
            "def bad(t: Seconds) -> Joules:\n"
            "    return dissipate(power=t, duration=t)\n"
        )
        assert "UNITS003" in codes(src)

    def test_allows_matching_arguments(self):
        src = (
            "def duration(volume: Volume, speed: Speed) -> Seconds:\n"
            "    return volume / speed\n"
            "\n"
            "def ok(v: Volume, s: Speed) -> Seconds:\n"
            "    return duration(v, s)\n"
        )
        assert codes(src) == []

    def test_unannotated_arguments_stay_silent(self):
        # A bare float carries no evidence; no finding either way.
        src = (
            "def duration(volume: Volume, speed: Speed) -> Seconds:\n"
            "    return volume / speed\n"
            "\n"
            "def ok(x):\n"
            "    return duration(x, x)\n"
        )
        assert codes(src) == []


class TestUNITS004Return:
    def test_flags_missing_power_time_product(self):
        # Promised J, delivered W: the `· t` fell off.
        src = "def bad(p: Watts, t: Seconds) -> Joules:\n    return p\n"
        assert "UNITS004" in codes(src)

    def test_flags_inverted_quotient(self):
        src = "def bad(v: Volume, t: Seconds) -> Speed:\n    return t / v\n"
        assert "UNITS004" in codes(src)

    def test_allows_correct_derivation(self):
        src = "def ok(p: Watts, t: Seconds) -> Joules:\n    return p * t\n"
        assert codes(src) == []

    def test_allows_unknown_return_value(self):
        src = (
            "def ok(p: Watts, other) -> Joules:\n"
            "    return other\n"
        )
        assert codes(src) == []


class TestUNITS005Assignment:
    def test_flags_wrong_unit_annotated_local(self):
        src = (
            "def bad(p: Watts) -> None:\n"
            "    e: Joules = p\n"
        )
        assert "UNITS005" in codes(src)

    def test_flags_attribute_assignment_against_declaration(self):
        src = (
            "class Acc:\n"
            "    total: Seconds = 0.0\n"
            "\n"
            "    def bad(self, v: Volume) -> None:\n"
            "        self.total = v\n"
        )
        assert "UNITS005" in codes(src)

    def test_local_reassignment_rebinds_flow_sensitively(self):
        # Locals are flow-typed: a plain rebinding adopts the new unit
        # (only the AnnAssign declaration itself is enforced).
        src = (
            "def ok(t: Seconds, v: Volume) -> None:\n"
            "    total: Seconds = t\n"
            "    total = v\n"
        )
        assert codes(src) == []

    def test_allows_derived_assignment(self):
        src = (
            "def ok(v: Volume, s: Speed) -> None:\n"
            "    t: Seconds = v / s\n"
        )
        assert codes(src) == []


class TestSuppression:
    BAD = "def bad(p: Watts, e: Joules) -> Joules:\n    return e + p\n"

    def test_line_pragma_silences_one_rule(self):
        src = (
            "def bad(p: Watts, e: Joules) -> Joules:\n"
            "    return e + p  # simlint: ignore[UNITS001]\n"
        )
        assert codes(src) == []

    def test_line_pragma_is_rule_specific(self):
        src = (
            "def bad(p: Watts, e: Joules) -> Joules:\n"
            "    return e + p  # simlint: ignore[UNITS002]\n"
        )
        assert "UNITS001" in codes(src)

    def test_skip_file_pragma(self):
        src = "# simlint: skip-file\n" + HEADER + self.BAD
        assert [f.code for f in check_source(src)] == []

    def test_select_and_ignore(self):
        src = (
            "def bad(p: Watts, e: Joules, t: Seconds) -> Joules:\n"
            "    if p > t:\n"
            "        return e\n"
            "    return e + p\n"
        )
        assert codes(src, select=["UNITS002"]) == ["UNITS002"]
        assert "UNITS002" not in codes(src, ignore=["UNITS002"])


class TestInference:
    def test_units_flow_through_locals(self):
        src = (
            "def bad(p: Watts, t: Seconds) -> None:\n"
            "    e = p * t\n"
            "    x: Watts = e\n"
        )
        assert "UNITS005" in codes(src)

    def test_conditional_expression_mismatch(self):
        src = (
            "def bad(p: Watts, t: Seconds, heavy: bool) -> None:\n"
            "    x = p if heavy else t\n"
        )
        assert "UNITS001" in codes(src)

    def test_method_annotations_checked(self):
        src = (
            "class Model:\n"
            "    def energy(self, p: Watts, t: Seconds) -> Joules:\n"
            "        return p + t\n"
        )
        assert "UNITS001" in codes(src)

    def test_dataclass_field_units_resolve_on_self(self):
        src = (
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class Job:\n"
            "    demand: Volume\n"
            "    deadline: Seconds\n"
            "\n"
            "    def bad(self) -> Volume:\n"
            "        return self.demand + self.deadline\n"
        )
        assert "UNITS001" in codes(src)

    def test_findings_carry_location_and_message(self):
        findings = check_source(
            HEADER + "def bad(p: Watts, e: Joules) -> Joules:\n    return e + p\n"
        )
        (finding,) = findings
        assert finding.code == "UNITS001"
        assert finding.line == 6  # header is 5 lines
        assert "W·s" in finding.message and "W" in finding.message
